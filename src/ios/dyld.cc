#include "ios/dyld.h"

#include <deque>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "ios/libsystem.h"

namespace cider::ios {

namespace {

// Link-edit work per image (symbol binding, rebasing), in cycles.
constexpr double kLinkCycles = 30000;
// With the prelinked shared cache, per-image work collapses to a
// fraction: the cache is mapped once and images are pre-bound.
constexpr double kSharedCacheLinkCycles = 1500;

} // namespace

Dyld::Dyld(binfmt::LibraryRegistry &libraries, std::string library_dir)
    : libraries_(libraries), libraryDir_(std::move(library_dir))
{}

DyldImages &
Dyld::images(binfmt::UserEnv &env)
{
    return env.process().ext().get<DyldImages>("dyld.images");
}

const binfmt::Symbol *
Dyld::resolve(binfmt::UserEnv &env, const std::string &symbol)
{
    DyldImages &table = images(env);
    for (const binfmt::LibraryImage *img : table.loaded)
        if (const binfmt::Symbol *sym = img->exports.find(symbol))
            return sym;
    return nullptr;
}

void
Dyld::loadImage(binfmt::UserEnv &env, const std::string &name,
                bool shared_cache, DyldImages &table)
{
    if (table.byName.count(name))
        return;
    const binfmt::LibraryImage *img = libraries_.find(name);
    if (!img) {
        warn("dyld: image not found: ", name);
        return;
    }

    LibSystem libc(env);
    if (!shared_cache) {
        // Walk the filesystem and map the image individually. These
        // pages are what fork() must write-protect-sweep.
        int fd = libc.open(libraryDir_ + "/" + name,
                           kernel::oflag::RDONLY);
        if (fd >= 0)
            libc.close(fd);
        charge(env.kernel.profile().cyclesToNs(kLinkCycles));
        env.process().mem().addMapping("dylib:" + name, img->pages);
    } else {
        // Shared-cache images live in the system-wide shared-region
        // VmObject mapped once in bootstrap(); no per-image mapping.
        charge(env.kernel.profile().cyclesToNs(kSharedCacheLinkCycles));
    }
    table.loaded.push_back(img);
    table.byName[name] = img;
    imagesLoaded_.fetch_add(1, std::memory_order_relaxed);

    // dyld registers an exit-time callback for every image, and the
    // image's own runtime may install pthread_atfork callbacks.
    libc.atexit([] {});
    for (int i = 0; i < img->atforkHandlers; ++i)
        libc.pthreadAtfork([] {}, [] {}, [] {});
    for (int i = 1; i < img->exitHandlers; ++i)
        libc.atexit([] {});

    if (img->initializer)
        img->initializer(env);

    // Recurse into dependencies (already-loaded ones are skipped).
    for (const std::string &dep : img->deps)
        loadImage(env, dep, shared_cache, table);
}

void
Dyld::bootstrap(binfmt::UserEnv &env, const binfmt::MachOImage &image)
{
    bool shared_cache = env.kernel.profile().dyldSharedCache;
    if (sharedCacheOverride_ >= 0)
        shared_cache = sharedCacheOverride_ != 0;

    if (shared_cache) {
        // One mapping covers the whole prelinked cache: the cache is
        // a single system-wide VmObject (created on first boot of any
        // process), entered into this task as a shared submap that
        // fork aliases for free.
        charge(env.kernel.profile().storageOpenNs);
        std::uint64_t cache_pages = 0;
        for (const std::string &name : libraries_.names())
            if (const binfmt::LibraryImage *img = libraries_.find(name))
                cache_pages += img->pages;
        kernel::VmObjectPtr region =
            env.kernel.vm().sharedRegion("dyld.shared-cache", cache_pages);
        if (!env.process().mem().hasMapping("dyld.shared-cache"))
            env.process().mem().mapObject("dyld.shared-cache",
                                          std::move(region),
                                          kernel::VM_PROT_READ,
                                          /*cow=*/false, /*shared=*/true);
    }

    DyldImages &table = images(env);
    for (const std::string &dep : image.dylibs)
        loadImage(env, dep, shared_cache, table);
}

binfmt::MachOBootstrap
Dyld::asBootstrap()
{
    return [this](binfmt::UserEnv &env, const binfmt::MachOImage &image) {
        bootstrap(env, image);
    };
}

} // namespace cider::ios
