#include "ios/iosurface_lib.h"

#include <memory>

#include "android/gralloc.h"
#include "diplomat/diplomat.h"
#include "iokit/io_surface.h"
#include "ios/libsystem.h"

namespace cider::ios {

namespace {

using Args = std::vector<binfmt::Value>;

binfmt::Value
I(std::int64_t v)
{
    return binfmt::Value{v};
}

/** Add a diplomat-backed export mapping @p name to a gralloc symbol. */
void
addDiplomatic(binfmt::LibraryImage &lib,
              binfmt::LibraryRegistry &registry, const char *name,
              const char *gralloc_symbol)
{
    binfmt::LibraryRegistry *reg = &registry;
    std::string target = gralloc_symbol;
    auto diplomat = std::make_shared<diplomat::Diplomat>(
        name,
        [reg, target](binfmt::UserEnv &) -> const binfmt::Symbol * {
            binfmt::LibraryImage *img = reg->find("libgralloc.so");
            return img ? img->exports.find(target) : nullptr;
        });
    lib.exports.add(name, [diplomat](binfmt::UserEnv &env, Args &args) {
        return diplomat->call(env, args);
    });
}

/** Apple-mode export reaching IOSurfaceRoot via IOKit. */
void
addApple(binfmt::LibraryImage &lib, const char *name,
         std::uint32_t selector, std::size_t out_index)
{
    lib.exports.add(
        name, [selector, out_index](binfmt::UserEnv &env, Args &args) {
            LibSystem libc(env);
            std::uint64_t service =
                libc.ioServiceGetMatchingService("IOSurfaceRoot");
            if (service == 0)
                return I(0);
            std::vector<std::int64_t> input;
            for (const binfmt::Value &v : args)
                input.push_back(binfmt::valueI64(v));
            std::vector<std::int64_t> output;
            xnu::kern_return_t kr = libc.ioConnectCallMethod(
                service, selector, input, output);
            if (kr != xnu::KERN_SUCCESS)
                return I(0);
            if (out_index < output.size())
                return I(output[out_index]);
            return I(0);
        });
}

} // namespace

binfmt::LibraryImage
makeIOSurfaceDylib(SurfaceMode mode,
                   binfmt::LibraryRegistry &domestic_libs)
{
    binfmt::LibraryImage lib;
    lib.name = "IOSurface.dylib";
    lib.format = kernel::BinaryFormat::MachO;
    lib.pages = 40;

    if (mode == SurfaceMode::CiderDiplomatic) {
        addDiplomatic(lib, domestic_libs, kIOSurfaceCreate,
                      android::kGrallocAlloc);
        addDiplomatic(lib, domestic_libs, kIOSurfaceGetWidth,
                      android::kGrallocWidth);
        addDiplomatic(lib, domestic_libs, kIOSurfaceGetHeight,
                      android::kGrallocHeight);
        addDiplomatic(lib, domestic_libs, kIOSurfaceRelease,
                      android::kGrallocFree);
    } else {
        addApple(lib, kIOSurfaceCreate, iokit::surfsel::Create, 0);
        addApple(lib, kIOSurfaceGetWidth, iokit::surfsel::GetInfo, 0);
        addApple(lib, kIOSurfaceGetHeight, iokit::surfsel::GetInfo, 1);
        addApple(lib, kIOSurfaceRelease, iokit::surfsel::Release, 0);
    }
    return lib;
}

} // namespace cider::ios
