#include "ios/eventpump.h"

#include "base/logging.h"
#include "android/ciderpress.h"
#include "ios/libsystem.h"
#include "kernel/kernel.h"

namespace cider::ios {

bool
EventPump::start(binfmt::UserEnv &app_env, const std::string &socket_path,
                 xnu::mach_port_name_t event_port)
{
    // Connect on the app's main thread so the descriptor lands in the
    // app's table; the pump thread then owns the read side.
    LibSystem libc(app_env);
    int fd = libc.socket();
    if (fd < 0 || libc.connect(fd, socket_path) < 0) {
        warn("eventpump: cannot connect to ", socket_path);
        return false;
    }
    connected_ = true;
    if (auto desc = app_env.process().fds().get(fd))
        socket_ = desc->file;

    kernel::Process &proc = app_env.process();
    kernel::Kernel *k = &app_env.kernel;
    thread_ = k->startThread(
        proc, kernel::Persona::Ios,
        [this, k, fd, event_port](kernel::Thread &t) {
            binfmt::UserEnv env{*k, t, {"eventpump"}};
            LibSystem libc(env);

            auto pump = [&](std::int32_t msg_id, Bytes body) {
                xnu::MachMessage msg;
                msg.header.remotePort = event_port;
                msg.header.remoteDisposition =
                    xnu::MsgDisposition::MakeSend;
                msg.header.msgId = msg_id;
                msg.body = std::move(body);
                if (libc.machMsgSend(msg) == xnu::KERN_SUCCESS)
                    ++pumped_;
            };

            Bytes buffer;
            bool running = true;
            while (running) {
                // Ensure a full frame header, then a full payload.
                while (buffer.size() < 5) {
                    Bytes chunk;
                    if (libc.read(fd, chunk, 4096) <= 0) {
                        pump(hidmsg::Quit, {});
                        libc.close(fd);
                        return;
                    }
                    buffer.insert(buffer.end(), chunk.begin(),
                                  chunk.end());
                }
                ByteReader header(buffer);
                std::uint8_t kind = header.u8();
                std::uint32_t len = header.u32();
                while (buffer.size() < 5 + len) {
                    Bytes chunk;
                    if (libc.read(fd, chunk, 4096) <= 0) {
                        pump(hidmsg::Quit, {});
                        libc.close(fd);
                        return;
                    }
                    buffer.insert(buffer.end(), chunk.begin(),
                                  chunk.end());
                }
                Bytes payload(buffer.begin() + 5,
                              buffer.begin() + 5 +
                                  static_cast<std::ptrdiff_t>(len));
                buffer.erase(buffer.begin(),
                             buffer.begin() + 5 +
                                 static_cast<std::ptrdiff_t>(len));

                switch (kind) {
                  case android::cpmsg::Motion:
                    pump(hidmsg::HidEvent, std::move(payload));
                    break;
                  case android::cpmsg::Pause:
                    pump(hidmsg::Lifecycle,
                         Bytes{hidmsg::PauseCode});
                    break;
                  case android::cpmsg::Resume:
                    pump(hidmsg::Lifecycle,
                         Bytes{hidmsg::ResumeCode});
                    break;
                  case android::cpmsg::Stop:
                    pump(hidmsg::Quit, {});
                    running = false;
                    break;
                  default:
                    warn("eventpump: unknown bridge message kind ",
                         static_cast<int>(kind));
                    break;
                }
            }
            libc.close(fd);
        });
    return true;
}

void
EventPump::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
EventPump::stop()
{
    if (socket_)
        socket_->closed(); // shut both stream directions: EOF
}

} // namespace cider::ios
