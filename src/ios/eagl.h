/**
 * @file
 * EAGL: Apple's replacement for EGL, as iOS apps see it.
 *
 * EAGL controls window memory and GL contexts. Cider provides
 * diplomats for the EAGL entry points that call into the custom
 * domestic libEGLbridge library, which implements the corresponding
 * functionality over Android's libEGL and SurfaceFlinger (paper
 * section 5.3). The Apple-mode build (iPad mini) manages window
 * memory directly over the simulated Apple GPU instead.
 */

#ifndef CIDER_IOS_EAGL_H
#define CIDER_IOS_EAGL_H

#include "binfmt/program.h"
#include "gpu/sim_gpu.h"

namespace cider::ios {

/** EAGL exported entry points. */
inline constexpr const char *kEaglCreateContext =
    "EAGLContext_initWithAPI";
inline constexpr const char *kEaglSetCurrent =
    "EAGLContext_setCurrentContext";
inline constexpr const char *kEaglPresent =
    "EAGLContext_presentRenderbuffer";
inline constexpr const char *kEaglSurfaceBuffer = "EAGL_surfaceBuffer";

/**
 * Cider's diplomatic EAGL dylib: each export is a diplomat into the
 * corresponding libEGLbridge.so function.
 */
binfmt::LibraryImage
makeDiplomaticEaglDylib(binfmt::LibraryRegistry &domestic_libs);

/**
 * The native Apple EAGL used by the iPad mini configuration: window
 * memory comes straight from the device's graphics allocator.
 */
binfmt::LibraryImage makeAppleEaglDylib(gpu::SimGpu &gpu);

} // namespace cider::ios

#endif // CIDER_IOS_EAGL_H
