/**
 * @file
 * The eventpump: Cider's input bridge thread inside each iOS app.
 *
 * "Cider creates a new thread in each iOS app to act as a bridge
 * between the Android input system and the Mach IPC port expecting
 * input events. This thread, the eventpump, listens for events from
 * the Android CiderPress app on a BSD socket. It then pumps those
 * events into the iOS app via Mach IPC" (paper section 5.2).
 */

#ifndef CIDER_IOS_EVENTPUMP_H
#define CIDER_IOS_EVENTPUMP_H

#include <atomic>
#include <memory>
#include <thread>

#include "android/input.h"
#include "binfmt/program.h"
#include "kernel/file.h"
#include "xnu/mach_ipc.h"

namespace cider::ios {

/** Mach message ids delivered to the app's event port. */
namespace hidmsg {

inline constexpr std::int32_t HidEvent = 600;  ///< body: MotionEvent
inline constexpr std::int32_t Lifecycle = 601; ///< body: u8 (1=pause,2=resume)
inline constexpr std::int32_t Quit = 602;
/** Gesture/event kinds encoded in lifecycle payloads. */
inline constexpr std::uint8_t PauseCode = 1;
inline constexpr std::uint8_t ResumeCode = 2;

} // namespace hidmsg

class EventPump
{
  public:
    /**
     * Start the bridge thread in @p app_env's process: connect to
     * CiderPress at @p socket_path, read framed control messages, and
     * pump them to @p event_port (a receive right in the app's
     * space). Blocks until the connection attempt resolves.
     */
    bool start(binfmt::UserEnv &app_env, const std::string &socket_path,
               xnu::mach_port_name_t event_port);

    /** Join the bridge thread (socket EOF/stop must arrive first). */
    void join();

    /**
     * Force the bridge socket shut so a blocked read returns EOF —
     * used when the app dies while the pump is still parked.
     */
    void stop();

    std::uint64_t eventsPumped() const { return pumped_; }

  private:
    std::thread thread_;
    std::shared_ptr<kernel::OpenFile> socket_;
    std::atomic<std::uint64_t> pumped_{0};
    std::atomic<bool> connected_{false};
};

} // namespace cider::ios

#endif // CIDER_IOS_EVENTPUMP_H
