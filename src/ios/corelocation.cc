#include "ios/corelocation.h"

#include <memory>

#include "android/location.h"
#include "diplomat/diplomat.h"
#include "ios/libsystem.h"

namespace cider::ios {

binfmt::LibraryImage
makeDiplomaticCoreLocationDylib(binfmt::LibraryRegistry &domestic_libs)
{
    binfmt::LibraryImage lib;
    lib.name = "CoreLocation.dylib";
    lib.format = kernel::BinaryFormat::MachO;
    lib.pages = 28;

    binfmt::LibraryRegistry *libs = &domestic_libs;
    auto d = std::make_shared<diplomat::Diplomat>(
        kCLGetFix,
        [libs](binfmt::UserEnv &) -> const binfmt::Symbol * {
            binfmt::LibraryImage *img = libs->find("liblocation.so");
            return img ? img->exports.find(android::kLocationGetFix)
                       : nullptr;
        });
    lib.exports.add(kCLGetFix,
                    [d](binfmt::UserEnv &env,
                        std::vector<binfmt::Value> &args) {
                        return d->call(env, args);
                    });
    return lib;
}

binfmt::LibraryImage
makeAppleCoreLocationDylib()
{
    binfmt::LibraryImage lib;
    lib.name = "CoreLocation.dylib";
    lib.format = kernel::BinaryFormat::MachO;
    lib.pages = 28;

    lib.exports.add(
        kCLGetFix,
        [](binfmt::UserEnv &env, std::vector<binfmt::Value> &) {
            // Native path: the GPS hardware's registry entry.
            LibSystem libc(env);
            std::uint64_t entry =
                libc.ioServiceGetMatchingService("gps0");
            if (entry == 0)
                return binfmt::Value{std::int64_t{0}};
            std::string lat =
                libc.ioRegistryGetProperty(entry, "latE6");
            std::string lon =
                libc.ioRegistryGetProperty(entry, "lonE6");
            if (lat.empty() || lon.empty())
                return binfmt::Value{std::int64_t{0}};
            std::int64_t packed =
                (static_cast<std::int64_t>(std::atol(lat.c_str()))
                 << 32) |
                (static_cast<std::uint32_t>(
                    std::atol(lon.c_str())));
            return binfmt::Value{packed};
        });
    return lib;
}

} // namespace cider::ios
