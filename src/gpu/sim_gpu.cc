#include "gpu/sim_gpu.h"

#include "base/cost_clock.h"
#include "base/logging.h"

namespace cider::gpu {

BufferPtr
BufferManager::create(std::uint32_t width, std::uint32_t height)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto buf = std::make_shared<GraphicsBuffer>();
    buf->id = nextId_++;
    buf->width = width;
    buf->height = height;
    buf->pixels.assign(static_cast<std::size_t>(width) * height, 0);
    buffers_[buf->id] = buf;
    return buf;
}

BufferPtr
BufferManager::find(std::uint32_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buffers_.find(id);
    return it == buffers_.end() ? nullptr : it->second;
}

bool
BufferManager::destroy(std::uint32_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    return buffers_.erase(id) > 0;
}

std::size_t
BufferManager::liveCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return buffers_.size();
}

SimGpu::SimGpu(const hw::DeviceProfile &profile) : profile_(profile) {}

void
SimGpu::submit(const std::vector<GpuCommand> &cmds)
{
    for (const GpuCommand &cmd : cmds) {
        charge(profile_.gpuPerCommandNs);
        execute(cmd);
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.commands += cmds.size();
}

void
SimGpu::execute(const GpuCommand &cmd)
{
    switch (cmd.op) {
      case GpuOp::ClearColor: {
          auto chan = [](double v) {
              if (v < 0)
                  v = 0;
              if (v > 1)
                  v = 1;
              return static_cast<std::uint32_t>(v * 255.0);
          };
          clearColor_ = 0xff000000 | (chan(cmd.f0) << 16) |
                        (chan(cmd.f1) << 8) | chan(cmd.f2);
          break;
      }
      case GpuOp::Clear: {
          BufferPtr buf = buffers_.find(cmd.target);
          if (buf) {
              charge(buf->pixels.size() * profile_.gpuPerFragmentPs /
                     1000);
              std::fill(buf->pixels.begin(), buf->pixels.end(),
                        clearColor_);
              std::lock_guard<std::mutex> lock(mu_);
              stats_.fragments += buf->pixels.size();
          }
          break;
      }
      case GpuOp::DrawArrays: {
          std::uint64_t vertices = cmd.a;
          charge(vertices * profile_.gpuPerVertexNs);
          BufferPtr buf = buffers_.find(cmd.target);
          std::uint64_t fragments = vertices * 24; // avg triangle area
          if (buf) {
              fragments = std::min<std::uint64_t>(fragments,
                                                  buf->pixels.size());
              charge(fragments * profile_.gpuPerFragmentPs / 1000);
              // Touch a deterministic pixel pattern so tests can see
              // that the draw landed.
              std::size_t stride =
                  std::max<std::size_t>(1, buf->pixels.size() /
                                               (fragments + 1));
              for (std::size_t i = 0; i < buf->pixels.size();
                   i += stride)
                  buf->pixels[i] ^= 0x00ffffff & (0x9e3779b9u + i);
          } else {
              charge(fragments * profile_.gpuPerFragmentPs / 1000);
          }
          std::lock_guard<std::mutex> lock(mu_);
          stats_.vertices += vertices;
          stats_.fragments += fragments;
          break;
      }
      case GpuOp::BindTexture:
      case GpuOp::UseProgram:
      case GpuOp::SetUniform:
        break; // state changes: command cost only
      case GpuOp::TexImage2D:
        // Texture upload: per-texel transfer.
        charge(cmd.a * cmd.b * profile_.gpuPerFragmentPs / 1000);
        break;
      case GpuOp::FenceInsert: {
          std::lock_guard<std::mutex> lock(mu_);
          fences_[cmd.a] = true;
          break;
      }
      case GpuOp::FenceWait: {
          // The Cider prototype's broken fence support stalls the
          // pipeline; model it as several extra fence round trips.
          std::uint64_t stall = profile_.gpuFenceNs;
          if (fenceBug_)
              stall *= 6;
          charge(stall);
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.fenceWaits;
          break;
      }
      case GpuOp::Present: {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.presents;
          break;
      }
    }
}

GpuStats
SimGpu::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

GpuDevice::GpuDevice(SimGpu &gpu) : Device("nvhost", "gpu"), gpu_(gpu)
{
    setProperty("vendor", "nvidia");
    setProperty("model", "tegra3");
}

kernel::SyscallResult
GpuDevice::ioctl(kernel::Thread &, std::uint64_t req, void *arg)
{
    switch (req) {
      case kIoctlSubmit: {
          auto *cmds = static_cast<std::vector<GpuCommand> *>(arg);
          if (!cmds)
              return kernel::SyscallResult::failure(kernel::lnx::FAULT);
          gpu_.submit(*cmds);
          return kernel::SyscallResult::success(
              static_cast<std::int64_t>(cmds->size()));
      }
      case kIoctlCreateBuffer: {
          auto *args = static_cast<CreateBufferArgs *>(arg);
          if (!args)
              return kernel::SyscallResult::failure(kernel::lnx::FAULT);
          BufferPtr buf = gpu_.buffers().create(args->width,
                                                args->height);
          args->outId = buf->id;
          return kernel::SyscallResult::success(buf->id);
      }
      case kIoctlStats: {
          auto *out = static_cast<GpuStats *>(arg);
          if (!out)
              return kernel::SyscallResult::failure(kernel::lnx::FAULT);
          *out = gpu_.stats();
          return kernel::SyscallResult::success();
      }
      default:
        return kernel::SyscallResult::failure(kernel::lnx::INVAL);
    }
}

FramebufferDevice::FramebufferDevice(SimGpu &gpu, std::uint32_t width,
                                     std::uint32_t height)
    : Device("fb0", "framebuffer"), gpu_(gpu)
{
    front_.id = 0;
    front_.width = width;
    front_.height = height;
    front_.pixels.assign(static_cast<std::size_t>(width) * height, 0);
    setProperty("width", std::to_string(width));
    setProperty("height", std::to_string(height));
}

kernel::SyscallResult
FramebufferDevice::ioctl(kernel::Thread &, std::uint64_t req, void *arg)
{
    switch (req) {
      case kIoctlPresent: {
          std::uint32_t buf_id =
              static_cast<std::uint32_t>(reinterpret_cast<std::uintptr_t>(arg));
          BufferPtr buf = gpu_.buffers().find(buf_id);
          if (!buf)
              return kernel::SyscallResult::failure(kernel::lnx::INVAL);
          charge(std::min(front_.pixels.size(), buf->pixels.size()) *
                 gpu_.profile().gpuPerFragmentPs / 1000);
          std::size_t n =
              std::min(front_.pixels.size(), buf->pixels.size());
          std::copy_n(buf->pixels.begin(), n, front_.pixels.begin());
          ++presents_;
          return kernel::SyscallResult::success();
      }
      case kIoctlGetInfo: {
          auto *info = static_cast<FbInfo *>(arg);
          if (!info)
              return kernel::SyscallResult::failure(kernel::lnx::FAULT);
          info->width = front_.width;
          info->height = front_.height;
          return kernel::SyscallResult::success();
      }
      default:
        return kernel::SyscallResult::failure(kernel::lnx::INVAL);
    }
}

} // namespace cider::gpu
