/**
 * @file
 * The simulated GPU and graphics memory.
 *
 * Both ecosystems reach this hardware, but only through their own
 * opaque interfaces: Android's GL stack drives it through
 * device-specific ioctls on the Linux driver node, and iOS reaches
 * it through I/O Kit (Mach IPC) on a real Apple device. Cider's whole
 * graphics story (paper section 5.3) is that the foreign path cannot
 * be reimplemented — so foreign apps must reach the *domestic* path
 * via diplomats. The simulator therefore exposes exactly those two
 * frontends over one SimGpu.
 *
 * Rendering is modelled, not rasterised faithfully: draws charge
 * per-vertex and per-fragment costs from the device profile and write
 * a deterministic pattern into the target buffer so tests can verify
 * that pixels actually moved.
 */

#ifndef CIDER_GPU_SIM_GPU_H
#define CIDER_GPU_SIM_GPU_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "hw/device_profile.h"
#include "kernel/device.h"

namespace cider::gpu {

/** A shareable graphics memory buffer (gralloc / IOSurface backing). */
struct GraphicsBuffer
{
    std::uint32_t id = 0;
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::vector<std::uint32_t> pixels;

    std::size_t sizeBytes() const { return pixels.size() * 4; }
};

using BufferPtr = std::shared_ptr<GraphicsBuffer>;

/**
 * Allocator/registry of graphics buffers. Shared by gralloc (Android)
 * and IOSurface (iOS) so hand-offs between the stacks are zero-copy:
 * both sides hold the same buffer object, found by id.
 */
class BufferManager
{
  public:
    BufferPtr create(std::uint32_t width, std::uint32_t height);
    BufferPtr find(std::uint32_t id) const;
    bool destroy(std::uint32_t id);
    std::size_t liveCount() const;

  private:
    mutable std::mutex mu_;
    std::map<std::uint32_t, BufferPtr> buffers_;
    std::uint32_t nextId_ = 1;
};

/** GPU command opcodes. */
enum class GpuOp
{
    ClearColor,  ///< f0..f3 = rgba
    Clear,       ///< fill target with clear colour
    DrawArrays,  ///< a = vertex count
    BindTexture, ///< a = texture buffer id
    TexImage2D,  ///< a = width, b = height (upload cost)
    UseProgram,  ///< a = program id
    SetUniform,
    FenceInsert, ///< a = fence id
    FenceWait,   ///< a = fence id
    Present,     ///< hand target to scanout
};

struct GpuCommand
{
    GpuOp op = GpuOp::Clear;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    double f0 = 0, f1 = 0, f2 = 0, f3 = 0;
    std::uint32_t target = 0; ///< render-target buffer id
};

/** Counters for tests and benches. */
struct GpuStats
{
    std::uint64_t commands = 0;
    std::uint64_t vertices = 0;
    std::uint64_t fragments = 0;
    std::uint64_t fenceWaits = 0;
    std::uint64_t presents = 0;
};

class SimGpu
{
  public:
    explicit SimGpu(const hw::DeviceProfile &profile);

    /** Execute a command stream, charging the active clock. */
    void submit(const std::vector<GpuCommand> &cmds);

    BufferManager &buffers() { return buffers_; }
    GpuStats stats() const;

    /**
     * Reproduce the prototype's OpenGL ES library bug: "incorrect
     * 'fence' synchronization primitive support ... degraded our
     * graphics performance" (paper section 6.4). When enabled, every
     * fence wait stalls for several extra fence periods.
     */
    void setFenceBug(bool enabled) { fenceBug_ = enabled; }
    bool fenceBug() const { return fenceBug_; }

    const hw::DeviceProfile &profile() const { return profile_; }

  private:
    void execute(const GpuCommand &cmd);

    const hw::DeviceProfile &profile_;
    BufferManager buffers_;
    mutable std::mutex mu_;
    GpuStats stats_;
    std::map<std::uint64_t, bool> fences_;
    std::uint32_t clearColor_ = 0xff000000;
    bool fenceBug_ = false;
};

/**
 * The Linux GPU driver node (/dev/nvhost): Android's GL stack
 * submits command streams through device-specific ioctls here.
 */
class GpuDevice : public kernel::Device
{
  public:
    /** ioctl request codes (opaque outside the domestic GL stack). */
    static constexpr std::uint64_t kIoctlSubmit = 0xc0de0001;
    static constexpr std::uint64_t kIoctlCreateBuffer = 0xc0de0002;
    static constexpr std::uint64_t kIoctlStats = 0xc0de0003;

    explicit GpuDevice(SimGpu &gpu);

    kernel::SyscallResult ioctl(kernel::Thread &t, std::uint64_t req,
                                void *arg) override;

    SimGpu &gpu() { return gpu_; }

  private:
    SimGpu &gpu_;
};

/** Argument block for kIoctlCreateBuffer. */
struct CreateBufferArgs
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::uint32_t outId = 0;
};

/**
 * The Linux framebuffer driver (the Nexus 7 display). Presenting
 * copies a buffer to the scanout front buffer.
 */
class FramebufferDevice : public kernel::Device
{
  public:
    static constexpr std::uint64_t kIoctlPresent = 0xfb000001;
    static constexpr std::uint64_t kIoctlGetInfo = 0xfb000002;

    FramebufferDevice(SimGpu &gpu, std::uint32_t width,
                      std::uint32_t height);

    kernel::SyscallResult ioctl(kernel::Thread &t, std::uint64_t req,
                                void *arg) override;

    const GraphicsBuffer &frontBuffer() const { return front_; }
    std::uint64_t presentCount() const { return presents_; }
    std::uint32_t width() const { return front_.width; }
    std::uint32_t height() const { return front_.height; }

  private:
    SimGpu &gpu_;
    GraphicsBuffer front_;
    std::uint64_t presents_ = 0;
};

/** Argument block for FramebufferDevice::kIoctlGetInfo. */
struct FbInfo
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;
};

} // namespace cider::gpu

#endif // CIDER_GPU_SIM_GPU_H
