#include "kernel/pipe.h"

#include "base/cost_clock.h"
#include "hw/device_profile.h"

namespace cider::kernel {

SyscallResult
Pipe::read(Bytes &out, std::size_t n, bool nonblock)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (buf_.empty()) {
        if (!writeOpen_)
            return SyscallResult::success(0); // EOF
        if (nonblock)
            return SyscallResult::failure(lnx::AGAIN);
        cv_.wait(lock);
    }
    charge(profile_.pipeTransferNs / 2);
    std::size_t take = std::min(n, buf_.size());
    out.assign(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(take));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(take));
    cv_.notify_all();
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

SyscallResult
Pipe::write(const Bytes &data, bool nonblock)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (!readOpen_)
        return SyscallResult::failure(lnx::PIPE);
    while (buf_.size() + data.size() > capacity) {
        if (nonblock)
            return SyscallResult::failure(lnx::AGAIN);
        cv_.wait(lock);
        if (!readOpen_)
            return SyscallResult::failure(lnx::PIPE);
    }
    charge(profile_.pipeTransferNs / 2);
    buf_.insert(buf_.end(), data.begin(), data.end());
    cv_.notify_all();
    return SyscallResult::success(static_cast<std::int64_t>(data.size()));
}

void
Pipe::closeReadEnd()
{
    std::lock_guard<std::mutex> lock(mu_);
    readOpen_ = false;
    cv_.notify_all();
}

void
Pipe::closeWriteEnd()
{
    std::lock_guard<std::mutex> lock(mu_);
    writeOpen_ = false;
    cv_.notify_all();
}

bool
Pipe::readable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !buf_.empty() || !writeOpen_;
}

bool
Pipe::writable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return readOpen_ && buf_.size() < capacity;
}

SyscallResult
PipeEnd::read(Thread &, Bytes &out, std::size_t n)
{
    if (!readEnd_)
        return SyscallResult::failure(lnx::BADF);
    return pipe_->read(out, n, false);
}

SyscallResult
PipeEnd::write(Thread &, const Bytes &data)
{
    if (readEnd_)
        return SyscallResult::failure(lnx::BADF);
    return pipe_->write(data, false);
}

PollState
PipeEnd::poll() const
{
    PollState st;
    if (readEnd_)
        st.readable = pipe_->readable();
    else
        st.writable = pipe_->writable();
    return st;
}

void
PipeEnd::closed()
{
    if (readEnd_)
        pipe_->closeReadEnd();
    else
        pipe_->closeWriteEnd();
}

std::pair<std::shared_ptr<PipeEnd>, std::shared_ptr<PipeEnd>>
makePipe(const hw::DeviceProfile &profile)
{
    auto pipe = std::make_shared<Pipe>(profile);
    return {std::make_shared<PipeEnd>(pipe, true),
            std::make_shared<PipeEnd>(pipe, false)};
}

} // namespace cider::kernel
