#include "kernel/vm.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "base/cost_clock.h"
#include "kernel/fault_rail.h"
#include "kernel/kernel.h"
#include "kernel/sched_rail.h"

namespace cider::kernel {

namespace {

/** Writing one new vm_map entry on fork/alias (list insert + bookkeeping). */
constexpr std::uint64_t kVmEntryAliasNs = 90;

/** vm_allocate setup: entry insert plus zero-fill reservation. */
constexpr std::uint64_t kVmAllocateNs = 600;

std::uint64_t
pageCount(std::uint64_t bytes)
{
    return (bytes + kVmPageBytes - 1) / kVmPageBytes;
}

/** Copy one page of @p src (zero-fill past its data) into @p dst. */
void
copyPage(const VmObject &src, VmObject &dst, std::uint64_t page)
{
    Bytes buf;
    src.readAt(page * kVmPageBytes, kVmPageBytes, &buf);
    dst.writeAt(page * kVmPageBytes, buf);
}

} // namespace

// ---------------------------------------------------------------------------
// VmObject

namespace {
std::atomic<std::uint64_t> g_vmLiveObjects{0};
} // namespace

VmLiveTally::VmLiveTally() noexcept
{
    g_vmLiveObjects.fetch_add(1, std::memory_order_relaxed);
}

VmLiveTally::VmLiveTally(const VmLiveTally &) noexcept
{
    g_vmLiveObjects.fetch_add(1, std::memory_order_relaxed);
}

VmLiveTally::~VmLiveTally()
{
    g_vmLiveObjects.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t
vmLiveObjects()
{
    return g_vmLiveObjects.load(std::memory_order_relaxed);
}

void
VmObject::readAt(std::uint64_t offset, std::uint64_t len, Bytes *out) const
{
    out->clear();
    out->reserve(len);
    std::uint64_t have = data.size() > offset ? data.size() - offset : 0;
    std::uint64_t copy = std::min(len, have);
    out->insert(out->end(), data.begin() + static_cast<std::ptrdiff_t>(offset),
                data.begin() + static_cast<std::ptrdiff_t>(offset + copy));
    out->resize(len, 0); // zero-fill past established content
}

void
VmObject::writeAt(std::uint64_t offset, const Bytes &src)
{
    if (data.size() < offset + src.size())
        data.resize(offset + src.size(), 0);
    std::copy(src.begin(), src.end(),
              data.begin() + static_cast<std::ptrdiff_t>(offset));
    resident = std::max<std::uint64_t>(resident, pageCount(data.size()));
}

// ---------------------------------------------------------------------------
// VmSubsystem

VmSubsystem::VmSubsystem(const hw::DeviceProfile *profile)
    : profile_(profile ? profile : &hw::DeviceProfile::nexus7())
{}

VmObjectPtr
VmSubsystem::makeObject(std::string name, std::uint64_t pages,
                        std::uint64_t resident)
{
    auto obj = std::make_shared<VmObject>();
    obj->name = std::move(name);
    obj->pages = pages;
    obj->resident = std::min(resident, pages);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.objectsCreated;
    return obj;
}

VmObjectPtr
VmSubsystem::wrapBytes(std::string name, Bytes &&payload)
{
    std::uint64_t pages = pageCount(payload.size());
    auto obj = makeObject(std::move(name), pages, pages);
    obj->data = std::move(payload);
    return obj;
}

VmObjectPtr
VmSubsystem::sharedRegion(const std::string &name, std::uint64_t pages)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sharedRegions_.find(name);
    if (it != sharedRegions_.end())
        return it->second;
    auto obj = std::make_shared<VmObject>();
    obj->name = name;
    obj->pages = pages;
    obj->resident = pages;
    obj->sharedRegion = true;
    ++stats_.objectsCreated;
    stats_.sharedRegionPages += pages;
    sharedRegions_[name] = obj;
    return obj;
}

std::uint64_t
VmSubsystem::pageCopyBytesNs() const
{
    return kVmPageBytes * profile_->memWriteBytePs / 1000;
}

std::uint64_t
VmSubsystem::cowFaultNs() const
{
    return profile_->pageFaultNs + pageCopyBytesNs();
}

void
VmSubsystem::noteCowFault(std::uint64_t pages_broken)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.cowFaults;
    stats_.brokenPages += pages_broken;
}

void
VmSubsystem::noteFork(bool eager)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (eager)
        ++stats_.eagerForks;
    else
        ++stats_.cowForks;
}

void
VmSubsystem::noteOolZeroCopy()
{
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.oolZeroCopySends;
}

void
VmSubsystem::noteBodySend(bool promoted)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (promoted)
        ++stats_.oolPromotedBodies;
    else
        ++stats_.inlineBodies;
}

VmStats
VmSubsystem::statsSnapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

// ---------------------------------------------------------------------------
// VmMap

VmSubsystem &
VmMap::vm() const
{
    if (vm_)
        return *vm_;
    /** Fallback for maps never bound to a kernel (bare unit-test
     *  values, standalone MachIpc instances). */
    static VmSubsystem fallback;
    return fallback;
}

std::uint64_t
VmMap::pages() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t total = 0;
    for (const VmEntry &e : entries_)
        total += e.pages;
    return total;
}

std::uint64_t
VmMap::privatePages() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t total = 0;
    for (const VmEntry &e : entries_)
        if (!e.shared)
            total += e.pages;
    return total;
}

void
VmMap::addMapping(const std::string &name, std::uint64_t pages, bool shared)
{
    // Legacy loader surface: image segments arrive fully resident (an
    // eager fork would have to copy their contents). No charge here —
    // loaders charge their own link/IO costs.
    VmObjectPtr obj = vm().makeObject(name, pages, pages);
    mapObject(name, std::move(obj), VM_PROT_RW, /*cow=*/false, shared);
}

bool
VmMap::hasMapping(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const VmEntry &e : entries_)
        if (e.name == name)
            return true;
    return false;
}

void
VmMap::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    entries_.clear();
    nextBase_ = 0x100000000ull;
}

std::uint64_t
VmMap::mapObject(const std::string &name, VmObjectPtr object,
                 std::uint8_t prot, bool cow, bool shared)
{
    std::lock_guard<std::mutex> lk(mu_);
    VmEntry e;
    e.name = name;
    e.base = nextBase_;
    e.pages = object ? object->pages : 0;
    e.object = std::move(object);
    e.prot = prot;
    e.cow = cow;
    e.shared = shared;
    nextBase_ += std::max<std::uint64_t>(e.pages, 1) * kVmPageBytes;
    entries_.push_back(std::move(e));
    return entries_.back().base;
}

std::uint64_t
VmMap::allocate(const std::string &name, std::uint64_t pages)
{
    if (CIDER_FAULT_POINT("vm.allocate"))
        return 0; // injected resource shortage
    charge(kVmAllocateNs);
    VmObjectPtr obj = vm().makeObject(name, pages, /*resident=*/0);
    return mapObject(name, std::move(obj), VM_PROT_RW, /*cow=*/false,
                     /*shared=*/false);
}

bool
VmMap::deallocate(std::uint64_t addr)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->contains(addr)) {
            entries_.erase(it);
            return true;
        }
    }
    return false;
}

void
VmMap::breakPageLocked(VmEntry &e, std::uint64_t page)
{
    if (!e.shadow) {
        e.shadow = vm().makeObject(e.name + ":shadow", e.pages, 0);
    }
    copyPage(*e.object, *e.shadow, page);
    vm().noteCowFault(1);
}

int
VmMap::write(std::uint64_t addr, const Bytes &src)
{
    std::uint64_t len = src.size();
    std::unique_lock<std::mutex> lk(mu_);
    VmEntry *e = findByAddrLocked(addr);
    if (!e || addr + len > e->base + e->sizeBytes())
        return -1;
    if (!(e->prot & VM_PROT_WRITE))
        return -1;

    if (len == 0)
        return 0;

    std::uint64_t first = (addr - e->base) / kVmPageBytes;
    std::uint64_t last = (addr + len - 1 - e->base) / kVmPageBytes;
    if (e->cow) {
        for (std::uint64_t p = first; p <= last; ++p) {
            if (e->broken.count(p))
                continue;
            // The fault is taken with the map unlocked: SchedRail may
            // interleave another guest here (e.g. an OOL copyin racing
            // this writer), and the entry must be revalidated after.
            lk.unlock();
            CIDER_SCHED_POINT("vm.fault");
            if (CIDER_FAULT_POINT("vm.fault"))
                return -2; // injected paging error
            charge(vm().cowFaultNs());
            lk.lock();
            e = findByAddrLocked(addr);
            if (!e || addr + len > e->base + e->sizeBytes() ||
                !(e->prot & VM_PROT_WRITE))
                return -1;
            if (!e->cow)
                break; // entry lost its COW state while unlocked
            if (e->broken.insert(p).second)
                breakPageLocked(*e, p);
        }
    }

    charge(len * vm().profile().memWriteBytePs / 1000);
    std::uint64_t off = addr - e->base;
    if (e->cow)
        e->shadow->writeAt(off, src);
    else
        e->object->writeAt(off, src);
    return 0;
}

int
VmMap::read(std::uint64_t addr, std::uint64_t len, Bytes *out) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const VmEntry *e = nullptr;
    for (const VmEntry &cand : entries_) {
        if (cand.contains(addr)) {
            e = &cand;
            break;
        }
    }
    if (!e || addr + len > e->base + e->sizeBytes())
        return -1;
    charge(len * vm().profile().memReadBytePs / 1000);
    out->clear();
    if (len == 0)
        return 0;

    // Assemble page by page: broken pages come from the shadow.
    std::uint64_t off = addr - e->base;
    std::uint64_t done = 0;
    Bytes chunk;
    while (done < len) {
        std::uint64_t cur = off + done;
        std::uint64_t page = cur / kVmPageBytes;
        std::uint64_t in_page = cur % kVmPageBytes;
        std::uint64_t take = std::min(len - done, kVmPageBytes - in_page);
        const VmObject &src =
            (e->cow && e->broken.count(page)) ? *e->shadow : *e->object;
        src.readAt(cur, take, &chunk);
        out->insert(out->end(), chunk.begin(), chunk.end());
        done += take;
    }
    return 0;
}

void
VmMap::forkFrom(VmMap &parent, bool eager)
{
    std::scoped_lock lk(parent.mu_, mu_);
    if (parent.vm_)
        vm_ = parent.vm_;
    nextBase_ = parent.nextBase_;
    entries_.clear();

    for (VmEntry &pe : parent.entries_) {
        if (pe.shared) {
            // Shared submaps (dyld shared cache) alias for free: no
            // protect sweep, one entry write.
            charge(kVmEntryAliasNs);
            entries_.push_back(pe);
            continue;
        }

        if (eager) {
            // Pre-VM baseline: copy the page tables AND all resident
            // content at fork time.
            std::uint64_t res = std::min(pe.object->resident, pe.pages);
            charge(pe.pages * vm().profile().pageCopyEntryNs +
                   res * vm().pageCopyBytesNs());
            VmObjectPtr copy =
                vm().makeObject(pe.object->name, pe.pages, res);
            copy->data = pe.object->data;
            // Broken pages live in the shadow; fold them in.
            for (std::uint64_t p : pe.broken)
                copyPage(*pe.shadow, *copy, p);
            VmEntry ce = pe;
            ce.object = std::move(copy);
            ce.cow = false;
            ce.shadow.reset();
            ce.broken.clear();
            entries_.push_back(std::move(ce));
            continue;
        }

        // COW: both sides alias the backing object; only the PTE
        // write-protect sweep is charged (a real COW fork pays the
        // same walk), content copies wait for write faults.
        charge(kVmEntryAliasNs +
               pe.pages * vm().profile().pageCopyEntryNs);
        VmEntry ce = pe;
        ce.cow = true;
        pe.cow = true;
        if (pe.shadow) {
            // Pages the parent had already privately broken are
            // duplicated now — they are not in the shared object.
            charge(pe.broken.size() * vm().pageCopyBytesNs());
            VmObjectPtr dup =
                vm().makeObject(pe.shadow->name, pe.shadow->pages, 0);
            for (std::uint64_t p : pe.broken)
                copyPage(*pe.shadow, *dup, p);
            ce.shadow = std::move(dup);
        }
        entries_.push_back(std::move(ce));
    }

    vm().noteFork(eager);
}

VmObjectPtr
VmMap::snapshotForSend(std::uint64_t addr, bool deallocate)
{
    // In-flight OOL vs concurrent writer is a real interleaving; give
    // armed schedules a decision point before the copyin commits.
    CIDER_SCHED_POINT("vm.oolCopyin");

    std::lock_guard<std::mutex> lk(mu_);
    VmEntry *e = findByAddrLocked(addr);
    if (!e)
        return nullptr;

    VmObjectPtr snap;
    if (e->broken.empty()) {
        // No privately broken pages: the backing object itself IS the
        // snapshot (writers on COW entries never touch it).
        snap = e->object;
        vm().noteOolZeroCopy();
    } else {
        // Compose object + shadow overlay into a stable snapshot.
        charge(e->broken.size() * vm().pageCopyBytesNs());
        snap = vm().makeObject(e->name + ":snap", e->pages,
                               e->object->resident);
        snap->data = e->object->data;
        for (std::uint64_t p : e->broken)
            copyPage(*e->shadow, *snap, p);
    }

    if (deallocate) {
        // Moved: the sender loses its mapping.
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (&*it == e) {
                entries_.erase(it);
                break;
            }
        }
    } else {
        // Copied: the sender keeps the mapping, but it goes COW so
        // later sender writes cannot reach the in-flight snapshot.
        if (snap == e->object) {
            e->cow = true;
        } else {
            // Snapshot already diverged (shadow overlay); the sender
            // keeps writing through its own shadow as before.
        }
    }
    return snap;
}

VmEntry *
VmMap::find(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (VmEntry &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

VmEntry *
VmMap::findByAddr(std::uint64_t addr)
{
    std::lock_guard<std::mutex> lk(mu_);
    return findByAddrLocked(addr);
}

VmEntry *
VmMap::findByAddrLocked(std::uint64_t addr)
{
    for (VmEntry &e : entries_)
        if (e.contains(addr))
            return &e;
    return nullptr;
}

std::size_t
VmMap::entryCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
}

std::vector<VmEntry>
VmMap::entriesSnapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_;
}

// ---------------------------------------------------------------------------
// VmDevice

VmDevice::VmDevice(Kernel &kernel)
    : Device("vm", "proc"), kernel_(kernel)
{}

SyscallResult
VmDevice::read(Thread &, Bytes &out, std::size_t n)
{
    std::ostringstream os;
    VmStats s = kernel_.vm().statsSnapshot();
    os << "vm objects_created=" << s.objectsCreated
       << " cow_faults=" << s.cowFaults
       << " broken_pages=" << s.brokenPages
       << " shared_region_pages=" << s.sharedRegionPages << "\n"
       << "   forks cow=" << s.cowForks << " eager=" << s.eagerForks << "\n"
       << "   ool zero_copy_sends=" << s.oolZeroCopySends
       << " promoted_bodies=" << s.oolPromotedBodies
       << " inline_bodies=" << s.inlineBodies << "\n";

    kernel_.forEachProcess([&os](Process &p) {
        os << "pid " << p.pid() << " (" << p.name()
           << "): " << p.mem().entryCount() << " entries, "
           << p.mem().pages() << " pages ("
           << p.mem().privatePages() << " private)\n";
        for (const VmEntry &e : p.mem().entriesSnapshot()) {
            os << "  " << std::hex << e.base << std::dec << " +" << e.pages
               << "p " << e.name << " prot="
               << (e.prot & VM_PROT_READ ? "r" : "-")
               << (e.prot & VM_PROT_WRITE ? "w" : "-")
               << (e.cow ? " cow" : "") << (e.shared ? " shared" : "");
            if (!e.broken.empty())
                os << " broken=" << e.broken.size();
            os << "\n";
        }
    });

    std::string text = os.str();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(),
               text.begin() + static_cast<std::ptrdiff_t>(take));
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

} // namespace cider::kernel
