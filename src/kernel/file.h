/**
 * @file
 * Open-file abstraction of the simulated domestic kernel.
 *
 * Everything reachable through a file descriptor (regular files,
 * pipe ends, UNIX sockets, device nodes) implements OpenFile. The
 * FdTable stores shared FileDescription objects so dup()ed
 * descriptors share offsets, as on Linux.
 */

#ifndef CIDER_KERNEL_FILE_H
#define CIDER_KERNEL_FILE_H

#include <cstdint>
#include <memory>
#include <string>

#include "base/bytes.h"
#include "kernel/types.h"

namespace cider::kernel {

class Thread;

/** open(2) flags understood by the simulated kernel. */
namespace oflag {

inline constexpr int RDONLY = 0x0;
inline constexpr int WRONLY = 0x1;
inline constexpr int RDWR = 0x2;
inline constexpr int CREAT = 0x40;
inline constexpr int TRUNC = 0x200;
inline constexpr int NONBLOCK = 0x800;
inline constexpr int CLOEXEC = 0x80000;

} // namespace oflag

/** lseek whence values. */
namespace seekw {

inline constexpr int SET = 0;
inline constexpr int CUR = 1;
inline constexpr int END = 2;

} // namespace seekw

/** Readiness bits reported through poll()/select(). */
struct PollState
{
    bool readable = false;
    bool writable = false;
    bool error = false;
};

/**
 * One open file object. Methods return SyscallResult so error paths
 * carry Linux errnos end to end.
 */
class OpenFile
{
  public:
    virtual ~OpenFile() = default;

    /** Short type tag for tests and /proc-style listings. */
    virtual std::string kind() const = 0;

    /** Read up to @p n bytes into @p out; value = bytes read. */
    virtual SyscallResult read(Thread &t, Bytes &out, std::size_t n);

    /** Write @p data; value = bytes written. */
    virtual SyscallResult write(Thread &t, const Bytes &data);

    /** Device-specific control; default is ENOTTY like Linux. */
    virtual SyscallResult ioctl(Thread &t, std::uint64_t req, void *arg);

    /** Reposition the file offset; ESPIPE for unseekable objects. */
    virtual SyscallResult seek(std::int64_t offset, int whence);

    /** Non-destructive readiness probe used by select()/poll(). */
    virtual PollState poll() const;

    /** Called once when the last descriptor referencing this closes. */
    virtual void closed() {}
};

/** A descriptor-table entry: open file plus shared offset/flags. */
struct FileDescription
{
    std::shared_ptr<OpenFile> file;
    std::uint64_t offset = 0;
    bool cloexec = false;
    bool nonblock = false;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_FILE_H
