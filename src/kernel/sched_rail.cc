#include "kernel/sched_rail.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>

#include "base/logging.h"

namespace cider::kernel {

// ---------------------------------------------------------------------------
// SchedResult

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::vector<std::uint32_t>
SchedResult::schedule() const
{
    std::vector<std::uint32_t> out;
    out.reserve(trace.size());
    for (const SchedEvent &ev : trace)
        out.push_back(ev.chosen);
    return out;
}

std::string
SchedResult::traceText() const
{
    std::string out = "# schedrail trace v1\n";
    for (const SchedEvent &ev : trace) {
        appendf(out, "%" PRIu64 " %c pick=t%" PRIu32 "%s enabled=[",
                ev.index, ev.kind, ev.chosen, ev.timeoutFired ? "!" : "");
        for (std::size_t i = 0; i < ev.enabled.size(); ++i)
            appendf(out, "%st%" PRIu32, i ? "," : "", ev.enabled[i]);
        appendf(out, "] site=%s\n", ev.site ? ev.site : "?");
    }
    if (deadlocked) {
        out += "# deadlock\n";
        for (const std::string &b : blockedThreads)
            out += "#   " + b + "\n";
    }
    return out;
}

bool
SchedResult::writeTrace(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return false;
    f << traceText();
    return static_cast<bool>(f);
}

std::vector<std::uint32_t>
SchedResult::parseSchedule(const std::string &text)
{
    std::vector<std::uint32_t> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t p = line.find("pick=t");
        if (p == std::string::npos)
            continue;
        p += 6;
        std::uint32_t v = 0;
        bool any = false;
        while (p < line.size() && line[p] >= '0' && line[p] <= '9') {
            v = v * 10u + static_cast<std::uint32_t>(line[p] - '0');
            ++p;
            any = true;
        }
        if (any)
            out.push_back(v);
    }
    return out;
}

// ---------------------------------------------------------------------------
// LockOrderGraph

namespace {

/** Locks the calling host thread currently holds, oldest first. */
thread_local std::vector<const void *> t_heldLocks;

} // namespace

void
LockOrderGraph::setTracking(bool on)
{
    tracking_.store(on, std::memory_order_relaxed);
}

void
LockOrderGraph::acquired(const void *lock, const char *label)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        Node &node = nodes_[lock];
        if (node.label.empty())
            node.label = label && *label ? label : "lck";
        for (const void *held : t_heldLocks)
            if (held != lock)
                ++nodes_[held].out[lock];
    }
    t_heldLocks.push_back(lock);
}

void
LockOrderGraph::released(const void *lock)
{
    // Tolerate locks acquired before tracking flipped on: a release
    // with no matching entry is a no-op.
    auto it = std::find(t_heldLocks.rbegin(), t_heldLocks.rend(), lock);
    if (it != t_heldLocks.rend())
        t_heldLocks.erase(std::next(it).base());
}

void
LockOrderGraph::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    nodes_.clear();
}

std::size_t
LockOrderGraph::nodeCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return nodes_.size();
}

std::size_t
LockOrderGraph::edgeCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto &kv : nodes_)
        n += kv.second.out.size();
    return n;
}

std::vector<std::string>
LockOrderGraph::cycles() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    std::map<const void *, int> color; // 0 white, 1 on stack, 2 done
    std::vector<const void *> stack;

    auto labelOf = [&](const void *n) -> std::string {
        auto it = nodes_.find(n);
        return it == nodes_.end() || it->second.label.empty()
                   ? "?"
                   : it->second.label;
    };

    std::function<void(const void *)> dfs = [&](const void *u) {
        color[u] = 1;
        stack.push_back(u);
        auto it = nodes_.find(u);
        if (it != nodes_.end()) {
            for (const auto &edge : it->second.out) {
                const void *v = edge.first;
                if (color[v] == 1) {
                    std::string s;
                    auto from =
                        std::find(stack.begin(), stack.end(), v);
                    for (auto p = from; p != stack.end(); ++p)
                        s += labelOf(*p) + " -> ";
                    s += labelOf(v);
                    out.push_back(std::move(s));
                } else if (color[v] == 0) {
                    dfs(v);
                }
            }
        }
        stack.pop_back();
        color[u] = 2;
    };

    for (const auto &kv : nodes_)
        if (color[kv.first] == 0)
            dfs(kv.first);
    return out;
}

std::string
LockOrderGraph::dump() const
{
    std::string out = "=== cider lockorder ===\n";
    appendf(out, "tracking: %s\n", tracking() ? "on" : "off");
    std::vector<std::string> cyc = cycles();
    {
        std::lock_guard<std::mutex> lk(mu_);
        std::size_t edges = 0;
        for (const auto &kv : nodes_)
            edges += kv.second.out.size();
        appendf(out, "nodes: %zu edges: %zu\n", nodes_.size(), edges);
        for (const auto &kv : nodes_) {
            for (const auto &edge : kv.second.out) {
                auto dst = nodes_.find(edge.first);
                appendf(out, "  %s -> %s [%" PRIu64 "]\n",
                        kv.second.label.c_str(),
                        dst == nodes_.end() ? "?"
                                            : dst->second.label.c_str(),
                        edge.second);
            }
        }
    }
    appendf(out, "cycles: %zu\n", cyc.size());
    for (const std::string &c : cyc)
        out += "  " + c + "\n";
    return out;
}

// ---------------------------------------------------------------------------
// SchedRail

struct SchedRail::Guest
{
    enum class St
    {
        Ready,
        Running,
        Blocked,
        BlockedDeadline,
        Done,
    };

    std::uint32_t id = 0;
    std::string name;
    std::thread host;
    St st = St::Ready;
    const void *channel = nullptr;
    const char *blockSite = nullptr;
    std::uint64_t blockSeq = 0;
    bool timeoutFired = false;
    std::condition_variable cv;
};

thread_local SchedRail::Guest *SchedRail::tGuest_ = nullptr;

SchedRail &
SchedRail::global()
{
    static SchedRail rail;
    return rail;
}

const void *
SchedRail::guestMarker()
{
    return tGuest_;
}

void
SchedRail::arm(const SchedOptions &opt)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (running_)
        cider_panic("SchedRail::arm: episode in progress");
    if (!guests_.empty())
        cider_panic("SchedRail::arm: spawned guests pending; ",
                    "run() or disarm() first");
    options_ = opt;
    engaged_.store(true, std::memory_order_relaxed);
}

void
SchedRail::disarm()
{
    std::vector<std::thread> hosts;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (running_)
            cider_panic("SchedRail::disarm: episode in progress");
        engaged_.store(false, std::memory_order_relaxed);
        if (!guests_.empty()) {
            // Reap guests spawned but never run: wake them at the
            // start gate with the abort flag so they unwind.
            aborted_ = true;
            for (auto &g : guests_) {
                g->cv.notify_all();
                hosts.push_back(std::move(g->host));
            }
        }
    }
    for (auto &h : hosts)
        if (h.joinable())
            h.join();
    std::lock_guard<std::mutex> lk(mu_);
    guests_.clear();
    aborted_ = false;
}

void
SchedRail::spawn(const char *name, std::function<void()> fn)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!engaged_.load(std::memory_order_relaxed))
        cider_panic("SchedRail::spawn: rail is not armed");
    if (running_)
        cider_panic("SchedRail::spawn: episode in progress");
    auto g = std::make_unique<Guest>();
    g->id = static_cast<std::uint32_t>(guests_.size());
    g->name = name && *name ? name : "guest";
    Guest *gp = g.get();
    guests_.push_back(std::move(g));
    gp->host = std::thread(
        [this, gp, body = std::move(fn)] { guestMain(gp, body); });
}

void
SchedRail::parkUntilScheduled(std::unique_lock<std::mutex> &lk, Guest *g)
{
    g->cv.wait(lk, [&] {
        return aborted_ || (running_ && runningId_ == g->id &&
                            g->st == Guest::St::Running);
    });
    if (aborted_)
        throw SchedRailAbort{};
}

void
SchedRail::guestMain(Guest *g, const std::function<void()> &fn)
{
    tGuest_ = g;
    try {
        {
            std::unique_lock<std::mutex> lk(mu_);
            parkUntilScheduled(lk, g);
        }
        fn();
    } catch (const SchedRailAbort &) {
        // Episode aborted (deadlock or disarm); unwind quietly.
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        guestThrew_ = true;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        g->st = Guest::St::Done;
        if (running_ && !aborted_ && runningId_ == g->id)
            pickNextLocked("thread.exit", 'f');
    }
    tGuest_ = nullptr;
}

SchedResult
SchedRail::run()
{
    std::vector<std::thread> hosts;
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (!engaged_.load(std::memory_order_relaxed))
            cider_panic("SchedRail::run: rail is not armed");
        if (running_)
            cider_panic("SchedRail::run: episode already in progress");
        trace_.clear();
        blockedThreads_.clear();
        preemptions_ = 0;
        nextBlockSeq_ = 0;
        aborted_ = false;
        deadlocked_ = false;
        diverged_ = false;
        guestThrew_ = false;
        runningId_ = kNoGuest;
        rng_ = Rng(options_.seed);
        if (!guests_.empty()) {
            running_ = true;
            pickNextLocked("run.start", 's');
            controllerCv_.wait(lk, [&] { return !running_; });
        }
        hosts.reserve(guests_.size());
        for (auto &g : guests_)
            hosts.push_back(std::move(g->host));
    }
    for (auto &h : hosts)
        if (h.joinable())
            h.join();

    SchedResult r;
    {
        std::lock_guard<std::mutex> lk(mu_);
        r.deadlocked = deadlocked_;
        r.diverged = diverged_;
        r.completed = !deadlocked_ && !guestThrew_;
        r.decisions = trace_.size();
        r.preemptions = preemptions_;
        r.trace = trace_;
        r.blockedThreads = blockedThreads_;
        guests_.clear();
        aborted_ = false;
    }
    lastResult_ = r;
    return r;
}

void
SchedRail::yieldPoint(const char *site)
{
    Guest *g = tGuest_;
    if (!g)
        return;
    std::unique_lock<std::mutex> lk(mu_);
    if (!running_) {
        if (aborted_)
            throw SchedRailAbort{};
        return;
    }
    g->st = Guest::St::Ready;
    pickNextLocked(site, 'y');
    parkUntilScheduled(lk, g);
}

void
SchedRail::pass(const char *site)
{
    Guest *g = tGuest_;
    if (!g)
        return;
    std::unique_lock<std::mutex> lk(mu_);
    if (!running_) {
        if (aborted_)
            throw SchedRailAbort{};
        return;
    }
    g->st = Guest::St::Ready;
    pickNextLocked(site, 'p');
    parkUntilScheduled(lk, g);
}

void
SchedRail::blockOn(const void *channel, const char *site)
{
    Guest *g = tGuest_;
    if (!g)
        cider_panic("SchedRail::blockOn outside a rail guest");
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted_)
        throw SchedRailAbort{};
    g->st = Guest::St::Blocked;
    g->channel = channel;
    g->blockSite = site;
    g->blockSeq = nextBlockSeq_++;
    g->timeoutFired = false;
    pickNextLocked(site, 'b');
    parkUntilScheduled(lk, g);
    g->channel = nullptr;
}

bool
SchedRail::blockOnDeadline(const void *channel, const char *site)
{
    Guest *g = tGuest_;
    if (!g)
        cider_panic("SchedRail::blockOnDeadline outside a rail guest");
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted_)
        throw SchedRailAbort{};
    g->st = Guest::St::BlockedDeadline;
    g->channel = channel;
    g->blockSite = site;
    g->blockSeq = nextBlockSeq_++;
    g->timeoutFired = false;
    pickNextLocked(site, 'd');
    parkUntilScheduled(lk, g);
    g->channel = nullptr;
    bool fired = g->timeoutFired;
    g->timeoutFired = false;
    return fired;
}

void
SchedRail::wakeupChannel(const void *channel, bool all)
{
    if (!engaged())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    Guest *oldest = nullptr;
    for (auto &g : guests_) {
        if (g->channel != channel)
            continue;
        if (g->st != Guest::St::Blocked &&
            g->st != Guest::St::BlockedDeadline)
            continue;
        if (all) {
            g->st = Guest::St::Ready;
            g->channel = nullptr;
        } else if (!oldest || g->blockSeq < oldest->blockSeq) {
            oldest = g.get();
        }
    }
    if (!all && oldest) {
        oldest->st = Guest::St::Ready;
        oldest->channel = nullptr;
    }
}

std::uint32_t
SchedRail::defaultPickLocked(const std::vector<std::uint32_t> &enabled,
                             std::uint32_t prev, char kind) const
{
    auto isReady = [&](std::uint32_t id) {
        return guests_[id]->st == Guest::St::Ready;
    };
    bool prevIn =
        std::find(enabled.begin(), enabled.end(), prev) != enabled.end();
    if (kind == 'y' && prevIn)
        return prev; // non-preemptive: keep running the yielder
    if (kind == 'p') {
        // Voluntary hand-off: prefer another runnable guest so guest
        // spin-waits make progress under deterministic defaults.
        for (std::uint32_t id : enabled)
            if (id != prev && isReady(id))
                return id;
        for (std::uint32_t id : enabled)
            if (id != prev)
                return id;
        return enabled.front();
    }
    // Blocking/finish decisions: prefer a runnable guest; fire a
    // timeout only when nothing else can run.
    for (std::uint32_t id : enabled)
        if (isReady(id))
            return id;
    return enabled.front();
}

void
SchedRail::pickNextLocked(const char *site, char kind)
{
    const std::uint32_t prev = runningId_;
    std::vector<std::uint32_t> enabled;
    bool allDone = true;
    for (const auto &g : guests_) {
        if (g->st == Guest::St::Ready ||
            g->st == Guest::St::BlockedDeadline)
            enabled.push_back(g->id);
        if (g->st != Guest::St::Done)
            allDone = false;
    }

    if (enabled.empty()) {
        if (allDone) {
            running_ = false;
            runningId_ = kNoGuest;
            controllerCv_.notify_all();
            return;
        }
        // Every live guest is parked on a channel with no deadline:
        // nothing can ever wake them. Report and abort the episode.
        deadlocked_ = true;
        for (const auto &g : guests_)
            if (g->st != Guest::St::Done)
                blockedThreads_.push_back(
                    g->name + " @ " +
                    (g->blockSite ? g->blockSite : "?"));
        abortLocked();
        return;
    }

    std::uint32_t chosen = enabled.front();
    bool scripted = false;
    const std::uint64_t k = trace_.size();
    if (options_.policy != SchedPolicy::Random &&
        k < options_.schedule.size()) {
        const std::uint32_t want = options_.schedule[k];
        if (std::find(enabled.begin(), enabled.end(), want) !=
            enabled.end()) {
            chosen = want;
            scripted = true;
        } else {
            diverged_ = true;
        }
    }
    if (!scripted) {
        if (options_.policy == SchedPolicy::Random)
            chosen = enabled[static_cast<std::size_t>(
                rng_.below(enabled.size()))];
        else
            chosen = defaultPickLocked(enabled, prev, kind);
    }

    Guest &next = *guests_[chosen];
    SchedEvent ev;
    ev.index = k;
    ev.kind = kind;
    ev.chosen = chosen;
    ev.timeoutFired = next.st == Guest::St::BlockedDeadline;
    ev.site = site;
    ev.enabled = enabled;
    trace_.push_back(std::move(ev));
    if (kind == 'y' && prev != kNoGuest && chosen != prev)
        ++preemptions_;

    if (next.st == Guest::St::BlockedDeadline)
        next.timeoutFired = true;
    next.st = Guest::St::Running;
    next.channel = nullptr;
    runningId_ = chosen;
    next.cv.notify_all();
}

void
SchedRail::abortLocked()
{
    aborted_ = true;
    running_ = false;
    runningId_ = kNoGuest;
    for (auto &g : guests_)
        g->cv.notify_all();
    controllerCv_.notify_all();
}

// ---------------------------------------------------------------------------
// Bounded-preemption DFS explorer

ExploreResult
exploreSchedules(SchedRail &rail, const std::function<void()> &setup,
                 const std::function<bool()> &episode_ok,
                 const ExploreOptions &opt)
{
    ExploreResult res;
    std::vector<std::vector<std::uint32_t>> frontier;
    frontier.push_back({});

    while (!frontier.empty()) {
        if (res.schedulesRun >=
            static_cast<std::uint64_t>(opt.maxSchedules)) {
            res.exhausted = true;
            break;
        }
        std::vector<std::uint32_t> prefix = std::move(frontier.back());
        frontier.pop_back();

        SchedOptions so;
        so.policy = SchedPolicy::Explore;
        so.schedule = prefix;
        rail.arm(so);
        setup();
        SchedResult r = rail.run();
        ++res.schedulesRun;

        if (r.deadlocked || !r.completed || !episode_ok()) {
            res.bugFound = true;
            res.failing = r;
            res.failingSchedule = r.schedule();
            rail.disarm();
            return res;
        }

        // Branch on the untried alternatives at and past the forced
        // prefix. Explore defaults are non-preemptive, so the only
        // preemptions are the ones the prefix forces; count them
        // incrementally while scanning.
        const std::vector<std::uint32_t> sched = r.schedule();
        int preempts = 0;
        for (std::size_t d = 0; d < r.trace.size(); ++d) {
            const SchedEvent &ev = r.trace[d];
            const std::uint32_t prev = d ? sched[d - 1] : 0;
            const bool prevEnabled =
                d > 0 && std::find(ev.enabled.begin(), ev.enabled.end(),
                                   prev) != ev.enabled.end();
            if (d >= prefix.size()) {
                for (std::uint32_t alt : ev.enabled) {
                    if (alt == ev.chosen)
                        continue;
                    const int cost =
                        ev.kind == 'y' && prevEnabled && alt != prev
                            ? 1
                            : 0;
                    if (preempts + cost > opt.maxPreemptions)
                        continue;
                    std::vector<std::uint32_t> next(
                        sched.begin(),
                        sched.begin() + static_cast<std::ptrdiff_t>(d));
                    next.push_back(alt);
                    frontier.push_back(std::move(next));
                }
            }
            if (ev.kind == 'y' && prevEnabled && ev.chosen != prev)
                ++preempts;
        }
    }
    rail.disarm();
    return res;
}

// ---------------------------------------------------------------------------
// /proc/cider/lockorder

SyscallResult
SchedRailDevice::read(Thread &, Bytes &out, std::size_t n)
{
    std::string text = rail_.lockGraph().dump();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(),
               text.begin() + static_cast<std::ptrdiff_t>(take));
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

} // namespace cider::kernel
