/**
 * @file
 * The simulated domestic (Linux-like) kernel.
 *
 * The Kernel owns the process table, VFS, device registry, and the
 * trap path. Cider's extensions attach through small seams:
 *
 *  - TrapDispatcher: the vanilla dispatcher serves only the Linux
 *    syscall table; the persona layer replaces it with a
 *    multi-persona dispatcher serving all XNU trap classes too.
 *  - BinaryLoader: binfmt handlers (ELF, Mach-O) register here; the
 *    Mach-O loader tags the loading thread with the iOS persona.
 *  - SignalDeliveryHook: the persona layer translates signal
 *    numbering/layout for foreign-persona receivers.
 *  - fork/exec hooks: duct-taped subsystems (Mach IPC) initialise
 *    per-process state when processes are created or replaced.
 */

#ifndef CIDER_KERNEL_KERNEL_H
#define CIDER_KERNEL_KERNEL_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hw/device_profile.h"
#include "kernel/device.h"
#include "kernel/net.h"
#include "kernel/percpu.h"
#include "kernel/process.h"
#include "kernel/trap_stats.h"
#include "kernel/types.h"
#include "kernel/unix_socket.h"
#include "kernel/vfs.h"

namespace cider::kernel {

class Kernel;
struct TrapContext;

/** stat(2) result as handed to user space. */
struct StatBuf
{
    std::uint64_t size = 0;
    InodeType type = InodeType::Regular;
};

/**
 * A syscall implementation on the fast path: a raw function pointer
 * plus one user-data word (the subsystem the handler routes into).
 * Captureless lambdas convert to this directly, so almost every
 * handler dispatches without a type-erased std::function call.
 */
using SyscallFn = SyscallResult (*)(TrapContext &, void *user);

/** Fallback handler for registrations that need to capture more than
 *  one word of state (rare; pays a std::function indirection). */
using SyscallHandler = std::function<SyscallResult(TrapContext &)>;

/**
 * One syscall dispatch table. Cider maintains one or more of these
 * per persona and switches among them by the calling thread's persona
 * and trap class (paper section 4.1).
 *
 * Storage is a flat dense vector indexed by (nr - base), so lookup is
 * O(1): one bounds check and one load. The table grows to cover the
 * registered number range; Linux/XNU syscall numbers are small and
 * Mach trap numbers are small negatives, so the span stays tiny.
 */
class SyscallTable
{
  public:
    struct Entry
    {
        const char *name = nullptr; ///< static registration string
        SyscallFn fn = nullptr;
        void *user = nullptr;
        SyscallHandler fallback;
        /** Per-syscall counters (stable address; see trap_stats.h). */
        std::unique_ptr<SyscallStat> stat;
        /**
         * True when the handler's success value is a kern_return_t
         * (Mach convention: the code rides in the return register).
         * Traps returning plain values there — a tid, a port name, a
         * count — leave this false so layers interpreting the result
         * (e.g. the OOM-kill heuristic matching
         * KERN_RESOURCE_SHORTAGE) never misread them.
         */
        bool returnsKr = false;

        bool empty() const { return fn == nullptr && !fallback; }

        SyscallResult
        call(TrapContext &ctx) const
        {
            return fn ? fn(ctx, user) : fallback(ctx);
        }
    };

    explicit SyscallTable(std::string name) : name_(std::move(name)) {}

    /** Register the fast-path form. Panics on duplicate @p nr.
     *  Returns the entry so registrars can tag it (returnsKr). */
    Entry &set(int nr, const char *sys_name, SyscallFn fn,
               void *user = nullptr);
    /** Register the capture-heavy fallback form. Panics on duplicate. */
    Entry &set(int nr, const char *sys_name, SyscallHandler fallback);

    /** O(1) lookup; null when @p nr has no handler. */
    const Entry *
    find(int nr) const
    {
        // Unsigned wrap makes one compare cover both range ends.
        auto idx = static_cast<std::size_t>(
            static_cast<long long>(nr) - base_);
        if (idx >= dense_.size())
            return nullptr;
        const Entry &e = dense_[idx];
        return e.empty() ? nullptr : &e;
    }

    const char *sysName(int nr) const;
    const std::string &name() const { return name_; }
    /** Number of registered handlers (not the dense span). */
    std::size_t size() const { return count_; }
    /** Registered syscall numbers in ascending order. */
    std::vector<int> registeredNumbers() const;

  private:
    Entry &slotFor(int nr, const char *sys_name);

    std::string name_;
    int base_ = 0;
    std::size_t count_ = 0;
    std::vector<Entry> dense_;
};

/** Pluggable trap dispatcher (vanilla vs. Cider multi-persona). */
class TrapDispatcher
{
  public:
    virtual ~TrapDispatcher() = default;
    virtual const char *name() const = 0;
    /** Resolve ctx.table / ctx.entry and invoke the handler. */
    virtual SyscallResult dispatch(TrapContext &ctx) = 0;
};

/** A binfmt handler in the kernel's loader chain. */
class BinaryLoader
{
  public:
    virtual ~BinaryLoader() = default;
    virtual const char *name() const = 0;

    /** Quick magic-number check. */
    virtual bool probe(const Bytes &blob) const = 0;

    /**
     * Replace @p proc's image with the binary in @p blob and prepare
     * @p t to run it (set persona, mappings, entry).
     */
    virtual SyscallResult load(Kernel &k, Thread &t, const Bytes &blob,
                               const std::string &path,
                               const std::vector<std::string> &argv) = 0;
};

class Kernel
{
  public:
    explicit Kernel(const hw::DeviceProfile &profile);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    const hw::DeviceProfile &profile() const { return profile_; }
    Vfs &vfs() { return vfs_; }
    DeviceRegistry &devices() { return devices_; }
    UnixSocketRegistry &unixSockets() { return unixRegistry_; }
    /** The AF_INET stack (TCP-lite/UDP-lite over I/O Kit NICs). */
    NetStack &net() { return net_; }
    const NetStack &net() const { return net_; }

    /// @{ Process management. The table has its own lock (procMu_) so
    /// concurrent host threads can fork/look up without serializing
    /// through the rest of the kernel.
    Process &createProcess(const std::string &name,
                           Persona persona = Persona::Android,
                           Process *parent = nullptr);
    Process *findProcess(Pid pid) const;
    std::size_t processCount() const;
    /** Visit every live process under the table lock (used by
     *  /proc/cider/vm; keep @p fn non-blocking). */
    void forEachProcess(const std::function<void(Process &)> &fn) const;
    /**
     * Init-style reap: release the table entry of a Zombie/Reaped
     * process, destroying the Process object (address space, fd
     * table, Mach IPC space, threads). The caller must hold no
     * references to the process. Returns false when @p pid is
     * unknown or still Running — a running process is never torn
     * down out from under its host thread.
     */
    bool reapProcess(Pid pid);
    /**
     * Release every Reaped table entry (session teardown; the fleet
     * soak's post-run sweep). Returns the number of entries freed.
     * Zombies are left alone: they still owe their parent a wait.
     */
    std::size_t sweepReaped();
    /// @}

    /// @{ Virtual memory.
    /** System-wide VM state: shared regions, cost tables, counters. */
    VmSubsystem &vm() { return *vm_; }
    const VmSubsystem &vm() const { return *vm_; }
    /**
     * A/B lever for the fork cost model: true restores the pre-VM
     * eager behaviour (fork copies page tables AND resident content);
     * false (default) forks copy-on-write, deferring content copies
     * to first-write faults.
     */
    void setEagerForkCopy(bool on) { eagerForkCopy_ = on; }
    bool eagerForkCopy() const { return eagerForkCopy_; }
    /// @}

    /** The simulated machine's CPU array (profile.cpuCores slots). */
    PerCpu &percpu() { return percpu_; }
    const PerCpu &percpu() const { return percpu_; }

    /// @{ Trap path.
    /**
     * Kernel entry from user space. Charges the hardware trap cost
     * and routes through the installed dispatcher; delivers pending
     * asynchronous signals on the way out, as a real kernel does.
     */
    SyscallResult trap(Thread &t, TrapClass cls, int nr, SyscallArgs args);

    void setDispatcher(std::unique_ptr<TrapDispatcher> d);
    TrapDispatcher &dispatcher() { return *dispatcher_; }
    SyscallTable &linuxTable() { return linuxTable_; }

    /** Per-syscall counters, latency histograms, and the trap trace
     *  ring (also readable from /proc/cider/trapstats). */
    TrapStats &trapStats() { return trapStats_; }
    const TrapStats &trapStats() const { return trapStats_; }

    /**
     * Graceful degradation under memory pressure: when enabled, a
     * main-thread trap that fails for want of memory (ENOMEM, or a
     * Mach trap reporting KERN_RESOURCE_SHORTAGE) SIGKILLs the
     * faulting process — terminate with 128+SIGKILL, SIGCHLD to the
     * parent, unwind via ProcessExit — instead of letting the app
     * limp on. The rest of the system keeps running; the parent reaps
     * the corpse with waitpid. Off by default.
     */
    void setOomKillEnabled(bool on) { oomKillEnabled_ = on; }
    bool oomKillEnabled() const { return oomKillEnabled_; }
    /// @}

    /// @{ Extension seams.
    void registerLoader(std::unique_ptr<BinaryLoader> loader);
    void setSignalHook(std::unique_ptr<SignalDeliveryHook> hook);
    SignalDeliveryHook &signalHook() { return *signalHook_; }

    using ProcessHook = std::function<void(Process &parent, Process &child)>;
    using ExecHook = std::function<void(Process &proc)>;
    /** Called after fork copies kernel state into the child. */
    void addForkHook(ProcessHook hook) { forkHooks_.push_back(hook); }
    /** Called when exec replaces a process image (before load). */
    void addExecHook(ExecHook hook) { execHooks_.push_back(hook); }
    /**
     * Called when a process image is unloaded: on exec teardown of
     * the old image and on process termination. Modules drop state
     * derived from the image (e.g. the Dalvik translation cache).
     */
    void addUnloadHook(ExecHook hook) { unloadHooks_.push_back(hook); }
    /// @}

    /// @{ Typed syscall implementations (the "Linux" bodies).
    SyscallResult sysOpen(Thread &t, const std::string &path, int flags);
    SyscallResult sysClose(Thread &t, Fd fd);
    SyscallResult sysRead(Thread &t, Fd fd, Bytes &out, std::size_t n);
    SyscallResult sysWrite(Thread &t, Fd fd, const Bytes &data);
    SyscallResult sysDup(Thread &t, Fd fd);
    SyscallResult sysPipe(Thread &t, Fd out_fds[2]);
    SyscallResult sysMkdir(Thread &t, const std::string &path);
    SyscallResult sysUnlink(Thread &t, const std::string &path);
    SyscallResult sysRmdir(Thread &t, const std::string &path);
    SyscallResult sysGetpid(Thread &t);
    SyscallResult sysGetppid(Thread &t);
    SyscallResult sysLseek(Thread &t, Fd fd, std::int64_t offset,
                           int whence);
    SyscallResult sysStat(Thread &t, const std::string &path,
                          StatBuf *out);
    SyscallResult sysRename(Thread &t, const std::string &from,
                            const std::string &to);
    SyscallResult sysDup2(Thread &t, Fd fd, Fd new_fd);
    SyscallResult sysIoctl(Thread &t, Fd fd, std::uint64_t req, void *arg);
    SyscallResult sysNull(Thread &t);

    SyscallResult sysSelect(Thread &t, const std::vector<Fd> &read_fds,
                            const std::vector<Fd> &write_fds,
                            std::vector<Fd> &ready);

    SyscallResult sysSocket(Thread &t);
    SyscallResult sysSocketpair(Thread &t, Fd out_fds[2]);
    SyscallResult sysBind(Thread &t, Fd fd, const std::string &path);
    SyscallResult sysListen(Thread &t, Fd fd, int backlog);
    SyscallResult sysAccept(Thread &t, Fd fd);
    SyscallResult sysConnect(Thread &t, Fd fd, const std::string &path);

    /// @{ AF_INET (socket/bind/connect dispatch on the fd's socket
    /// kind; sysListen/sysAccept above serve both families).
    SyscallResult sysNetSocket(Thread &t, int type); // 1=stream 2=dgram
    SyscallResult sysNetBind(Thread &t, Fd fd, NetAddr addr,
                             NetPort port);
    SyscallResult sysNetConnect(Thread &t, Fd fd, NetAddr addr,
                                NetPort port);
    SyscallResult sysNetSendTo(Thread &t, Fd fd, NetAddr addr,
                               NetPort port, const Bytes &data);
    SyscallResult sysNetRecvFrom(Thread &t, Fd fd, Bytes &out,
                                 std::size_t n, NetAddr *src_addr,
                                 NetPort *src_port);
    SyscallResult sysNetShutdown(Thread &t, Fd fd, int how);
    /// @}

    SyscallResult sysSigaction(Thread &t, int linux_signo,
                               const SignalAction &action);
    SyscallResult sysKill(Thread &t, Pid pid, int linux_signo);

    /**
     * fork(2). The child's main thread inherits the calling thread's
     * persona; kernel state (fd table, mappings, dispositions) is
     * copied with page-table duplication charged to the caller.
     * @p child_body is the child's continuation; with @p run_now the
     * child runs to completion on the calling host thread before
     * fork returns (virtual time still attributes the child's work to
     * the child's own clock).
     */
    SyscallResult sysFork(Thread &t, EntryFn child_body, bool run_now = true);

    /** execve(2): never returns on success (throws ProcessExit). */
    SyscallResult sysExecve(Thread &t, const std::string &path,
                            const std::vector<std::string> &argv);

    /**
     * The load half of execve: tear down the old image, probe the
     * binfmt loaders, install the new image, and run the exec hooks —
     * everything sysExecve does *except* running the entry point.
     * Session drivers (FleetSoak, CiderPress-style hosts) use this to
     * materialise a launched process whose image then runs in slices
     * on pool workers instead of to completion on the calling host
     * thread. On failure the process is left imageless, exactly as a
     * failed execve leaves it.
     */
    SyscallResult execLoad(Thread &t, const std::string &path,
                           const std::vector<std::string> &argv);

    [[noreturn]] void sysExit(Thread &t, int code);

    SyscallResult sysWaitpid(Thread &t, Pid pid, int *status);
    /// @}

    /**
     * Run @p proc's loaded image on the calling host thread and
     * terminate the process with its result.
     */
    int runProcess(Process &proc);

    /**
     * Start @p fn as a new simulated thread of @p proc on a dedicated
     * host thread (used by long-running services).
     */
    std::thread startThread(Process &proc, Persona persona,
                            std::function<void(Thread &)> fn);

    /** Deliver (or queue) a signal to a specific thread. */
    void deliverSignal(Thread &target, SigInfo info);

    /** Run any queued signals for @p t (trap-exit path). */
    void checkPendingSignals(Thread &t);

  private:
    /** Fire the unload hooks for @p proc's current image. */
    void notifyUnload(Process &proc);

    /**
     * SIGCHLD to the parent of a freshly-terminated @p proc (no-op for
     * orphans or dead parents). Every exit path — sysExit, the OOM
     * killer, signal default-terminate — owes the parent this.
     */
    void notifyParentExit(Process &proc);

    const hw::DeviceProfile &profile_;
    std::unique_ptr<VmSubsystem> vm_;
    PerCpu percpu_;
    Vfs vfs_;
    DeviceRegistry devices_;
    UnixSocketRegistry unixRegistry_;
    NetStack net_;
    SyscallTable linuxTable_;
    TrapStats trapStats_;
    std::unique_ptr<TrapDispatcher> dispatcher_;
    std::unique_ptr<SignalDeliveryHook> signalHook_;
    std::vector<std::unique_ptr<BinaryLoader>> loaders_;
    std::vector<ProcessHook> forkHooks_;
    std::vector<ExecHook> execHooks_;
    std::vector<ExecHook> unloadHooks_;
    /** Guards processes_ and nextPid_ only; Process objects carry
     *  their own synchronisation (Process::mu_). */
    mutable std::mutex procMu_;
    std::map<Pid, std::unique_ptr<Process>> processes_;
    Pid nextPid_ = 1;
    bool oomKillEnabled_ = false;
    bool eagerForkCopy_ = false;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_KERNEL_H
