/**
 * @file
 * Anonymous pipes for the simulated domestic kernel.
 */

#ifndef CIDER_KERNEL_PIPE_H
#define CIDER_KERNEL_PIPE_H

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "kernel/file.h"

namespace cider::hw {
struct DeviceProfile;
} // namespace cider::hw

namespace cider::kernel {

/**
 * Shared pipe state: a bounded byte queue plus liveness of each end.
 * Blocking readers/writers park on host condition variables; their
 * virtual clocks do not advance while blocked, which matches how
 * lmbench-style latency is attributed to the running side.
 */
class Pipe
{
  public:
    static constexpr std::size_t capacity = 64 * 1024;

    explicit Pipe(const hw::DeviceProfile &profile) : profile_(profile) {}

    SyscallResult read(Bytes &out, std::size_t n, bool nonblock);
    SyscallResult write(const Bytes &data, bool nonblock);

    void closeReadEnd();
    void closeWriteEnd();

    bool readable() const;
    bool writable() const;

  private:
    const hw::DeviceProfile &profile_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::uint8_t> buf_;
    bool readOpen_ = true;
    bool writeOpen_ = true;
};

/** One end of a pipe, installed in a descriptor table. */
class PipeEnd : public OpenFile
{
  public:
    PipeEnd(std::shared_ptr<Pipe> pipe, bool is_read_end)
        : pipe_(std::move(pipe)), readEnd_(is_read_end)
    {}

    std::string kind() const override
    {
        return readEnd_ ? "pipe:r" : "pipe:w";
    }

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;
    SyscallResult write(Thread &t, const Bytes &data) override;
    PollState poll() const override;
    void closed() override;

  private:
    std::shared_ptr<Pipe> pipe_;
    bool readEnd_;
};

/** Create both ends of a fresh pipe. */
std::pair<std::shared_ptr<PipeEnd>, std::shared_ptr<PipeEnd>>
makePipe(const hw::DeviceProfile &profile);

} // namespace cider::kernel

#endif // CIDER_KERNEL_PIPE_H
