#include "kernel/fault_rail.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "base/cost_clock.h"
#include "ducttape/xnu_api.h"
#include "kernel/process.h"
#include "kernel/thread.h"

namespace cider::kernel {

FaultRail &
FaultRail::global()
{
    static FaultRail rail;
    return rail;
}

FaultRail::SiteId
FaultRail::site(const char *name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < sites_.size(); ++i)
        if (sites_[i]->name == name)
            return static_cast<SiteId>(i);
    auto s = std::make_unique<Site>();
    s->name = name;
    sites_.push_back(std::move(s));
    return static_cast<SiteId>(sites_.size() - 1);
}

FaultRail::Site *
FaultRail::findLocked(const std::string &site_name)
{
    for (auto &s : sites_)
        if (s->name == site_name)
            return s.get();
    return nullptr;
}

const FaultRail::Site *
FaultRail::findLocked(const std::string &site_name) const
{
    for (const auto &s : sites_)
        if (s->name == site_name)
            return s.get();
    return nullptr;
}

void
FaultRail::bumpActivity(int delta)
{
    // Callers hold mu_; activity_ is the lock-free mirror of
    // armedCount_ + tracking_ that the fast path reads.
    std::uint32_t next =
        armedCount_ + (tracking_ ? 1u : 0u);
    (void)delta;
    activity_.store(next, std::memory_order_relaxed);
}

void
FaultRail::arm(const std::string &site_name, const FaultSpec &spec)
{
    std::lock_guard<std::mutex> lock(mu_);
    Site *s = findLocked(site_name);
    if (!s) {
        auto fresh = std::make_unique<Site>();
        fresh->name = site_name;
        sites_.push_back(std::move(fresh));
        s = sites_.back().get();
    }
    if (!s->armed && spec.kind != FaultSpec::Kind::Never)
        ++armedCount_;
    else if (s->armed && spec.kind == FaultSpec::Kind::Never)
        --armedCount_;
    s->armed = spec.kind != FaultSpec::Kind::Never;
    s->spec = spec;
    // Nth/EveryK count from arming (and only pid-matching hits), so
    // every arm starts the policy stream fresh.
    s->policyHits = 0;
    if (spec.kind == FaultSpec::Kind::Probability)
        s->rng = Rng(spec.seed);
    bumpActivity(0);
}

void
FaultRail::armNth(const std::string &site_name, std::uint64_t n, Pid pid)
{
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::Nth;
    spec.n = n;
    spec.pid = pid;
    arm(site_name, spec);
}

void
FaultRail::armEveryK(const std::string &site_name, std::uint64_t k,
                     Pid pid)
{
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::EveryK;
    spec.n = k ? k : 1;
    spec.pid = pid;
    arm(site_name, spec);
}

void
FaultRail::armProbability(const std::string &site_name, double p,
                          std::uint64_t seed, Pid pid)
{
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::Probability;
    spec.p = p;
    spec.seed = seed;
    spec.pid = pid;
    arm(site_name, spec);
}

void
FaultRail::armWindow(const std::string &site_name, std::uint64_t start_ns,
                     std::uint64_t end_ns, Pid pid)
{
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::Window;
    spec.startNs = start_ns;
    spec.endNs = end_ns;
    spec.pid = pid;
    arm(site_name, spec);
}

void
FaultRail::disarm(const std::string &site_name)
{
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::Never;
    arm(site_name, spec);
}

void
FaultRail::disarmAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &s : sites_) {
        s->armed = false;
        s->spec = FaultSpec{};
        s->policyHits = 0;
    }
    armedCount_ = 0;
    bumpActivity(0);
}

void
FaultRail::setTracking(bool on)
{
    std::lock_guard<std::mutex> lock(mu_);
    tracking_ = on;
    bumpActivity(0);
}

bool
FaultRail::shouldFailSlow(SiteId id)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= sites_.size())
        return false;
    Site &s = *sites_[id];
    // Raw traffic counter (the hits column of /proc/cider/faults):
    // every evaluation while the rail is active, any process.
    s.hits.fetch_add(1, std::memory_order_relaxed);
    if (!s.armed)
        return false;

    // Per-process scope: an unscoped site fires for any caller; a
    // scoped one only when the host thread simulates that pid. The
    // filter runs before policy counting so foreign-pid traffic never
    // consumes an Nth/EveryK slot.
    if (s.spec.pid >= 0) {
        Thread *t = Thread::current();
        if (!t || t->process().pid() != s.spec.pid)
            return false;
    }

    std::uint64_t hit = ++s.policyHits;
    bool fire = false;
    switch (s.spec.kind) {
      case FaultSpec::Kind::Never:
        break;
      case FaultSpec::Kind::Nth:
        fire = hit == s.spec.n;
        break;
      case FaultSpec::Kind::EveryK:
        fire = (hit % s.spec.n) == 0;
        break;
      case FaultSpec::Kind::Probability:
        fire = s.rng.chance(s.spec.p);
        break;
      case FaultSpec::Kind::Window: {
        std::uint64_t now = virtualNow();
        fire = now >= s.spec.startNs && now < s.spec.endNs;
        break;
      }
    }
    if (fire)
        s.trips.fetch_add(1, std::memory_order_relaxed);
    return fire;
}

std::uint64_t
FaultRail::hits(const std::string &site_name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Site *s = findLocked(site_name);
    return s ? s->hits.load(std::memory_order_relaxed) : 0;
}

std::uint64_t
FaultRail::trips(const std::string &site_name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Site *s = findLocked(site_name);
    return s ? s->trips.load(std::memory_order_relaxed) : 0;
}

std::uint64_t
FaultRail::totalTrips() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t sum = 0;
    for (const auto &s : sites_)
        sum += s->trips.load(std::memory_order_relaxed);
    return sum;
}

std::vector<FaultSiteStats>
FaultRail::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FaultSiteStats> out;
    out.reserve(sites_.size());
    for (const auto &s : sites_) {
        FaultSiteStats st;
        st.name = s->name;
        st.armed = s->armed;
        st.spec = s->spec;
        st.hits = s->hits.load(std::memory_order_relaxed);
        st.trips = s->trips.load(std::memory_order_relaxed);
        out.push_back(std::move(st));
    }
    return out;
}

std::size_t
FaultRail::siteCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sites_.size();
}

void
FaultRail::resetCounters()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &s : sites_) {
        s->hits.store(0, std::memory_order_relaxed);
        s->trips.store(0, std::memory_order_relaxed);
        s->policyHits = 0;
    }
}

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

std::string
policyText(const FaultSpec &spec)
{
    char buf[96];
    switch (spec.kind) {
      case FaultSpec::Kind::Never:
        return "-";
      case FaultSpec::Kind::Nth:
        std::snprintf(buf, sizeof(buf), "nth(%" PRIu64 ")", spec.n);
        break;
      case FaultSpec::Kind::EveryK:
        std::snprintf(buf, sizeof(buf), "every(%" PRIu64 ")", spec.n);
        break;
      case FaultSpec::Kind::Probability:
        std::snprintf(buf, sizeof(buf), "prob(%.4f,seed=%" PRIu64 ")",
                      spec.p, spec.seed);
        break;
      case FaultSpec::Kind::Window:
        std::snprintf(buf, sizeof(buf),
                      "window[%" PRIu64 ",%" PRIu64 ")", spec.startNs,
                      spec.endNs);
        break;
    }
    std::string text = buf;
    if (spec.pid >= 0) {
        std::snprintf(buf, sizeof(buf), " pid=%d", spec.pid);
        text += buf;
    }
    return text;
}

} // namespace

std::string
FaultRail::dump() const
{
    std::string out;
    out += "=== cider faults ===\n";
    appendf(out, "  %-28s %-6s %-28s %10s %8s\n", "site", "armed",
            "policy", "hits", "trips");
    for (const FaultSiteStats &st : snapshot()) {
        appendf(out, "  %-28s %-6s %-28s %10" PRIu64 " %8" PRIu64 "\n",
                st.name.c_str(), st.armed ? "yes" : "no",
                policyText(st.spec).c_str(), st.hits, st.trips);
    }

    // Hung-wait watchdog: threads parked in duct-taped wait queues
    // longer than the host threshold are likely stuck for good (a
    // lost wakeup or a never-signalled port).
    std::vector<ducttape::BlockedWait> stuck =
        ducttape::waitq_blocked_waits(watchdogMs_);
    appendf(out, "hung-waits (>%.0f host-ms): %zu\n", watchdogMs_,
            stuck.size());
    for (const ducttape::BlockedWait &w : stuck)
        appendf(out, "  site=%s blocked=%.1fms vtime=%" PRIu64 "\n",
                w.site ? w.site : "waitq", w.hostBlockedMs, w.virtualNs);
    return out;
}

SyscallResult
FaultRailDevice::read(Thread &, Bytes &out, std::size_t n)
{
    std::string text = rail_.dump();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(),
               text.begin() + static_cast<std::ptrdiff_t>(take));
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

} // namespace cider::kernel
