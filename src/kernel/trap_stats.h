/**
 * @file
 * Per-syscall trap statistics and the lock-free trap trace ring.
 *
 * Every Kernel owns one TrapStats. The trap path records, per dispatch
 * table and per syscall number: invocation counts, error counts, and a
 * log2 histogram of virtual-ns latencies measured from the calling
 * thread's CostClock. A fixed-size lock-free ring buffer keeps the
 * most recent trap records (including persona switches) for
 * flight-recorder style debugging.
 *
 * Recording costs *host* cycles only — it never calls charge() — so
 * installing the subsystem does not perturb the simulated virtual-time
 * results the Figure 5 reproductions depend on.
 *
 * The accumulated state is queryable through Kernel::trapStats() and
 * readable as text from the /proc/cider/trapstats device node.
 */

#ifndef CIDER_KERNEL_TRAP_STATS_H
#define CIDER_KERNEL_TRAP_STATS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/device.h"
#include "kernel/types.h"

namespace cider::kernel {

class SyscallTable;
class Thread;
struct TrapContext;

/**
 * Counters for one syscall in one dispatch table. All fields are
 * relaxed atomics: service threads trap concurrently with the main
 * simulation thread and per-counter exactness beats a lock on the
 * hot path.
 */
struct SyscallStat
{
    /** Log2 latency buckets: bucket i counts traps with virtual-ns
     *  latency in [2^i, 2^(i+1)); the last bucket absorbs the tail. */
    static constexpr int kBuckets = 24;

    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> totalNs{0};
    std::atomic<std::uint64_t> minNs{~std::uint64_t{0}};
    std::atomic<std::uint64_t> maxNs{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> hist{};

    /** Bucket index for a latency value. */
    static int bucketOf(std::uint64_t ns);

    /** Record one completed invocation. */
    void record(std::uint64_t latency_ns, bool ok);
};

/** One record in the trap trace ring. */
struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        Trap,          ///< a completed kernel trap
        PersonaSwitch, ///< set_persona changed a thread's persona
    };

    Kind kind = Kind::Trap;
    TrapClass cls = TrapClass::LinuxSyscall;
    Persona persona = Persona::Android; ///< persona at trap entry
    Persona toPersona = Persona::Android; ///< target (switches only)
    int nr = 0;
    Tid tid = 0;
    std::int64_t value = 0;
    int err = 0;
    std::uint64_t latencyNs = 0;
    std::uint64_t timeNs = 0; ///< calling thread's virtual time
    std::uint64_t seq = 0;    ///< global record sequence number
};

/**
 * Fixed-size lock-free ring of recent trap records, safe for
 * concurrent writers (SMP host threads trap in parallel).
 *
 * The original single-kernel-thread design took a global ticket and
 * wrote `ring_[slot & mask]` non-atomically — two host threads
 * lapping each other could interleave field stores and tear a record.
 * Each slot now carries a seqlock-style claim word: a writer (or the
 * snapshot reader) CAS-claims the slot (even -> odd), touches the
 * record only while holding the claim, and releases (back to even).
 * Contenders never wait: a writer that loses the claim drops its
 * record and bumps dropped() — flight-recorder semantics, wait-free
 * on the trap path, and no torn entry can ever be observed.
 */
class TrapTracer
{
  public:
    explicit TrapTracer(std::size_t capacity = 256);

    /** Append one record (wait-free; may drop under slot contention). */
    void record(TraceRecord rec);

    /** Oldest-to-newest copy of the current ring contents. Slots a
     *  writer holds claimed at read time are skipped, never torn. */
    std::vector<TraceRecord> snapshot() const;

    /** Total records ever written (>= capacity means wrapped). */
    std::uint64_t recorded() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /** Records dropped because their slot was claimed by a peer. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return cap_; }

    void reset();

  private:
    struct Slot
    {
        /** Claim word: even = stable, odd = claimed (being written or
         *  snapshotted). rec is only touched while holding the claim. */
        std::atomic<std::uint64_t> seq{0};
        TraceRecord rec;
    };

    std::unique_ptr<Slot[]> slots_;
    std::size_t cap_;
    std::size_t mask_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/**
 * The per-kernel trap observability subsystem: per-table per-syscall
 * counters (stored in the dispatch-table entries themselves, so the
 * hot path is one pointer deref), global rejection counters, the
 * persona-switch count, and the trace ring.
 */
class TrapStats
{
  public:
    TrapStats();

    /** Register a dispatch table for enumeration in dumps/queries.
     *  Tables attach once; re-attaching is a no-op. */
    void attachTable(const SyscallTable &tbl);

    const std::vector<const SyscallTable *> &tables() const
    {
        return tables_;
    }

    /// @{ Hot-path recording (called from Kernel::trap()).
    void recordTrap(const TrapContext &ctx, const SyscallResult &r,
                    std::uint64_t latency_ns);
    /** A trap whose handler never returned (exit/execve). */
    void recordNoReturn(const TrapContext &ctx, std::uint64_t latency_ns);
    void recordPersonaSwitch(Thread &t, Persona from, Persona to);
    /// @}

    /// @{ Queries (tests and benchmarks).
    /** Counters for @p nr in the table named @p table (null if the
     *  table or the syscall is unknown). */
    const SyscallStat *stat(const std::string &table, int nr) const;
    std::uint64_t calls(const std::string &table, int nr) const;
    std::uint64_t errors(const std::string &table, int nr) const;
    std::uint64_t totalNs(const std::string &table, int nr) const;

    /** Sum of invocation counts across one table / all tables. */
    std::uint64_t tableCalls(const std::string &table) const;
    std::uint64_t totalCalls() const;

    std::uint64_t personaSwitches() const
    {
        return personaSwitches_.load(std::memory_order_relaxed);
    }
    /** Traps rejected before a table was selected (wrong persona). */
    std::uint64_t rejectedTraps() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }
    /** Traps that resolved a table but found no handler for the nr. */
    std::uint64_t unknownSyscalls() const
    {
        return unknownNr_.load(std::memory_order_relaxed);
    }
    /** Traps whose handler asked for a missing/mistyped argument
     *  (BadSyscallArg caught at the trap boundary, failed EINVAL). */
    std::uint64_t badArgTraps() const
    {
        return badArgTraps_.load(std::memory_order_relaxed);
    }
    /** Processes SIGKILLed by the memory-pressure kill path. */
    std::uint64_t oomKills() const
    {
        return oomKills_.load(std::memory_order_relaxed);
    }
    void recordBadArg()
    {
        badArgTraps_.fetch_add(1, std::memory_order_relaxed);
    }
    void recordOomKill()
    {
        oomKills_.fetch_add(1, std::memory_order_relaxed);
    }
    /// @}

    TrapTracer &tracer() { return tracer_; }
    const TrapTracer &tracer() const { return tracer_; }

    /** The /proc/cider/trapstats text: per-table per-syscall counts,
     *  latency histograms, and the tail of the trace ring. */
    std::string dump() const;

    /** Zero all counters and the trace ring (benchmark warm-up). */
    void reset();

  private:
    std::vector<const SyscallTable *> tables_;
    TrapTracer tracer_;
    std::atomic<std::uint64_t> personaSwitches_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> unknownNr_{0};
    std::atomic<std::uint64_t> noReturnTraps_{0};
    std::atomic<std::uint64_t> badArgTraps_{0};
    std::atomic<std::uint64_t> oomKills_{0};
};

/**
 * Kernel device node exposing the stats dump at /proc/cider/trapstats.
 * Reads are single-shot: each read() returns up to @p n bytes of a
 * freshly formatted dump (procfs-style generated content).
 */
class TrapStatsDevice : public Device
{
  public:
    explicit TrapStatsDevice(const TrapStats &stats)
        : Device("trapstats", "proc"), stats_(stats)
    {}

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;

  private:
    const TrapStats &stats_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_TRAP_STATS_H
