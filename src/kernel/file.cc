#include "kernel/file.h"

namespace cider::kernel {

SyscallResult
OpenFile::read(Thread &, Bytes &, std::size_t)
{
    return SyscallResult::failure(lnx::INVAL);
}

SyscallResult
OpenFile::write(Thread &, const Bytes &)
{
    return SyscallResult::failure(lnx::INVAL);
}

SyscallResult
OpenFile::ioctl(Thread &, std::uint64_t, void *)
{
    return SyscallResult::failure(lnx::NOTTY);
}

SyscallResult
OpenFile::seek(std::int64_t, int)
{
    return SyscallResult::failure(lnx::SPIPE);
}

PollState
OpenFile::poll() const
{
    return {};
}

} // namespace cider::kernel
