/**
 * @file
 * SchedRail: deterministic interleaving exploration for the
 * concurrency core.
 *
 * A cooperative scheduler that, when armed, serializes a set of guest
 * threads onto the yield points threaded through the blocking
 * primitives (waitq_wait / waitq_wait_deadline / waitq_wakeup_* and
 * the railed lck_mtx paths in ducttape/xnu_api.cc), the psynch
 * mutex/cv/sem entries, the Mach IPC message queue send/receive
 * paths, and the TrapContext dispatch boundary. Exactly one guest
 * runs at a time; every point where the schedule could branch becomes
 * an explicit *decision* recorded in a trace:
 *
 *  - a guest hits a yield point            (kind 'y' — preemptible)
 *  - a guest passes its turn               (kind 'p' — voluntary)
 *  - a guest blocks on a wait channel      (kind 'b')
 *  - a guest blocks with a deadline        (kind 'd')
 *  - a guest finishes                      (kind 'f')
 *
 * The next guest is chosen from the enabled set (runnable guests plus
 * deadline-blocked guests, whose selection *fires their timeout*) by
 * one of three policies:
 *
 *  - Random:  seeded PRNG (base::Rng SplitMix64) — same seed, same
 *             byte-identical schedule trace;
 *  - Replay:  an explicit schedule (one chosen thread per decision),
 *             typically parsed back from a recorded trace, for
 *             shrinking and regression pinning;
 *  - Explore: a forced prefix followed by a deterministic
 *             non-preemptive default, the building block of the
 *             bounded-preemption DFS in exploreSchedules().
 *
 * Virtual-time deadline waits are made deterministic by construction:
 * a deadline-blocked guest stays schedulable, and *scheduling it* is
 * the timeout firing (its virtual clock lands exactly on the
 * deadline, as in the host-grace implementation). A wakeup that
 * arrives first moves the guest back to the runnable set and its
 * timeout can no longer fire.
 *
 * While a rail episode runs, only rail guests may touch the railed
 * subsystems: guest lck_mtx ownership is tracked logically (the host
 * mutex is not taken), so lock contention and lost wakeups are
 * rail-visible and an all-blocked state is detected as a deadlock
 * instead of hanging the host. On deadlock the episode is aborted:
 * every parked guest unwinds via SchedRailAbort and the run reports
 * the blocked thread/site list plus the trace that led there. The
 * aborted guests' kernel objects are poisoned and must be discarded.
 *
 * Disarmed, every yield point is a single relaxed atomic load and
 * never charges virtual time — the FaultRail pattern — so production
 * paths and the hot-path benches are unaffected.
 *
 * On top of the rail sits a lock-order graph: while tracking is
 * enabled, every lck_mtx (and zalloc zone lock) acquisition records
 * held-before edges; cycles in that graph are reported as potential
 * deadlocks through lockOrderCycles() and the /proc/cider/lockorder
 * device node.
 */

#ifndef CIDER_KERNEL_SCHED_RAIL_H
#define CIDER_KERNEL_SCHED_RAIL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "kernel/device.h"

namespace cider::kernel {

/** Unwinds a parked guest when the rail aborts an episode (deadlock
 *  or disarm); caught by the guest wrapper, never by guest code. */
struct SchedRailAbort
{
};

enum class SchedPolicy
{
    Random,  ///< seeded PRNG pick per decision
    Replay,  ///< follow an explicit schedule; deterministic fallback
    Explore, ///< forced prefix + non-preemptive deterministic default
};

struct SchedOptions
{
    SchedPolicy policy = SchedPolicy::Random;
    std::uint64_t seed = 1;
    /** Replay/Explore: chosen thread id per decision index. */
    std::vector<std::uint32_t> schedule;
};

/** One scheduling decision (the unit of the schedule trace). */
struct SchedEvent
{
    std::uint64_t index = 0;
    char kind = '?'; ///< 's' start, 'y' yield, 'p' pass, 'b' block,
                     ///< 'd' deadline-block, 'f' finish
    std::uint32_t chosen = 0;
    /** The chosen guest was deadline-blocked: this pick IS its
     *  timeout firing. */
    bool timeoutFired = false;
    const char *site = nullptr;
    /** Schedulable guests at this decision, ascending id. */
    std::vector<std::uint32_t> enabled;
};

/** Outcome of one rail episode (SchedRail::run). */
struct SchedResult
{
    bool completed = false;  ///< every guest finished
    bool deadlocked = false; ///< all-blocked state was detected
    bool diverged = false;   ///< a Replay choice was not enabled
    std::uint64_t decisions = 0;
    std::uint64_t preemptions = 0;
    std::vector<SchedEvent> trace;
    /** "name @ site" for each guest parked at deadlock detection. */
    std::vector<std::string> blockedThreads;

    /** Chosen thread per decision — feed back as SchedOptions::schedule. */
    std::vector<std::uint32_t> schedule() const;

    /** Canonical replayable text form of the trace. Two runs of the
     *  same program under the same policy compare byte-identical. */
    std::string traceText() const;

    /** Write traceText() to @p path (schedule-trace artifact). */
    bool writeTrace(const std::string &path) const;

    /** Parse the schedule back out of traceText()-format text. */
    static std::vector<std::uint32_t> parseSchedule(const std::string &text);
};

/**
 * Held-before graph over kernel locks. Nodes are lock addresses with
 * labels; an edge a->b is recorded when b is acquired while a is
 * held. A cycle is a potential deadlock even if no schedule has hit
 * it yet. Tracking is off by default (one relaxed load per lock op);
 * enable it only around a quiesced phase — locks already held when
 * tracking flips on are not seen.
 */
class LockOrderGraph
{
  public:
    void setTracking(bool on);
    bool
    tracking() const
    {
        return tracking_.load(std::memory_order_relaxed);
    }

    /** Record an acquisition by the calling host thread. */
    void acquired(const void *lock, const char *label);
    void released(const void *lock);

    /** Drop all nodes/edges (held stacks of live threads persist). */
    void reset();

    std::size_t nodeCount() const;
    std::size_t edgeCount() const;

    /** Each cycle as "a -> b -> a" over node labels. */
    std::vector<std::string> cycles() const;

    /** The /proc/cider/lockorder text. */
    std::string dump() const;

  private:
    struct Node
    {
        std::string label;
        std::map<const void *, std::uint64_t> out; ///< edge -> count
    };

    mutable std::mutex mu_;
    std::map<const void *, Node> nodes_;
    std::atomic<bool> tracking_{false};
};

class SchedRail
{
  public:
    /** The process-wide rail the yield points are threaded to. */
    static SchedRail &global();

    /// @{ Arming. arm() resets episode state; disarm() also reaps any
    /// spawned-but-never-run guests. Both panic mid-run.
    void arm(const SchedOptions &opt);
    void disarm();
    bool
    engaged() const
    {
        return engaged_.load(std::memory_order_relaxed);
    }
    /// @}

    /**
     * Register a guest thread. The function runs on a dedicated host
     * thread but only while the rail schedules it. Ids are assigned
     * in spawn order (deterministic). Requires an armed, idle rail.
     */
    void spawn(const char *name, std::function<void()> fn);

    /**
     * Drive every spawned guest to completion (or deadlock) under the
     * armed policy, join the host threads, and return the episode
     * result. The guest list is consumed; arm state is kept so the
     * next spawn/run pair reuses the same options.
     */
    SchedResult run();

    /** Result of the most recent run (explorer backtracking). */
    const SchedResult &lastResult() const { return lastResult_; }

    /// @{ Yield-point hooks (no-ops for non-guest callers).
    /** Preemptible decision point — CIDER_SCHED_POINT. */
    void yieldPoint(const char *site);
    /** Voluntary hand-off: the default policy prefers another guest.
     *  Use in guest spin-waits so non-preemptive schedules progress. */
    void pass(const char *site);
    /// @}

    /// @{ Blocking hooks, called by the railed primitives with every
    /// guest-level lock logically released.
    /** Park until a wakeup on @p channel reschedules the caller. */
    void blockOn(const void *channel, const char *site);
    /** Deadline form: true when the caller was scheduled by firing
     *  its timeout, false when a wakeup arrived first. */
    bool blockOnDeadline(const void *channel, const char *site);
    /** Mark guests blocked on @p channel runnable (oldest first). */
    void wakeupChannel(const void *channel, bool all);
    /// @}

    /** Marker identifying the calling host thread's guest (null when
     *  the caller is not a rail guest). */
    static const void *guestMarker();

    LockOrderGraph &lockGraph() { return lockGraph_; }
    const LockOrderGraph &lockGraph() const { return lockGraph_; }

  private:
    struct Guest;

    SchedRail() = default;

    void guestMain(Guest *g, const std::function<void()> &fn);
    void pickNextLocked(const char *site, char kind);
    std::uint32_t defaultPickLocked(const std::vector<std::uint32_t> &enabled,
                                    std::uint32_t prev, char kind) const;
    void abortLocked();
    void parkUntilScheduled(std::unique_lock<std::mutex> &lk, Guest *g);

    mutable std::mutex mu_;
    std::condition_variable controllerCv_;
    std::vector<std::unique_ptr<Guest>> guests_;
    SchedOptions options_;
    Rng rng_{1};
    std::atomic<bool> engaged_{false};
    bool running_ = false;
    bool aborted_ = false;
    bool deadlocked_ = false;
    bool diverged_ = false;
    bool guestThrew_ = false;
    std::uint32_t runningId_ = kNoGuest;
    std::uint64_t nextBlockSeq_ = 0;
    std::uint64_t preemptions_ = 0;
    std::vector<SchedEvent> trace_;
    std::vector<std::string> blockedThreads_;
    SchedResult lastResult_;
    LockOrderGraph lockGraph_;

    static thread_local Guest *tGuest_;

    static constexpr std::uint32_t kNoGuest = 0xffffffffu;
};

/**
 * Yield point: one relaxed load when the rail is disarmed, a
 * scheduling decision when armed and the caller is a rail guest.
 * Never charges virtual time.
 */
#define CIDER_SCHED_POINT(site_name)                                        \
    do {                                                                    \
        ::cider::kernel::SchedRail &cider_sr =                              \
            ::cider::kernel::SchedRail::global();                           \
        if (cider_sr.engaged())                                             \
            cider_sr.yieldPoint(site_name);                                 \
    } while (0)

/// @{ Bounded-preemption DFS over schedules (stateless exploration).
struct ExploreOptions
{
    /** Max forced preemptions per schedule (decisions where a guest
     *  at a 'y' yield point loses the CPU while still runnable). */
    int maxPreemptions = 2;
    std::uint64_t maxSchedules = 4096;
};

struct ExploreResult
{
    bool bugFound = false;
    bool exhausted = false; ///< hit maxSchedules before full coverage
    std::uint64_t schedulesRun = 0;
    SchedResult failing;
    std::vector<std::uint32_t> failingSchedule;
};

/**
 * Systematically explore interleavings of one episode: @p setup
 * re-creates the scenario and spawns guests on @p rail (which
 * arrives armed with an Explore prefix), @p episode_ok checks the
 * scenario invariant after the run. Returns on the first run whose
 * invariant fails (or that deadlocks), with the failing trace and
 * replayable schedule; otherwise explores every schedule reachable
 * within the preemption bound.
 */
ExploreResult exploreSchedules(SchedRail &rail,
                               const std::function<void()> &setup,
                               const std::function<bool()> &episode_ok,
                               const ExploreOptions &opt = {});
/// @}

/**
 * Kernel device node exposing the lock-order graph at
 * /proc/cider/lockorder. Reads are single-shot, like
 * /proc/cider/trapstats and /proc/cider/faults.
 */
class SchedRailDevice : public Device
{
  public:
    explicit SchedRailDevice(const SchedRail &rail)
        : Device("lockorder", "proc"), rail_(rail)
    {}

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;

  private:
    const SchedRail &rail_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_SCHED_RAIL_H
