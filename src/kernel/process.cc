#include "kernel/process.h"

#include <algorithm>

#include "base/logging.h"

namespace cider::kernel {

Process::Process(Pid pid, std::string name, Process *parent)
    : pid_(pid), name_(std::move(name)), parent_(parent)
{}

Thread &
Process::createThread(Persona persona)
{
    threads_.push_back(std::make_unique<Thread>(nextTid_++, *this, persona));
    return *threads_.back();
}

Thread &
Process::mainThread()
{
    if (threads_.empty())
        // invariant-only: createProcess always creates the main thread.
        cider_panic("process ", name_, " has no threads");
    return *threads_.front();
}

void
Process::terminate(int code, std::uint64_t vtime)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::Running)
        return;
    fds_.closeAll();
    exitCode_ = code;
    exitVtime_ = vtime;
    state_ = State::Zombie;
    exitCv_.notify_all();
}

void
Process::waitUntilZombie()
{
    std::unique_lock<std::mutex> lock(mu_);
    exitCv_.wait(lock, [this] { return state_ != State::Running; });
}

} // namespace cider::kernel
