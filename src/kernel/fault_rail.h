/**
 * @file
 * FaultRail: deterministic, kernel-wide fault injection.
 *
 * A global registry of named fault sites threaded through every layer
 * that can fail under resource pressure or corrupt input: zalloc /
 * kalloc, VFS resolution and creation, Mach IPC port and right
 * allocation, message send/receive, psynch waits, the binfmt loaders,
 * and signal delivery. Each site is interned once (a dense SiteId)
 * and consulted with one relaxed atomic load on the hot path:
 *
 *     static const auto site = FaultRail::global().site("zone.alloc");
 *     if (FaultRail::global().shouldFail(site))
 *         return nullptr;
 *
 * Trigger policies are deterministic and virtual-time aware:
 *
 *  - nth(n)      fire exactly once, on the n-th hit since arming
 *                (1-based);
 *  - every(k)    fire on every k-th hit since arming;
 *  - prob(p,s)   seeded Bernoulli draw per hit (base::Rng SplitMix64);
 *  - window(a,b) fire while the caller's virtual time is in [a, b).
 *
 * Any policy can additionally be scoped to one process: a scoped site
 * only trips when the calling host thread is simulating a thread of
 * that pid, so a fault storm can target the app under test while
 * system services keep running clean. Policy counting happens after
 * the scope filter: a scoped nth(n) fires on the n-th hit *by that
 * process*, regardless of how much other traffic crosses the site.
 *
 * Injection is free when disabled: with no site armed and tracking
 * off, shouldFail() is a single relaxed load and never touches the
 * virtual clock, so registering every site leaves benchmark virtual
 * time series bit-identical. Hit/trip counters are kept only while
 * the rail is active (armed or tracking).
 *
 * The accumulated state is readable as text from the
 * /proc/cider/faults device node, mirroring /proc/cider/trapstats,
 * including a hung-wait watchdog section listing threads blocked in
 * duct-taped wait queues longer than a host threshold.
 */

#ifndef CIDER_KERNEL_FAULT_RAIL_H
#define CIDER_KERNEL_FAULT_RAIL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/rng.h"
#include "kernel/device.h"
#include "kernel/types.h"

namespace cider::kernel {

/** Trigger policy of one armed fault site. */
struct FaultSpec
{
    enum class Kind
    {
        Never,       ///< registered but disarmed
        Nth,         ///< fire once, on the n-th hit (1-based)
        EveryK,      ///< fire on every k-th hit
        Probability, ///< seeded Bernoulli draw per hit
        Window,      ///< fire while virtualNow() in [startNs, endNs)
    };

    Kind kind = Kind::Never;
    std::uint64_t n = 0;     ///< Nth / EveryK parameter
    double p = 0.0;          ///< Probability parameter
    std::uint64_t seed = 0;  ///< Probability stream seed
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    /** Scope to one process; -1 fires for any caller. */
    Pid pid = -1;
};

/** Counter snapshot for one site (test/dump introspection). */
struct FaultSiteStats
{
    std::string name;
    bool armed = false;
    FaultSpec spec;
    std::uint64_t hits = 0;  ///< evaluations while the rail was active
    std::uint64_t trips = 0; ///< evaluations that injected a failure
};

class FaultRail
{
  public:
    using SiteId = std::uint32_t;

    /** The process-wide rail every subsystem threads its sites to. */
    static FaultRail &global();

    /**
     * Intern @p name (idempotent) and return its dense id. Call sites
     * cache the result in a function-local static, so registration
     * happens once per site regardless of traffic.
     */
    SiteId site(const char *name);

    /**
     * Hot-path probe: true when the site should inject a failure now.
     * One relaxed load when nothing is armed; never charges virtual
     * time in either direction.
     */
    bool
    shouldFail(SiteId id)
    {
        if (activity_.load(std::memory_order_relaxed) == 0)
            return false;
        return shouldFailSlow(id);
    }

    /// @{ Arming. Sites are named; arming an unregistered name
    /// registers it (storms can arm before the first hit).
    void arm(const std::string &site_name, const FaultSpec &spec);
    void armNth(const std::string &site_name, std::uint64_t n,
                Pid pid = -1);
    void armEveryK(const std::string &site_name, std::uint64_t k,
                   Pid pid = -1);
    void armProbability(const std::string &site_name, double p,
                        std::uint64_t seed, Pid pid = -1);
    void armWindow(const std::string &site_name, std::uint64_t start_ns,
                   std::uint64_t end_ns, Pid pid = -1);
    void disarm(const std::string &site_name);
    void disarmAll();
    /// @}

    /**
     * Count hits even while nothing is armed (site-traffic view for
     * /proc/cider/faults). Off by default: tracking makes the probe
     * take the slow path, so it costs host atomics per hit.
     */
    void setTracking(bool on);

    /// @{ Introspection.
    std::uint64_t hits(const std::string &site_name) const;
    std::uint64_t trips(const std::string &site_name) const;
    /** Total trips across all sites (storm accounting). */
    std::uint64_t totalTrips() const;
    std::vector<FaultSiteStats> snapshot() const;
    std::size_t siteCount() const;
    /// @}

    /** Zero hit/trip counters; leaves arming untouched. */
    void resetCounters();

    /** Host-ms threshold for the hung-wait watchdog section. */
    void setWatchdogThresholdMs(double ms) { watchdogMs_ = ms; }

    /** The /proc/cider/faults text: site table + hung-wait report. */
    std::string dump() const;

  private:
    struct Site
    {
        std::string name;
        bool armed = false;
        FaultSpec spec;
        Rng rng{0}; ///< per-site SplitMix64 stream (Probability)
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> trips{0};
        /** Hits the armed policy actually saw: counted after the pid
         *  filter and zeroed at arm(), so Nth/EveryK fire on the n-th
         *  *matching* hit since arming — traffic from other processes
         *  or from before arming never consumes a policy slot. */
        std::uint64_t policyHits = 0;
    };

    FaultRail() = default;

    bool shouldFailSlow(SiteId id);
    Site *findLocked(const std::string &site_name);
    const Site *findLocked(const std::string &site_name) const;
    void bumpActivity(int delta);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Site>> sites_;
    /** armed-site count plus one while tracking; 0 = fast path. */
    std::atomic<std::uint32_t> activity_{0};
    std::uint32_t armedCount_ = 0;
    bool tracking_ = false;
    double watchdogMs_ = 1000.0;
};

/**
 * Shorthand for the cached-site probe. Expands to a function-local
 * static intern plus the one-load fast path.
 */
#define CIDER_FAULT_POINT(site_name)                                        \
    ([]() -> bool {                                                         \
        static const ::cider::kernel::FaultRail::SiteId cider_fs_id =      \
            ::cider::kernel::FaultRail::global().site(site_name);           \
        return ::cider::kernel::FaultRail::global().shouldFail(             \
            cider_fs_id);                                                   \
    }())

/**
 * Kernel device node exposing the fault table at /proc/cider/faults.
 * Reads are single-shot, like /proc/cider/trapstats.
 */
class FaultRailDevice : public Device
{
  public:
    explicit FaultRailDevice(const FaultRail &rail)
        : Device("faults", "proc"), rail_(rail)
    {}

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;

  private:
    const FaultRail &rail_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_FAULT_RAIL_H
