#include "kernel/linux_syscalls.h"

#include "kernel/kernel.h"
#include "kernel/trap_context.h"

namespace cider::kernel {

void
buildLinuxSyscallTable(Kernel &k)
{
    SyscallTable &tbl = k.linuxTable();

    tbl.set(sysno::NULL_SYSCALL, "null", [](TrapContext &c, void *) {
        return c.kernel.sysNull(c.thread);
    });

    tbl.set(sysno::EXIT, "exit", [](TrapContext &c, void *) {
        c.kernel.sysExit(c.thread, c.args.i32(0));
        return SyscallResult::success(); // unreachable
    });

    tbl.set(sysno::FORK, "fork", [](TrapContext &c, void *) {
        auto *body = static_cast<EntryFn *>(c.args.ptr(0));
        return c.kernel.sysFork(c.thread, body ? *body : EntryFn());
    });

    tbl.set(sysno::READ, "read", [](TrapContext &c, void *) {
        return c.kernel.sysRead(c.thread, c.args.i32(0),
                                *c.args.bytes(1),
                                static_cast<std::size_t>(c.args.u64(2)));
    });

    tbl.set(sysno::WRITE, "write", [](TrapContext &c, void *) {
        return c.kernel.sysWrite(c.thread, c.args.i32(0),
                                 *c.args.cbytes(1));
    });

    tbl.set(sysno::OPEN, "open", [](TrapContext &c, void *) {
        return c.kernel.sysOpen(c.thread, c.args.str(0), c.args.i32(1));
    });

    tbl.set(sysno::CLOSE, "close", [](TrapContext &c, void *) {
        return c.kernel.sysClose(c.thread, c.args.i32(0));
    });

    tbl.set(sysno::WAITPID, "waitpid", [](TrapContext &c, void *) {
        return c.kernel.sysWaitpid(c.thread, c.args.i32(0),
                                   static_cast<int *>(c.args.ptr(1)));
    });

    tbl.set(sysno::UNLINK, "unlink", [](TrapContext &c, void *) {
        return c.kernel.sysUnlink(c.thread, c.args.str(0));
    });

    tbl.set(sysno::EXECVE, "execve", [](TrapContext &c, void *) {
        auto *argv =
            static_cast<std::vector<std::string> *>(c.args.ptr(1));
        return c.kernel.sysExecve(c.thread, c.args.str(0),
                                  argv ? *argv
                                       : std::vector<std::string>());
    });

    tbl.set(sysno::GETPID, "getpid", [](TrapContext &c, void *) {
        return c.kernel.sysGetpid(c.thread);
    });

    tbl.set(sysno::KILL, "kill", [](TrapContext &c, void *) {
        return c.kernel.sysKill(c.thread, c.args.i32(0), c.args.i32(1));
    });

    tbl.set(sysno::MKDIR, "mkdir", [](TrapContext &c, void *) {
        return c.kernel.sysMkdir(c.thread, c.args.str(0));
    });

    tbl.set(sysno::RMDIR, "rmdir", [](TrapContext &c, void *) {
        return c.kernel.sysRmdir(c.thread, c.args.str(0));
    });

    tbl.set(sysno::DUP, "dup", [](TrapContext &c, void *) {
        return c.kernel.sysDup(c.thread, c.args.i32(0));
    });

    tbl.set(sysno::PIPE, "pipe", [](TrapContext &c, void *) {
        return c.kernel.sysPipe(c.thread,
                                static_cast<Fd *>(c.args.ptr(0)));
    });

    tbl.set(sysno::IOCTL, "ioctl", [](TrapContext &c, void *) {
        return c.kernel.sysIoctl(c.thread, c.args.i32(0), c.args.u64(1),
                                 c.args.ptr(2));
    });

    tbl.set(sysno::LSEEK, "lseek", [](TrapContext &c, void *) {
        return c.kernel.sysLseek(c.thread, c.args.i32(0), c.args.i64(1),
                                 c.args.i32(2));
    });

    tbl.set(sysno::STAT, "stat", [](TrapContext &c, void *) {
        return c.kernel.sysStat(c.thread, c.args.str(0),
                                static_cast<StatBuf *>(c.args.ptr(1)));
    });

    tbl.set(sysno::RENAME, "rename", [](TrapContext &c, void *) {
        return c.kernel.sysRename(c.thread, c.args.str(0),
                                  c.args.str(1));
    });

    tbl.set(sysno::DUP2, "dup2", [](TrapContext &c, void *) {
        return c.kernel.sysDup2(c.thread, c.args.i32(0), c.args.i32(1));
    });

    tbl.set(sysno::GETPPID, "getppid", [](TrapContext &c, void *) {
        return c.kernel.sysGetppid(c.thread);
    });

    tbl.set(sysno::SIGACTION, "sigaction", [](TrapContext &c, void *) {
        auto *act = static_cast<SignalAction *>(c.args.ptr(1));
        return c.kernel.sysSigaction(c.thread, c.args.i32(0),
                                     act ? *act : SignalAction());
    });

    tbl.set(sysno::SELECT, "select", [](TrapContext &c, void *) {
        auto *rd = static_cast<std::vector<Fd> *>(c.args.ptr(0));
        auto *wr = static_cast<std::vector<Fd> *>(c.args.ptr(1));
        auto *ready = static_cast<std::vector<Fd> *>(c.args.ptr(2));
        static const std::vector<Fd> empty;
        return c.kernel.sysSelect(c.thread, rd ? *rd : empty,
                                  wr ? *wr : empty, *ready);
    });

    // socket(2) serves two families: the historical no-arg form is
    // AF_UNIX; socket(domain=2, type) is AF_INET (type 1=stream,
    // 2=dgram). bind/connect likewise dispatch on the argument shape
    // (a path string is AF_UNIX; numeric addr/port is AF_INET).
    tbl.set(sysno::SOCKET, "socket", [](TrapContext &c, void *) {
        if (c.args.size() >= 2)
            return c.kernel.sysNetSocket(c.thread, c.args.i32(1));
        return c.kernel.sysSocket(c.thread);
    });

    tbl.set(sysno::BIND, "bind", [](TrapContext &c, void *) {
        if (c.args.size() >= 3)
            return c.kernel.sysNetBind(
                c.thread, c.args.i32(0),
                static_cast<NetAddr>(c.args.u64(1)),
                static_cast<NetPort>(c.args.u64(2)));
        return c.kernel.sysBind(c.thread, c.args.i32(0), c.args.str(1));
    });

    tbl.set(sysno::CONNECT, "connect", [](TrapContext &c, void *) {
        if (c.args.size() >= 3)
            return c.kernel.sysNetConnect(
                c.thread, c.args.i32(0),
                static_cast<NetAddr>(c.args.u64(1)),
                static_cast<NetPort>(c.args.u64(2)));
        return c.kernel.sysConnect(c.thread, c.args.i32(0),
                                   c.args.str(1));
    });

    tbl.set(sysno::LISTEN, "listen", [](TrapContext &c, void *) {
        return c.kernel.sysListen(c.thread, c.args.i32(0),
                                  c.args.i32(1));
    });

    tbl.set(sysno::ACCEPT, "accept", [](TrapContext &c, void *) {
        return c.kernel.sysAccept(c.thread, c.args.i32(0));
    });

    tbl.set(sysno::SOCKETPAIR, "socketpair", [](TrapContext &c, void *) {
        return c.kernel.sysSocketpair(c.thread,
                                      static_cast<Fd *>(c.args.ptr(0)));
    });

    tbl.set(sysno::SENDTO, "sendto", [](TrapContext &c, void *) {
        const Bytes *data = c.args.cbytes(1);
        static const Bytes empty;
        return c.kernel.sysNetSendTo(
            c.thread, c.args.i32(0),
            static_cast<NetAddr>(c.args.u64(2)),
            static_cast<NetPort>(c.args.u64(3)),
            data ? *data : empty);
    });

    tbl.set(sysno::RECVFROM, "recvfrom", [](TrapContext &c, void *) {
        Bytes *out = c.args.bytes(1);
        if (out == nullptr)
            return SyscallResult::failure(lnx::FAULT);
        return c.kernel.sysNetRecvFrom(
            c.thread, c.args.i32(0), *out,
            static_cast<std::size_t>(c.args.u64(2)),
            static_cast<NetAddr *>(c.args.ptr(3)),
            static_cast<NetPort *>(c.args.ptr(4)));
    });

    tbl.set(sysno::SHUTDOWN, "shutdown", [](TrapContext &c, void *) {
        return c.kernel.sysNetShutdown(c.thread, c.args.i32(0),
                                       c.args.i32(1));
    });
}

} // namespace cider::kernel
