#include "kernel/linux_syscalls.h"

#include "kernel/kernel.h"

namespace cider::kernel {

void
buildLinuxSyscallTable(Kernel &k)
{
    SyscallTable &tbl = k.linuxTable();

    tbl.set(sysno::NULL_SYSCALL, "null",
            [](Kernel &kk, Thread &t, SyscallArgs &) {
                return kk.sysNull(t);
            });

    tbl.set(sysno::EXIT, "exit", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        kk.sysExit(t, a.i32(0));
        return SyscallResult::success(); // unreachable
    });

    tbl.set(sysno::FORK, "fork", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        auto *body = static_cast<EntryFn *>(a.ptr(0));
        return kk.sysFork(t, body ? *body : EntryFn());
    });

    tbl.set(sysno::READ, "read", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysRead(t, a.i32(0), *a.bytes(1),
                          static_cast<std::size_t>(a.u64(2)));
    });

    tbl.set(sysno::WRITE, "write", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysWrite(t, a.i32(0), *a.cbytes(1));
    });

    tbl.set(sysno::OPEN, "open", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysOpen(t, a.str(0), a.i32(1));
    });

    tbl.set(sysno::CLOSE, "close", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysClose(t, a.i32(0));
    });

    tbl.set(sysno::WAITPID, "waitpid",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                return kk.sysWaitpid(t, a.i32(0),
                                     static_cast<int *>(a.ptr(1)));
            });

    tbl.set(sysno::UNLINK, "unlink",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                return kk.sysUnlink(t, a.str(0));
            });

    tbl.set(sysno::EXECVE, "execve",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                auto *argv =
                    static_cast<std::vector<std::string> *>(a.ptr(1));
                return kk.sysExecve(t, a.str(0),
                                    argv ? *argv
                                         : std::vector<std::string>());
            });

    tbl.set(sysno::GETPID, "getpid",
            [](Kernel &kk, Thread &t, SyscallArgs &) {
                return kk.sysGetpid(t);
            });

    tbl.set(sysno::KILL, "kill", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysKill(t, a.i32(0), a.i32(1));
    });

    tbl.set(sysno::MKDIR, "mkdir", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysMkdir(t, a.str(0));
    });

    tbl.set(sysno::RMDIR, "rmdir", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysRmdir(t, a.str(0));
    });

    tbl.set(sysno::DUP, "dup", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysDup(t, a.i32(0));
    });

    tbl.set(sysno::PIPE, "pipe", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysPipe(t, static_cast<Fd *>(a.ptr(0)));
    });

    tbl.set(sysno::IOCTL, "ioctl", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysIoctl(t, a.i32(0), a.u64(1), a.ptr(2));
    });

    tbl.set(sysno::LSEEK, "lseek", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysLseek(t, a.i32(0), a.i64(1), a.i32(2));
    });

    tbl.set(sysno::STAT, "stat", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysStat(t, a.str(0), static_cast<StatBuf *>(a.ptr(1)));
    });

    tbl.set(sysno::RENAME, "rename",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                return kk.sysRename(t, a.str(0), a.str(1));
            });

    tbl.set(sysno::DUP2, "dup2", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysDup2(t, a.i32(0), a.i32(1));
    });

    tbl.set(sysno::GETPPID, "getppid",
            [](Kernel &kk, Thread &t, SyscallArgs &) {
                return kk.sysGetppid(t);
            });

    tbl.set(sysno::SIGACTION, "sigaction",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                auto *act = static_cast<SignalAction *>(a.ptr(1));
                return kk.sysSigaction(t, a.i32(0),
                                       act ? *act : SignalAction());
            });

    tbl.set(sysno::SELECT, "select",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                auto *rd = static_cast<std::vector<Fd> *>(a.ptr(0));
                auto *wr = static_cast<std::vector<Fd> *>(a.ptr(1));
                auto *ready = static_cast<std::vector<Fd> *>(a.ptr(2));
                static const std::vector<Fd> empty;
                return kk.sysSelect(t, rd ? *rd : empty, wr ? *wr : empty,
                                    *ready);
            });

    tbl.set(sysno::SOCKET, "socket",
            [](Kernel &kk, Thread &t, SyscallArgs &) {
                return kk.sysSocket(t);
            });

    tbl.set(sysno::BIND, "bind", [](Kernel &kk, Thread &t, SyscallArgs &a) {
        return kk.sysBind(t, a.i32(0), a.str(1));
    });

    tbl.set(sysno::CONNECT, "connect",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                return kk.sysConnect(t, a.i32(0), a.str(1));
            });

    tbl.set(sysno::LISTEN, "listen",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                return kk.sysListen(t, a.i32(0), a.i32(1));
            });

    tbl.set(sysno::ACCEPT, "accept",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                return kk.sysAccept(t, a.i32(0));
            });

    tbl.set(sysno::SOCKETPAIR, "socketpair",
            [](Kernel &kk, Thread &t, SyscallArgs &a) {
                return kk.sysSocketpair(t, static_cast<Fd *>(a.ptr(0)));
            });
}

} // namespace cider::kernel
