#include "kernel/fd_table.h"

namespace cider::kernel {

SyscallResult
FdTable::install(std::shared_ptr<OpenFile> file)
{
    auto desc = std::make_shared<FileDescription>();
    desc->file = std::move(file);
    return installDescription(std::move(desc));
}

SyscallResult
FdTable::installDescription(std::shared_ptr<FileDescription> d)
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i]) {
            slots_[i] = std::move(d);
            return SyscallResult::success(static_cast<std::int64_t>(i));
        }
    }
    if (static_cast<int>(slots_.size()) >= maxFds_)
        return SyscallResult::failure(lnx::MFILE);
    slots_.push_back(std::move(d));
    return SyscallResult::success(static_cast<std::int64_t>(slots_.size()) -
                                  1);
}

std::shared_ptr<FileDescription>
FdTable::get(Fd fd) const
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size())
        return nullptr;
    return slots_[static_cast<std::size_t>(fd)];
}

SyscallResult
FdTable::dup(Fd fd)
{
    auto desc = get(fd);
    if (!desc)
        return SyscallResult::failure(lnx::BADF);
    return installDescription(desc);
}

SyscallResult
FdTable::dup2(Fd fd, Fd new_fd)
{
    auto desc = get(fd);
    if (!desc || new_fd < 0 || new_fd >= maxFds_)
        return SyscallResult::failure(lnx::BADF);
    if (fd == new_fd)
        return SyscallResult::success(new_fd);
    if (get(new_fd))
        close(new_fd);
    if (static_cast<std::size_t>(new_fd) >= slots_.size())
        slots_.resize(static_cast<std::size_t>(new_fd) + 1);
    slots_[static_cast<std::size_t>(new_fd)] = desc;
    return SyscallResult::success(new_fd);
}

SyscallResult
FdTable::close(Fd fd)
{
    auto desc = get(fd);
    if (!desc)
        return SyscallResult::failure(lnx::BADF);
    slots_[static_cast<std::size_t>(fd)] = nullptr;
    // Last reference to the description closes the file object.
    if (desc.use_count() == 1 && desc->file)
        desc->file->closed();
    return SyscallResult::success();
}

FdTable
FdTable::cloneForFork() const
{
    FdTable copy(maxFds_);
    copy.slots_ = slots_;
    return copy;
}

void
FdTable::closeAll()
{
    for (auto &slot : slots_) {
        if (slot && slot.use_count() == 1 && slot->file)
            slot->file->closed();
        slot = nullptr;
    }
}

void
FdTable::closeCloexec()
{
    for (auto &slot : slots_) {
        if (slot && slot->cloexec) {
            if (slot.use_count() == 1 && slot->file)
                slot->file->closed();
            slot = nullptr;
        }
    }
}

int
FdTable::openCount() const
{
    int n = 0;
    for (const auto &slot : slots_)
        if (slot)
            ++n;
    return n;
}

} // namespace cider::kernel
