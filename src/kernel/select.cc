/**
 * @file
 * select(2) for the simulated kernel.
 *
 * Implemented as a readiness scan whose cost is linear in the number
 * of descriptors, with a per-profile ceiling: the iPad mini profile
 * refuses large sets outright, reproducing the paper's observation
 * that its select test "simply failed to complete for 250 file
 * descriptors" while Cider on the Nexus 7 stayed flat.
 */

#include "base/cost_clock.h"
#include "kernel/kernel.h"

namespace cider::kernel {

SyscallResult
Kernel::sysSelect(Thread &t, const std::vector<Fd> &read_fds,
                  const std::vector<Fd> &write_fds, std::vector<Fd> &ready)
{
    std::size_t total = read_fds.size() + write_fds.size();
    if (profile_.selectMaxFds > 0 &&
        total > static_cast<std::size_t>(profile_.selectMaxFds))
        return SyscallResult::failure(lnx::INVAL);

    charge(profile_.selectBaseNs + total * profile_.selectPerFdNs);

    ready.clear();
    FdTable &fds = t.process().fds();
    for (Fd fd : read_fds) {
        auto desc = fds.get(fd);
        if (!desc || !desc->file)
            return SyscallResult::failure(lnx::BADF);
        if (desc->file->poll().readable)
            ready.push_back(fd);
    }
    for (Fd fd : write_fds) {
        auto desc = fds.get(fd);
        if (!desc || !desc->file)
            return SyscallResult::failure(lnx::BADF);
        if (desc->file->poll().writable)
            ready.push_back(fd);
    }
    return SyscallResult::success(static_cast<std::int64_t>(ready.size()));
}

} // namespace cider::kernel
