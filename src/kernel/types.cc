#include "kernel/types.h"

#include "base/logging.h"

namespace cider::kernel {

const char *
personaName(Persona p)
{
    switch (p) {
      case Persona::Android:
        return "android";
      case Persona::Ios:
        return "ios";
    }
    return "?";
}

const char *
trapClassName(TrapClass c)
{
    switch (c) {
      case TrapClass::LinuxSyscall:
        return "linux";
      case TrapClass::XnuBsd:
        return "xnu-bsd";
      case TrapClass::XnuMach:
        return "xnu-mach";
      case TrapClass::XnuMdep:
        return "xnu-mdep";
      case TrapClass::XnuDiag:
        return "xnu-diag";
    }
    return "?";
}

namespace {

template <typename T>
const T &
argAs(const std::vector<Arg> &args, std::size_t i)
{
    // Foreign user space controls the argument vector, so a missing
    // or mistyped argument is a rejectable request, not an invariant
    // violation: throw for the trap dispatcher to turn into EINVAL.
    if (i >= args.size())
        throw BadSyscallArg("syscall argument " + std::to_string(i) +
                            " out of range");
    const T *v = std::get_if<T>(&args[i]);
    if (!v)
        throw BadSyscallArg("syscall argument " + std::to_string(i) +
                            " has wrong type");
    return *v;
}

} // namespace

std::uint64_t
SyscallArgs::u64(std::size_t i) const
{
    if (i < args.size()) {
        if (const auto *v = std::get_if<std::uint64_t>(&args[i]))
            return *v;
        if (const auto *v = std::get_if<std::int64_t>(&args[i]))
            return static_cast<std::uint64_t>(*v);
    }
    return argAs<std::uint64_t>(args, i);
}

std::int64_t
SyscallArgs::i64(std::size_t i) const
{
    if (i < args.size()) {
        if (const auto *v = std::get_if<std::int64_t>(&args[i]))
            return *v;
        if (const auto *v = std::get_if<std::uint64_t>(&args[i]))
            return static_cast<std::int64_t>(*v);
    }
    return argAs<std::int64_t>(args, i);
}

const std::string &
SyscallArgs::str(std::size_t i) const
{
    return argAs<std::string>(args, i);
}

Bytes *
SyscallArgs::bytes(std::size_t i) const
{
    return argAs<Bytes *>(args, i);
}

const Bytes *
SyscallArgs::cbytes(std::size_t i) const
{
    return argAs<const Bytes *>(args, i);
}

void *
SyscallArgs::ptr(std::size_t i) const
{
    return argAs<void *>(args, i);
}

} // namespace cider::kernel
