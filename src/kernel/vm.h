/**
 * @file
 * CiderVM: the minimal real vm_map layer (ROADMAP item 2).
 *
 * The paper's fork/exec and IPC rows are dominated by address-space
 * work: duplicating ~90 MB of dylib page tables on fork and copying
 * message bodies through the Mach path. This module replaces the old
 * flat (name, pages) accounting with a small but real VM subsystem,
 * shaped after XNU's vm_map/vm_object split:
 *
 *  - VmObject: a refcounted backing store with page-granularity
 *    residency (how many pages have established content) and the
 *    content bytes themselves, lazily extended;
 *  - VmEntry: one mapped range of a task — protection, a COW flag,
 *    and a shared-submap flag (the dyld shared-cache region);
 *  - VmMap: a task's entry list. fork() aliases entries copy-on-write
 *    instead of copying page contents eagerly; the first write to a
 *    COW page takes a fault, charged on the writer's CostClock
 *    (profile pageFaultNs + one page of stream-copy cost);
 *  - VmSubsystem: system-wide state — cost tables, counters for
 *    /proc/cider/vm, and the shared-region registry (one VmObject per
 *    system for the dyld shared cache, mapped per process as a shared
 *    submap entry).
 *
 * Mach OOL descriptors ride this layer too: copyin snapshots a mapped
 * region into a VmObject reference (zero-copy when no pages were
 * privately broken), the reference moves through the KMsg ring, and
 * the receiver maps it back COW (xnu/mach_ipc.cc).
 *
 * Determinism: every charge flows through the calling simulated
 * thread's CostClock; subsystem counters sit behind their own mutex
 * (SMP epoch-merge safe). The COW break is a SchedRail yield point
 * ("vm.fault") taken with no VmMap lock held, so armed schedules can
 * interleave writers against in-flight OOL sends. FaultRail sites:
 * "vm.allocate" (allocation shortfall) and "vm.fault" (a COW break
 * that fails like a paging error).
 */

#ifndef CIDER_KERNEL_VM_H
#define CIDER_KERNEL_VM_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "hw/device_profile.h"
#include "kernel/device.h"

namespace cider::kernel {

class Kernel;

/** Simulated page size (ARM 4K pages on both paper devices). */
inline constexpr std::uint64_t kVmPageBytes = 4096;

/** Entry protection bits. */
enum VmProt : std::uint8_t
{
    VM_PROT_NONE = 0,
    VM_PROT_READ = 1,
    VM_PROT_WRITE = 2,
    VM_PROT_RW = 3,
};

/**
 * Ticket on the process-wide live-VmObject count: constructed (and
 * copied) objects increment it, destroyed objects decrement it. The
 * fleet leak audit reads the balance via vmLiveObjects() — any
 * VmObject alive anywhere (maps, COW shadows, in-flight OOL
 * descriptors) counts, regardless of which VmSubsystem made it.
 */
struct VmLiveTally
{
    VmLiveTally() noexcept;
    VmLiveTally(const VmLiveTally &) noexcept;
    VmLiveTally &operator=(const VmLiveTally &) noexcept { return *this; }
    ~VmLiveTally();
};

/** Number of VmObjects currently alive, process-wide. */
std::uint64_t vmLiveObjects();

/**
 * A refcounted backing store. `pages` is the mapped size; `resident`
 * counts pages with established content (what an eager fork would
 * have to copy); `data` holds the actual bytes when content matters
 * (OOL payloads, vm_write targets) and stays empty for accounting-
 * only image mappings.
 */
struct VmObject
{
    VmLiveTally liveTally;
    std::string name;
    std::uint64_t pages = 0;
    std::uint64_t resident = 0;
    /** System-wide shared region (dyld shared cache): mapped as a
     *  shared submap, never COW-broken. */
    bool sharedRegion = false;
    Bytes data;

    std::uint64_t sizeBytes() const { return pages * kVmPageBytes; }

    /** Copy @p len bytes at @p offset into @p out (zero-fill past the
     *  established data). Caller guarantees the range is mapped. */
    void readAt(std::uint64_t offset, std::uint64_t len, Bytes *out) const;

    /** Establish content at @p offset, extending data and residency. */
    void writeAt(std::uint64_t offset, const Bytes &src);
};

using VmObjectPtr = std::shared_ptr<VmObject>;

/** One mapped range of a task's address space. */
struct VmEntry
{
    std::string name;
    std::uint64_t base = 0;  ///< start address (page aligned)
    std::uint64_t pages = 0; ///< mapped size
    VmObjectPtr object;      ///< backing store
    std::uint8_t prot = VM_PROT_RW;
    /** Writes must break to a private shadow page first. */
    bool cow = false;
    /** Shared submap: fork aliases it without the protect sweep and
     *  it never counts as private. */
    bool shared = false;
    /** Private copies of COW-broken pages (lazily created). */
    VmObjectPtr shadow;
    /** Page indices (entry-relative) broken into the shadow. */
    std::set<std::uint64_t> broken;

    std::uint64_t sizeBytes() const { return pages * kVmPageBytes; }
    bool
    contains(std::uint64_t addr) const
    {
        return addr >= base && addr < base + sizeBytes();
    }
};

/** System counters surfaced by /proc/cider/vm. */
struct VmStats
{
    std::uint64_t objectsCreated = 0;
    std::uint64_t cowFaults = 0;       ///< COW breaks taken
    std::uint64_t brokenPages = 0;     ///< pages privately copied
    std::uint64_t sharedRegionPages = 0;
    std::uint64_t cowForks = 0;
    std::uint64_t eagerForks = 0;
    /** OOL descriptors moved as VmObject references (no byte copy). */
    std::uint64_t oolZeroCopySends = 0;
    /** Inline bodies auto-promoted to OOL past the size threshold. */
    std::uint64_t oolPromotedBodies = 0;
    /** Bodies that stayed inline (copied per byte). */
    std::uint64_t inlineBodies = 0;
};

/**
 * System-wide VM state: the device profile's memory cost table, the
 * shared-region registry, and the counters. One per kernel; MachIpc
 * instances constructed standalone (unit tests) fall back to a
 * private instance over the Nexus 7 profile.
 */
class VmSubsystem
{
  public:
    /** @p profile null selects the Nexus 7 table. */
    explicit VmSubsystem(const hw::DeviceProfile *profile = nullptr);

    VmSubsystem(const VmSubsystem &) = delete;
    VmSubsystem &operator=(const VmSubsystem &) = delete;

    const hw::DeviceProfile &profile() const { return *profile_; }

    /** New backing store (bumps the object counter). */
    VmObjectPtr makeObject(std::string name, std::uint64_t pages,
                           std::uint64_t resident = 0);

    /** Wrap a payload into a fresh object without copying it. */
    VmObjectPtr wrapBytes(std::string name, Bytes &&payload);

    /**
     * The system-wide shared region named @p name, created on first
     * use with @p pages pages (subsequent calls return the cached
     * object regardless of @p pages) — the dyld shared cache is
     * mapped once per system, not once per process.
     */
    VmObjectPtr sharedRegion(const std::string &name, std::uint64_t pages);

    /// @{ Cost helpers (virtual ns).
    /** Streaming copy of one page. */
    std::uint64_t pageCopyBytesNs() const;
    /** One COW break: the fault plus one page copied. */
    std::uint64_t cowFaultNs() const;
    /// @}

    /// @{ Counter updates (each takes the stats lock).
    void noteCowFault(std::uint64_t pages_broken);
    void noteFork(bool eager);
    void noteOolZeroCopy();
    void noteBodySend(bool promoted);
    /// @}

    VmStats statsSnapshot() const;

  private:
    const hw::DeviceProfile *profile_;
    mutable std::mutex mu_;
    VmStats stats_;
    std::map<std::string, VmObjectPtr> sharedRegions_;
};

/**
 * A task's address space: the ordered entry list plus a bump address
 * allocator. Replaces the old AddressSpace struct; the legacy
 * accounting surface (pages / privatePages / addMapping / hasMapping
 * / reset) is preserved so loaders and dyld keep their call sites.
 *
 * Unbound maps (bare unit-test values) use a process-wide fallback
 * subsystem; Kernel::createProcess binds every process map to the
 * kernel's.
 */
class VmMap
{
  public:
    VmMap() = default;

    VmMap(const VmMap &) = delete;
    VmMap &operator=(const VmMap &) = delete;

    void bind(VmSubsystem *vm) { vm_ = vm; }
    VmSubsystem &vm() const;

    /// @{ Legacy accounting surface.
    std::uint64_t pages() const;
    /** Pages the fork protect sweep must touch (non-shared). */
    std::uint64_t privatePages() const;
    void addMapping(const std::string &name, std::uint64_t pages,
                    bool shared = false);
    bool hasMapping(const std::string &name) const;
    void reset();
    /// @}

    /// @{ vm_map surface.
    /**
     * Map @p object at a fresh base address.
     * @return the base address of the new entry.
     */
    std::uint64_t mapObject(const std::string &name, VmObjectPtr object,
                            std::uint8_t prot, bool cow, bool shared);

    /**
     * vm_allocate: anonymous zero-fill memory. Charges the allocation
     * setup cost; FaultRail site "vm.allocate".
     * @return base address, or 0 on (injected) shortage.
     */
    std::uint64_t allocate(const std::string &name, std::uint64_t pages);

    /** vm_deallocate: unmap the entry containing @p addr. */
    bool deallocate(std::uint64_t addr);

    /**
     * vm_write through the fault path: COW pages touched for the
     * first time break into the entry's private shadow (SchedRail
     * yield point + FaultRail site "vm.fault", pageFaultNs + one page
     * copy charged per break), then the bytes land.
     * @return 0 ok; -1 bad address/protection; -2 injected fault.
     */
    int write(std::uint64_t addr, const Bytes &src);

    /** vm_read: assemble @p len bytes at @p addr (shadow overlays
     *  object for broken pages). @return 0 ok, -1 bad address. */
    int read(std::uint64_t addr, std::uint64_t len, Bytes *out) const;

    /**
     * fork(): child construction from @p parent.
     *
     * COW mode aliases every private entry — both sides' entries go
     * copy-on-write against the shared object, and only the PTE
     * write-protect sweep is charged (profile pageCopyEntryNs per
     * private page, the same sweep a real COW fork pays) plus a small
     * per-entry alias cost; content copies are deferred to write
     * faults. Pages the parent had already broken are duplicated now
     * (one page copy each).
     *
     * Eager mode is the pre-VM baseline: page tables AND all resident
     * content are copied at fork time (pageCopyEntryNs per page plus
     * a page of stream-copy per resident page).
     */
    void forkFrom(VmMap &parent, bool eager);

    /**
     * OOL copyin: snapshot the entry containing @p addr into an
     * object reference. Zero-copy (the backing object itself) when no
     * pages were privately broken; otherwise a composed object with
     * the shadow overlaid (one page copy charged per broken page).
     * @p deallocate true unmaps the sender's entry (moved); false
     * keeps the sender's mapping and flips it COW so later sender
     * writes cannot reach the in-flight snapshot.
     * @return the snapshot, or null for an unmapped address.
     */
    VmObjectPtr snapshotForSend(std::uint64_t addr, bool deallocate);

    /// @{ Introspection.
    VmEntry *find(const std::string &name);
    VmEntry *findByAddr(std::uint64_t addr);
    std::size_t entryCount() const;
    /** Copy of the entry table (for /proc/cider/vm and tests). */
    std::vector<VmEntry> entriesSnapshot() const;
    /// @}

  private:
    VmEntry *findByAddrLocked(std::uint64_t addr);
    /** Break one COW page into the shadow; requires mu_ held. */
    void breakPageLocked(VmEntry &e, std::uint64_t page);

    VmSubsystem *vm_ = nullptr;
    mutable std::mutex mu_;
    std::vector<VmEntry> entries_;
    std::uint64_t nextBase_ = 0x100000000ull;
};

/** /proc/cider/vm: per-process entry tables + system counters. */
class VmDevice : public Device
{
  public:
    explicit VmDevice(Kernel &kernel);

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;

  private:
    Kernel &kernel_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_VM_H
