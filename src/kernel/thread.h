/**
 * @file
 * Kernel thread object with per-thread persona state.
 *
 * The persona is tracked *per thread*, inherited on fork/clone, and
 * switchable at runtime via the set_persona syscall — the central
 * kernel mechanism of the paper (sections 4.1 and 4.3). The TLS slots
 * let one thread own distinct thread-local areas for every persona it
 * executes in; the active slot selects where errno and the thread ID
 * live.
 */

#ifndef CIDER_KERNEL_THREAD_H
#define CIDER_KERNEL_THREAD_H

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "base/cost_clock.h"
#include "kernel/signals.h"
#include "kernel/types.h"

namespace cider::kernel {

class Process;

/** Extension-state map modules use to hang per-object state. */
class ExtMap
{
  public:
    /** Fetch (default-constructing on first use) typed state. */
    template <typename T>
    T &
    get(const std::string &key)
    {
        auto it = slots_.find(key);
        if (it == slots_.end())
            it = slots_.emplace(key, std::make_shared<T>()).first;
        return *std::static_pointer_cast<T>(it->second);
    }

    /** Peek without creating. */
    template <typename T>
    T *
    find(const std::string &key) const
    {
        auto it = slots_.find(key);
        if (it == slots_.end())
            return nullptr;
        return std::static_pointer_cast<T>(it->second).get();
    }

    void erase(const std::string &key) { slots_.erase(key); }
    void clear() { slots_.clear(); }

  private:
    std::map<std::string, std::shared_ptr<void>> slots_;
};

class Thread
{
  public:
    Thread(Tid tid, Process &proc, Persona persona)
        : tid_(tid), proc_(&proc), persona_(persona)
    {}

    Tid tid() const { return tid_; }
    Process &process() { return *proc_; }
    const Process &process() const { return *proc_; }

    Persona persona() const { return persona_; }
    void setPersona(Persona p) { persona_ = p; }

    CostClock &clock() { return clock_; }

    /** Pending asynchronous signals awaiting the next trap boundary. */
    std::deque<SigInfo> &pendingSignals() { return pending_; }

    /** Per-thread module extension state (TLS areas, Mach self port). */
    ExtMap &ext() { return ext_; }

    /** The thread the calling host thread is currently simulating. */
    static Thread *current();

  private:
    Tid tid_;
    Process *proc_;
    Persona persona_;
    CostClock clock_;
    std::deque<SigInfo> pending_;
    ExtMap ext_;

    friend class ThreadScope;
};

/**
 * RAII guard: the calling host thread simulates @p thread until the
 * scope ends. Installs the thread's CostClock as the active clock.
 */
class ThreadScope
{
  public:
    explicit ThreadScope(Thread &thread);
    ~ThreadScope();

    ThreadScope(const ThreadScope &) = delete;
    ThreadScope &operator=(const ThreadScope &) = delete;

  private:
    Thread *prev_;
    CostScope cost_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_THREAD_H
