/**
 * @file
 * Kernel thread object with per-thread persona state.
 *
 * The persona is tracked *per thread*, inherited on fork/clone, and
 * switchable at runtime via the set_persona syscall — the central
 * kernel mechanism of the paper (sections 4.1 and 4.3). The TLS slots
 * let one thread own distinct thread-local areas for every persona it
 * executes in; the active slot selects where errno and the thread ID
 * live.
 */

#ifndef CIDER_KERNEL_THREAD_H
#define CIDER_KERNEL_THREAD_H

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "base/cost_clock.h"
#include "kernel/signals.h"
#include "kernel/types.h"

namespace cider::kernel {

class Process;

/**
 * Extension-state map modules use to hang per-object state.
 *
 * The map *structure* is internally locked, so lazy first-use
 * population (get) is safe when several host threads race to create
 * the same slot under SMP — both resolve to one shared value. The
 * returned values themselves are NOT locked: each value follows its
 * owner's serialization (per-thread state is only touched by the host
 * thread simulating that thread — see Thread::ext(); per-process
 * state is shared and must carry its own synchronisation if mutated
 * concurrently).
 */
class ExtMap
{
  public:
    /** Fetch (default-constructing on first use) typed state. */
    template <typename T>
    T &
    get(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = slots_.find(key);
        if (it == slots_.end())
            it = slots_.emplace(key, std::make_shared<T>()).first;
        return *std::static_pointer_cast<T>(it->second);
    }

    /** Peek without creating. */
    template <typename T>
    T *
    find(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = slots_.find(key);
        if (it == slots_.end())
            return nullptr;
        return std::static_pointer_cast<T>(it->second).get();
    }

    void
    erase(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        slots_.erase(key);
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        slots_.clear();
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<void>> slots_;
};

class Thread
{
  public:
    Thread(Tid tid, Process &proc, Persona persona)
        : tid_(tid), proc_(&proc), persona_(persona)
    {}

    Tid tid() const { return tid_; }
    Process &process() { return *proc_; }
    const Process &process() const { return *proc_; }

    /** Relaxed atomics: a signal sender on another host thread reads
     *  the receiver's persona (delivery translation) while the owner
     *  may be mid-switch in a diplomatic call. */
    Persona persona() const
    {
        return persona_.load(std::memory_order_relaxed);
    }
    void setPersona(Persona p)
    {
        persona_.store(p, std::memory_order_relaxed);
    }

    CostClock &clock() { return clock_; }

    /// @{
    /**
     * Signal delivery. Queue/drain are separately locked so any host
     * thread (a concurrently running sender under SMP) can deliver
     * while the target drains at its own trap boundary. The old
     * pattern — peek front, act, pop — was a two-step race; the
     * single-step take keeps drain atomic.
     */
    void queueSignal(const SigInfo &info);
    /** Pop the oldest pending signal; false when none pending. */
    bool takePendingSignal(SigInfo *out);
    std::size_t pendingSignalCount() const;
    /// @}

    /**
     * Per-thread module extension state (TLS areas, Mach self port).
     *
     * Single-owner contract: while a host thread holds a ThreadScope
     * binding this thread, only that host thread may touch ext().
     * Violations panic (and are pinned by a death test) — per-thread
     * extension values are deliberately unlocked, so a cross-host
     * access would be a silent data race.
     */
    ExtMap &ext();

    /** The thread the calling host thread is currently simulating. */
    static Thread *current();

  private:
    Tid tid_;
    Process *proc_;
    std::atomic<Persona> persona_;
    CostClock clock_;
    mutable std::mutex sigMu_;
    std::deque<SigInfo> pending_;
    ExtMap ext_;
    /** Host-thread marker of the ThreadScope currently simulating
     *  this thread (null when not being simulated). */
    std::atomic<const void *> activeHost_{nullptr};

    friend class ThreadScope;
};

/**
 * RAII guard: the calling host thread simulates @p thread until the
 * scope ends. Installs the thread's CostClock as the active clock.
 */
class ThreadScope
{
  public:
    explicit ThreadScope(Thread &thread);
    ~ThreadScope();

    ThreadScope(const ThreadScope &) = delete;
    ThreadScope &operator=(const ThreadScope &) = delete;

  private:
    Thread *prev_;
    CostScope cost_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_THREAD_H
