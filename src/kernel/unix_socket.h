/**
 * @file
 * AF_UNIX stream sockets for the simulated domestic kernel.
 *
 * Used both by the lmbench AF_UNIX latency benchmark and by Cider's
 * input bridge: the CiderPress Android app forwards input events over
 * a UNIX socket to the eventpump thread inside each iOS app (paper
 * section 5.2).
 */

#ifndef CIDER_KERNEL_UNIX_SOCKET_H
#define CIDER_KERNEL_UNIX_SOCKET_H

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "kernel/file.h"

namespace cider::hw {
struct DeviceProfile;
} // namespace cider::hw

namespace cider::kernel {

/** One direction of a connected stream. */
class SocketStream
{
  public:
    static constexpr std::size_t capacity = 256 * 1024;

    explicit SocketStream(const hw::DeviceProfile &profile)
        : profile_(profile)
    {}

    SyscallResult read(Bytes &out, std::size_t n, bool nonblock);
    SyscallResult write(const Bytes &data, bool nonblock);
    void shutdown();
    bool readable() const;
    bool writable() const;

  private:
    const hw::DeviceProfile &profile_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::uint8_t> buf_;
    bool open_ = true;
};

class UnixSocket;
using UnixSocketPtr = std::shared_ptr<UnixSocket>;

/** An AF_UNIX stream socket endpoint. */
class UnixSocket : public OpenFile
{
  public:
    enum class State
    {
        Unbound,
        Listening,
        Connected,
    };

    explicit UnixSocket(const hw::DeviceProfile &profile)
        : profile_(profile)
    {}

    std::string kind() const override { return "unix"; }

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;
    SyscallResult write(Thread &t, const Bytes &data) override;
    PollState poll() const override;
    void closed() override;

    /** Switch to Listening with the given backlog. */
    SyscallResult listen(int backlog);

    /** Block until a pending connection exists; return the new peer. */
    SyscallResult accept(UnixSocketPtr &out);

    State state() const { return state_; }

    /** Create a pre-connected pair (socketpair(2)). */
    static std::pair<UnixSocketPtr, UnixSocketPtr>
    makePair(const hw::DeviceProfile &profile);

    /** Connect @p client to @p listener, enqueueing the server side. */
    static SyscallResult connect(const UnixSocketPtr &client,
                                 const UnixSocketPtr &listener);

  private:
    const hw::DeviceProfile &profile_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    State state_ = State::Unbound;
    int backlog_ = 0;
    std::deque<UnixSocketPtr> pending_;
    std::shared_ptr<SocketStream> rx_;
    std::shared_ptr<SocketStream> tx_;
};

/** Pathname → listening socket registry (the socket namespace). */
class UnixSocketRegistry
{
  public:
    SyscallResult bind(const std::string &path, UnixSocketPtr sock);
    UnixSocketPtr find(const std::string &path) const;
    void unbind(const std::string &path);

  private:
    mutable std::mutex mu_;
    std::map<std::string, UnixSocketPtr> bound_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_UNIX_SOCKET_H
