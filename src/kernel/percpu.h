/**
 * @file
 * The per-CPU layer: simulated CPU slots and the SMP executor pool.
 *
 * Until this layer existed, every guest thread was serialized through
 * one implicit kernel context — the calling host thread — so the
 * simulation could never exceed one host core. The per-CPU structure
 * decomposes that single serialization point the way a real SMP
 * kernel does:
 *
 *  - PerCpu: an array of CpuSlot records sized from the device
 *    profile's core count (the simulated machine's CPUs, not the
 *    host's). Each slot tracks the thread it is currently simulating,
 *    a local virtual-time epoch, and executor counters. A host thread
 *    *binds* to a slot with CpuScope; percpu-aware subsystems (the
 *    zalloc magazine layer, the trap path's epoch merge) key off
 *    PerCpu::currentCpu().
 *
 *  - ExecutorPool: runs a batch of guest jobs on N host threads over
 *    sharded per-CPU run queues with work stealing. *Virtual* CPU
 *    placement is deterministic — job k lands on simulated CPU
 *    (k mod ncpus) at submit time, and its virtual-time cost is
 *    charged to that CPU's epoch no matter which host thread executes
 *    it. Work stealing moves only host execution, never virtual
 *    attribution, so the pool's merged virtual time is a pure
 *    function of the submitted work.
 *
 * Epoch-merge rules (DESIGN.md §11): each simulated CPU's epoch
 * advances by the sum of the virtual nanoseconds of the jobs assigned
 * to it (commutative — any execution order yields the same sum), and
 * the machine's merged virtual time at a barrier is the max over CPU
 * epochs (also commutative). Both folds are order-insensitive, so a
 * run on 1 host thread and a run on 8 report bit-identical virtual
 * time. At trap boundaries a running guest additionally max-merges
 * its thread clock into its slot's live epoch
 * (PerCpu::noteTrapBoundary), keeping /proc/cider/percpu a monotone
 * lower bound of the final merged time while the batch is running.
 *
 * When SchedRail is armed, the pool collapses onto the rail's
 * cooperative schedule: jobs run sequentially in submit order on the
 * calling host thread, so every yield point inside them remains a
 * rail decision and Replay/Explore traces are unchanged by the pool's
 * existence.
 */

#ifndef CIDER_KERNEL_PERCPU_H
#define CIDER_KERNEL_PERCPU_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kernel/device.h"

namespace cider::kernel {

class Thread;

/** Hard ceiling on simulated CPUs (magazine arrays are sized by it). */
inline constexpr unsigned kMaxCpus = 64;

/** One simulated CPU's private state. */
struct CpuSlot
{
    std::uint32_t id = 0;
    /** Thread this CPU is currently simulating (observability). */
    std::atomic<Thread *> current{nullptr};
    /** Local virtual-time epoch in ns (see epoch-merge rules). */
    std::atomic<std::uint64_t> epochNs{0};
    /** Trap boundaries that merged into this epoch. */
    std::atomic<std::uint64_t> trapMerges{0};
    /** Jobs this virtual CPU was assigned / that were stolen away. */
    std::atomic<std::uint64_t> jobsRun{0};
    std::atomic<std::uint64_t> jobsStolen{0};

    /** Lock-free max-merge of @p ns into epochNs. */
    void
    mergeEpoch(std::uint64_t ns)
    {
        std::uint64_t seen = epochNs.load(std::memory_order_relaxed);
        while (ns > seen &&
               !epochNs.compare_exchange_weak(seen, ns,
                                              std::memory_order_relaxed))
            ;
    }
};

/**
 * The simulated machine's CPU array. One per Kernel, sized from the
 * device profile core count (clamped to [1, kMaxCpus]).
 */
class PerCpu
{
  public:
    explicit PerCpu(unsigned ncpus);

    unsigned count() const { return static_cast<unsigned>(slots_.size()); }

    CpuSlot &slot(unsigned cpu) { return *slots_[cpu]; }
    const CpuSlot &slot(unsigned cpu) const { return *slots_[cpu]; }

    /** Slot the calling host thread is bound to (null when unbound). */
    static CpuSlot *currentSlot();

    /** Bound simulated CPU id of the calling host thread, or -1. */
    static int currentCpu();

    /**
     * Trap-boundary epoch merge: when the calling host thread is
     * bound to a CPU slot, fold @p t's virtual clock into the slot's
     * live epoch (max-merge). One thread_local read when unbound.
     */
    static void noteTrapBoundary(Thread &t);

    /** Max over CPU epochs — the machine's merged virtual time. */
    std::uint64_t mergedEpochNs() const;

    /** Zero every slot's epoch and counters (benchmark warm-up). */
    void resetEpochs();

    /** The /proc/cider/percpu text. */
    std::string dump() const;

  private:
    // Slots are stable-address (unique_ptr) so bound host threads and
    // magazine caches can hold CpuSlot* across vector growth — not
    // that it grows, but the invariant costs nothing to keep.
    std::vector<std::unique_ptr<CpuSlot>> slots_;
};

/**
 * RAII binding of the calling host thread to a simulated CPU slot.
 * Nests; the innermost binding wins (matching CostScope/ThreadScope).
 */
class CpuScope
{
  public:
    CpuScope(PerCpu &cpus, unsigned cpu);
    ~CpuScope();

    CpuScope(const CpuScope &) = delete;
    CpuScope &operator=(const CpuScope &) = delete;

  private:
    CpuSlot *prev_;
};

/** Merged result of one ExecutorPool batch. */
struct SmpEpoch
{
    /** Max over per-CPU epochs: the batch's virtual elapsed time. */
    std::uint64_t mergedNs = 0;
    /** Per-simulated-CPU virtual ns (sum over that CPU's jobs). */
    std::vector<std::uint64_t> perCpuNs;
    std::uint64_t jobs = 0;
    /** Jobs executed by a host worker other than their virtual CPU's
     *  primary worker (host-side only; never affects virtual time). */
    std::uint64_t steals = 0;
};

/**
 * Runs guest jobs on N host threads over sharded per-CPU run queues
 * with work stealing. See the file comment for the determinism
 * contract. A pool is a batch engine, not a daemon: submit jobs, call
 * runAll(), read the epoch; reuse freely.
 *
 * Worker host threads are *long-lived*: they are spawned lazily on
 * the first multi-threaded runAll() and then parked on a condition
 * variable between batches, so repeated episodes pay a wakeup instead
 * of a thread create/join per call. Single-threaded pools and
 * rail-collapsed batches never spawn workers at all.
 */
class ExecutorPool
{
  public:
    /**
     * @p host_threads caps the host parallelism (clamped to
     * [1, cpus.count()] workers are *not* required; more workers than
     * simulated CPUs just share slots).
     */
    ExecutorPool(PerCpu &cpus, unsigned host_threads);
    ~ExecutorPool();

    ExecutorPool(const ExecutorPool &) = delete;
    ExecutorPool &operator=(const ExecutorPool &) = delete;

    /**
     * Queue a job. Virtual placement is deterministic: the k-th
     * submitted job runs as simulated CPU (k mod ncpus) work. The job
     * returns the virtual nanoseconds it consumed, which the pool
     * charges to that CPU's epoch.
     */
    void submit(std::function<std::uint64_t()> fn,
                const char *label = "job");

    /** Pin a job to simulated CPU @p cpu instead of round-robin. */
    void submitOn(unsigned cpu, std::function<std::uint64_t()> fn,
                  const char *label = "job");

    /**
     * Run every queued job to completion and return the merged epoch.
     * Under an armed SchedRail the jobs run sequentially in submit
     * order on the calling host thread (the rail's cooperative
     * schedule stays in charge). The job list is consumed.
     */
    SmpEpoch runAll();

    unsigned hostThreads() const { return hostThreads_; }

    /**
     * Jobs queued and not yet consumed by runAll. Only meaningful
     * between batches (the submit/runAll caller's thread); admission
     * controllers read it as a backpressure probe before submitting
     * more work.
     */
    std::uint64_t queuedJobs() const { return queued_; }

  private:
    struct Job
    {
        std::function<std::uint64_t()> fn;
        const char *label;
        std::uint32_t vcpu;
        /** Global submit sequence — the rail-collapse drain order. */
        std::uint64_t seq;
    };

    /** Pop a job for worker @p worker; steal when its shard is dry.
     *  Returns false when every shard is empty. */
    bool popJob(unsigned worker, Job *out, bool *stolen);
    void runJob(const Job &job, bool stolen,
                std::vector<std::atomic<std::uint64_t>> &percpu_ns,
                std::atomic<std::uint64_t> &steals);

    /** Spawn the persistent workers (idempotent). */
    void startWorkers();
    void workerLoop(unsigned w);

    PerCpu &cpus_;
    unsigned hostThreads_;
    std::uint64_t submitSeq_ = 0;

    /// @{ Persistent worker pool: parked between batches.
    std::vector<std::thread> workers_;
    std::mutex poolMu_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::uint64_t batchSeq_ = 0;
    unsigned doneCount_ = 0;
    bool shutdown_ = false;
    std::vector<std::atomic<std::uint64_t>> *batchPercpu_ = nullptr;
    std::atomic<std::uint64_t> *batchSteals_ = nullptr;
    /// @}

    /** One run-queue shard per simulated CPU. */
    struct Shard
    {
        std::mutex mu;
        std::vector<Job> jobs;
        std::size_t head = 0; ///< FIFO pop index
    };
    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint64_t queued_ = 0;
};

/**
 * Kernel device node exposing the per-CPU state at
 * /proc/cider/percpu. Reads are single-shot, like the other
 * /proc/cider nodes.
 */
class PerCpuDevice : public Device
{
  public:
    explicit PerCpuDevice(const PerCpu &cpus)
        : Device("percpu", "proc"), cpus_(cpus)
    {}

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;

  private:
    const PerCpu &cpus_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_PERCPU_H
