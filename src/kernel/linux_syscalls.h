/**
 * @file
 * Linux syscall numbers (ARM-flavoured) and the domestic dispatch
 * table builder.
 *
 * User-space libc wrappers trap with these numbers so every call goes
 * through the kernel's dispatcher — which is exactly where Cider's
 * persona check and table switch live.
 */

#ifndef CIDER_KERNEL_LINUX_SYSCALLS_H
#define CIDER_KERNEL_LINUX_SYSCALLS_H

namespace cider::kernel {

class Kernel;

/** Syscall numbers of the simulated Linux ABI. */
namespace sysno {

inline constexpr int EXIT = 1;
inline constexpr int FORK = 2;
inline constexpr int READ = 3;
inline constexpr int WRITE = 4;
inline constexpr int OPEN = 5;
inline constexpr int CLOSE = 6;
inline constexpr int WAITPID = 7;
inline constexpr int UNLINK = 10;
inline constexpr int CHDIR = 12;
inline constexpr int LSEEK = 19;
inline constexpr int EXECVE = 11;
inline constexpr int GETPID = 20;
inline constexpr int KILL = 37;
inline constexpr int RENAME = 38;
inline constexpr int MKDIR = 39;
inline constexpr int RMDIR = 40;
inline constexpr int DUP = 41;
inline constexpr int PIPE = 42;
inline constexpr int DUP2 = 63;
inline constexpr int GETPPID = 64;
inline constexpr int STAT = 106;
inline constexpr int IOCTL = 54;
inline constexpr int SIGACTION = 67;
inline constexpr int SELECT = 82;
inline constexpr int SOCKET = 281;
inline constexpr int BIND = 282;
inline constexpr int CONNECT = 283;
inline constexpr int LISTEN = 284;
inline constexpr int ACCEPT = 285;
inline constexpr int SOCKETPAIR = 288;
inline constexpr int SENDTO = 290;
inline constexpr int RECVFROM = 292;
inline constexpr int SHUTDOWN = 293;
inline constexpr int NULL_SYSCALL = 999; ///< lmbench's do-nothing probe

/**
 * Cider's new syscall, reachable from every persona (paper section
 * 4.3). Placed in the ARM private-syscall range.
 */
inline constexpr int SET_PERSONA = 983045;

} // namespace sysno

/** Populate @p k's Linux table with the domestic implementations. */
void buildLinuxSyscallTable(Kernel &k);

} // namespace cider::kernel

#endif // CIDER_KERNEL_LINUX_SYSCALLS_H
