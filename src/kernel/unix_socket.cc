#include "kernel/unix_socket.h"

#include "base/cost_clock.h"
#include "hw/device_profile.h"

namespace cider::kernel {

SyscallResult
SocketStream::read(Bytes &out, std::size_t n, bool nonblock)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (buf_.empty()) {
        if (!open_)
            return SyscallResult::success(0);
        if (nonblock)
            return SyscallResult::failure(lnx::AGAIN);
        cv_.wait(lock);
    }
    charge(profile_.unixSockTransferNs / 2);
    std::size_t take = std::min(n, buf_.size());
    out.assign(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(take));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(take));
    cv_.notify_all();
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

SyscallResult
SocketStream::write(const Bytes &data, bool nonblock)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (!open_)
        return SyscallResult::failure(lnx::PIPE);
    while (buf_.size() + data.size() > capacity) {
        if (nonblock)
            return SyscallResult::failure(lnx::AGAIN);
        cv_.wait(lock);
        if (!open_)
            return SyscallResult::failure(lnx::PIPE);
    }
    charge(profile_.unixSockTransferNs / 2);
    buf_.insert(buf_.end(), data.begin(), data.end());
    cv_.notify_all();
    return SyscallResult::success(static_cast<std::int64_t>(data.size()));
}

void
SocketStream::shutdown()
{
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
    cv_.notify_all();
}

bool
SocketStream::readable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !buf_.empty() || !open_;
}

bool
SocketStream::writable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return open_ && buf_.size() < capacity;
}

SyscallResult
UnixSocket::read(Thread &, Bytes &out, std::size_t n)
{
    if (state_ != State::Connected)
        return SyscallResult::failure(lnx::NOTSOCK);
    return rx_->read(out, n, false);
}

SyscallResult
UnixSocket::write(Thread &, const Bytes &data)
{
    if (state_ != State::Connected)
        return SyscallResult::failure(lnx::NOTSOCK);
    return tx_->write(data, false);
}

PollState
UnixSocket::poll() const
{
    PollState st;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::Listening) {
        st.readable = !pending_.empty();
    } else if (state_ == State::Connected) {
        st.readable = rx_->readable();
        st.writable = tx_->writable();
    }
    return st;
}

void
UnixSocket::closed()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (rx_)
        rx_->shutdown();
    if (tx_)
        tx_->shutdown();
    cv_.notify_all();
}

SyscallResult
UnixSocket::listen(int backlog)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::Connected)
        return SyscallResult::failure(lnx::INVAL);
    state_ = State::Listening;
    backlog_ = backlog > 0 ? backlog : 1;
    return SyscallResult::success();
}

SyscallResult
UnixSocket::accept(UnixSocketPtr &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ != State::Listening)
        return SyscallResult::failure(lnx::INVAL);
    while (pending_.empty())
        cv_.wait(lock);
    out = pending_.front();
    pending_.pop_front();
    return SyscallResult::success();
}

std::pair<UnixSocketPtr, UnixSocketPtr>
UnixSocket::makePair(const hw::DeviceProfile &profile)
{
    auto a = std::make_shared<UnixSocket>(profile);
    auto b = std::make_shared<UnixSocket>(profile);
    auto ab = std::make_shared<SocketStream>(profile);
    auto ba = std::make_shared<SocketStream>(profile);
    a->state_ = State::Connected;
    b->state_ = State::Connected;
    a->tx_ = ab;
    b->rx_ = ab;
    b->tx_ = ba;
    a->rx_ = ba;
    return {a, b};
}

SyscallResult
UnixSocket::connect(const UnixSocketPtr &client,
                    const UnixSocketPtr &listener)
{
    if (!listener)
        return SyscallResult::failure(lnx::CONNREFUSED);
    std::scoped_lock lock(client->mu_, listener->mu_);
    if (listener->state_ != State::Listening)
        return SyscallResult::failure(lnx::CONNREFUSED);
    if (client->state_ != State::Unbound)
        return SyscallResult::failure(lnx::ALREADY);
    if (static_cast<int>(listener->pending_.size()) >= listener->backlog_)
        return SyscallResult::failure(lnx::AGAIN);

    auto server = std::make_shared<UnixSocket>(client->profile_);
    auto c2s = std::make_shared<SocketStream>(client->profile_);
    auto s2c = std::make_shared<SocketStream>(client->profile_);
    client->state_ = State::Connected;
    client->tx_ = c2s;
    client->rx_ = s2c;
    server->state_ = State::Connected;
    server->rx_ = c2s;
    server->tx_ = s2c;
    listener->pending_.push_back(server);
    listener->cv_.notify_all();
    return SyscallResult::success();
}

SyscallResult
UnixSocketRegistry::bind(const std::string &path, UnixSocketPtr sock)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = bound_.try_emplace(path, std::move(sock));
    (void)it;
    if (!inserted)
        return SyscallResult::failure(lnx::ADDRINUSE);
    return SyscallResult::success();
}

UnixSocketPtr
UnixSocketRegistry::find(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bound_.find(path);
    return it == bound_.end() ? nullptr : it->second;
}

void
UnixSocketRegistry::unbind(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    bound_.erase(path);
}

} // namespace cider::kernel
