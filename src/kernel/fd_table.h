/**
 * @file
 * Per-process file descriptor table.
 */

#ifndef CIDER_KERNEL_FD_TABLE_H
#define CIDER_KERNEL_FD_TABLE_H

#include <memory>
#include <vector>

#include "kernel/file.h"
#include "kernel/types.h"

namespace cider::kernel {

/**
 * Descriptor table. Entries are shared FileDescription objects so
 * dup() and fork() share offsets and flags, as on Linux.
 */
class FdTable
{
  public:
    explicit FdTable(int max_fds = 1024) : maxFds_(max_fds) {}

    /** Install @p file at the lowest free slot; -EMFILE when full. */
    SyscallResult install(std::shared_ptr<OpenFile> file);

    /** Install an existing description (used by dup and fork). */
    SyscallResult installDescription(std::shared_ptr<FileDescription> d);

    /** Look up a descriptor; null when closed or out of range. */
    std::shared_ptr<FileDescription> get(Fd fd) const;

    SyscallResult dup(Fd fd);
    /** dup2(2): close @p new_fd if open, land the dup there. */
    SyscallResult dup2(Fd fd, Fd new_fd);
    SyscallResult close(Fd fd);

    /** Clone the table for fork(): descriptions are shared. */
    FdTable cloneForFork() const;

    /** Close everything (process exit) and drop CLOEXEC fds (exec). */
    void closeAll();
    void closeCloexec();

    /** Number of live descriptors. */
    int openCount() const;

    int maxFds() const { return maxFds_; }

  private:
    int maxFds_;
    std::vector<std::shared_ptr<FileDescription>> slots_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_FD_TABLE_H
