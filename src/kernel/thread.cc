#include "kernel/thread.h"

namespace cider::kernel {

namespace {

thread_local Thread *t_current = nullptr;

} // namespace

Thread *
Thread::current()
{
    return t_current;
}

ThreadScope::ThreadScope(Thread &thread)
    : prev_(t_current), cost_(thread.clock())
{
    t_current = &thread;
}

ThreadScope::~ThreadScope()
{
    t_current = prev_;
}

} // namespace cider::kernel
