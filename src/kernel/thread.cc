#include "kernel/thread.h"

#include "base/logging.h"

namespace cider::kernel {

namespace {

thread_local Thread *t_current = nullptr;

/** Stable per-host-thread identity for the ext() owner check. */
thread_local char t_hostMarker = 0;

} // namespace

Thread *
Thread::current()
{
    return t_current;
}

void
Thread::queueSignal(const SigInfo &info)
{
    std::lock_guard<std::mutex> lock(sigMu_);
    pending_.push_back(info);
}

bool
Thread::takePendingSignal(SigInfo *out)
{
    std::lock_guard<std::mutex> lock(sigMu_);
    if (pending_.empty())
        return false;
    *out = pending_.front();
    pending_.pop_front();
    return true;
}

std::size_t
Thread::pendingSignalCount() const
{
    std::lock_guard<std::mutex> lock(sigMu_);
    return pending_.size();
}

ExtMap &
Thread::ext()
{
    const void *owner = activeHost_.load(std::memory_order_acquire);
    if (owner != nullptr && owner != &t_hostMarker)
        cider_panic(
            "Thread::ext: cross-host access to thread ", tid_,
            " while another host thread simulates it (single-owner "
            "contract; see thread.h)");
    return ext_;
}

ThreadScope::ThreadScope(Thread &thread)
    : prev_(t_current), cost_(thread.clock())
{
    t_current = &thread;
    thread.activeHost_.store(&t_hostMarker, std::memory_order_release);
}

ThreadScope::~ThreadScope()
{
    // Release the ext() ownership only when leaving the outermost
    // scope for this thread on this host (nested rescoping of the
    // same thread keeps the binding).
    if (prev_ != t_current)
        t_current->activeHost_.store(nullptr, std::memory_order_release);
    t_current = prev_;
}

} // namespace cider::kernel
