#include "kernel/signals.h"

#include "base/logging.h"
#include "kernel/thread.h"

namespace cider::kernel {

SignalAction &
SignalState::action(int linux_signo)
{
    if (linux_signo <= 0 || linux_signo >= lsig::COUNT)
        // invariant-only: callers validate foreign signal numbers
        // before indexing the disposition table.
        cider_panic("bad signal number ", linux_signo);
    return actions_[static_cast<std::size_t>(linux_signo)];
}

const SignalAction &
SignalState::action(int linux_signo) const
{
    return const_cast<SignalState *>(this)->action(linux_signo);
}

void
SignalState::reset()
{
    for (auto &a : actions_)
        a = SignalAction{};
}

bool
SignalState::defaultTerminates(int linux_signo)
{
    switch (linux_signo) {
      case lsig::CHLD:
      case lsig::CONT:
      case lsig::URG:
      case lsig::WINCH:
        return false;
      default:
        return true;
    }
}

int
SignalDeliveryHook::prepare(Thread &, SigInfo &info)
{
    // Default (vanilla) behaviour: Linux numbering, Linux frame.
    info.frameSize = 128;
    return info.signo;
}

} // namespace cider::kernel
