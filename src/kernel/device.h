/**
 * @file
 * Device driver framework of the simulated domestic kernel.
 *
 * Cider hooks the Linux device_add path so every registered Linux
 * device also appears as an I/O Kit registry entry (paper section
 * 5.1). DeviceRegistry::setAddHook is that hook point; the iokit
 * module installs the bridge there.
 */

#ifndef CIDER_KERNEL_DEVICE_H
#define CIDER_KERNEL_DEVICE_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/file.h"
#include "kernel/types.h"

namespace cider::kernel {

/**
 * A Linux-side device driver instance. Property strings feed I/O Kit
 * matching when the device is bridged into the registry.
 */
class Device
{
  public:
    Device(std::string name, std::string dev_class)
        : name_(std::move(name)), class_(std::move(dev_class))
    {}
    virtual ~Device() = default;

    const std::string &name() const { return name_; }
    const std::string &deviceClass() const { return class_; }

    void setProperty(const std::string &key, const std::string &value);
    std::string property(const std::string &key) const;
    const std::map<std::string, std::string> &properties() const
    {
        return props_;
    }

    /** Driver entry points; defaults reject like an empty fops. */
    virtual SyscallResult ioctl(Thread &t, std::uint64_t req, void *arg);
    virtual SyscallResult read(Thread &t, Bytes &out, std::size_t n);
    virtual SyscallResult write(Thread &t, const Bytes &data);

  private:
    std::string name_;
    std::string class_;
    std::map<std::string, std::string> props_;
};

/** Open-file wrapper exposing a device through a descriptor. */
class DeviceFile : public OpenFile
{
  public:
    explicit DeviceFile(Device &dev) : dev_(dev) {}

    std::string kind() const override { return "dev:" + dev_.name(); }
    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;
    SyscallResult write(Thread &t, const Bytes &data) override;
    SyscallResult ioctl(Thread &t, std::uint64_t req, void *arg) override;
    PollState poll() const override;

    Device &device() { return dev_; }

  private:
    Device &dev_;
};

/** All registered devices, with the device_add hook. */
class DeviceRegistry
{
  public:
    using AddHook = std::function<void(Device &)>;

    /** Register a device; fires the add hook (Cider's I/O Kit bridge). */
    Device &add(std::unique_ptr<Device> dev);

    Device *find(const std::string &name) const;
    std::vector<Device *> all() const;

    /** Install the hook called for every device registration. The hook
     *  also runs for devices that were added before installation, so
     *  bridge installation order does not matter. */
    void setAddHook(AddHook hook);

  private:
    std::vector<std::unique_ptr<Device>> devices_;
    AddHook hook_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_DEVICE_H
