#include "kernel/percpu.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "base/logging.h"
#include "kernel/sched_rail.h"
#include "kernel/thread.h"

namespace cider::kernel {

namespace {

thread_local CpuSlot *t_cpuSlot = nullptr;

} // namespace

PerCpu::PerCpu(unsigned ncpus)
{
    unsigned n = std::clamp(ncpus, 1u, kMaxCpus);
    slots_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        auto slot = std::make_unique<CpuSlot>();
        slot->id = i;
        slots_.push_back(std::move(slot));
    }
}

CpuSlot *
PerCpu::currentSlot()
{
    return t_cpuSlot;
}

int
PerCpu::currentCpu()
{
    return t_cpuSlot ? static_cast<int>(t_cpuSlot->id) : -1;
}

void
PerCpu::noteTrapBoundary(Thread &t)
{
    CpuSlot *slot = t_cpuSlot;
    if (!slot)
        return;
    slot->current.store(&t, std::memory_order_relaxed);
    slot->mergeEpoch(t.clock().now());
    slot->trapMerges.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
PerCpu::mergedEpochNs() const
{
    std::uint64_t merged = 0;
    for (const auto &slot : slots_)
        merged = std::max(
            merged, slot->epochNs.load(std::memory_order_relaxed));
    return merged;
}

void
PerCpu::resetEpochs()
{
    for (auto &slot : slots_) {
        slot->epochNs.store(0, std::memory_order_relaxed);
        slot->trapMerges.store(0, std::memory_order_relaxed);
        slot->jobsRun.store(0, std::memory_order_relaxed);
        slot->jobsStolen.store(0, std::memory_order_relaxed);
    }
}

std::string
PerCpu::dump() const
{
    std::string out = "percpu: " + std::to_string(count()) +
                      " simulated cpus\n";
    char line[160];
    for (const auto &slot : slots_) {
        std::snprintf(
            line, sizeof line,
            "cpu%-2u epoch %llu ns  trap-merges %llu  jobs %llu  "
            "stolen %llu\n",
            slot->id,
            static_cast<unsigned long long>(
                slot->epochNs.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                slot->trapMerges.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                slot->jobsRun.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                slot->jobsStolen.load(std::memory_order_relaxed)));
        out += line;
    }
    out += "merged epoch: " + std::to_string(mergedEpochNs()) + " ns\n";
    return out;
}

CpuScope::CpuScope(PerCpu &cpus, unsigned cpu) : prev_(t_cpuSlot)
{
    if (cpu >= cpus.count())
        // invariant-only: binding targets come from in-tree executor
        // code, never from guest input.
        cider_panic("CpuScope: cpu ", cpu, " out of range (",
                    cpus.count(), " slots)");
    t_cpuSlot = &cpus.slot(cpu);
}

CpuScope::~CpuScope()
{
    if (t_cpuSlot)
        t_cpuSlot->current.store(nullptr, std::memory_order_relaxed);
    t_cpuSlot = prev_;
}

ExecutorPool::ExecutorPool(PerCpu &cpus, unsigned host_threads)
    : cpus_(cpus), hostThreads_(std::max(1u, host_threads))
{
    shards_.reserve(cpus_.count());
    for (unsigned i = 0; i < cpus_.count(); ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ExecutorPool::~ExecutorPool()
{
    {
        std::lock_guard<std::mutex> lock(poolMu_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ExecutorPool::startWorkers()
{
    if (!workers_.empty())
        return;
    workers_.reserve(hostThreads_);
    for (unsigned w = 0; w < hostThreads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ExecutorPool::workerLoop(unsigned w)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(poolMu_);
    for (;;) {
        workCv_.wait(lock, [&] {
            return shutdown_ || batchSeq_ != seen;
        });
        if (shutdown_)
            return;
        seen = batchSeq_;
        std::vector<std::atomic<std::uint64_t>> *percpu = batchPercpu_;
        std::atomic<std::uint64_t> *steals = batchSteals_;
        lock.unlock();
        Job job;
        bool stolen = false;
        while (popJob(w, &job, &stolen))
            runJob(job, stolen, *percpu, *steals);
        lock.lock();
        if (++doneCount_ == workers_.size())
            doneCv_.notify_all();
    }
}

void
ExecutorPool::submit(std::function<std::uint64_t()> fn,
                     const char *label)
{
    submitOn(static_cast<unsigned>(submitSeq_ % cpus_.count()),
             std::move(fn), label);
}

void
ExecutorPool::submitOn(unsigned cpu, std::function<std::uint64_t()> fn,
                       const char *label)
{
    if (cpu >= cpus_.count())
        // invariant-only: in-tree callers pin within the machine.
        cider_panic("ExecutorPool::submitOn: cpu ", cpu,
                    " out of range (", cpus_.count(), " slots)");
    std::uint64_t seq = submitSeq_++;
    Shard &shard = *shards_[cpu];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.jobs.push_back(Job{std::move(fn), label, cpu, seq});
    ++queued_;
}

bool
ExecutorPool::popJob(unsigned worker, Job *out, bool *stolen)
{
    unsigned n = cpus_.count();
    unsigned primary = worker % n;
    for (unsigned i = 0; i < n; ++i) {
        unsigned cpu = (primary + i) % n;
        Shard &shard = *shards_[cpu];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.head < shard.jobs.size()) {
            *out = std::move(shard.jobs[shard.head++]);
            *stolen = (i != 0);
            return true;
        }
    }
    return false;
}

void
ExecutorPool::runJob(const Job &job, bool stolen,
                     std::vector<std::atomic<std::uint64_t>> &percpu_ns,
                     std::atomic<std::uint64_t> &steals)
{
    CpuScope scope(cpus_, job.vcpu);
    std::uint64_t ns = job.fn ? job.fn() : 0;
    // Deterministic attribution: the job's virtual cost lands on its
    // *virtual* CPU regardless of which host worker ran it. Sums are
    // commutative, so host execution order can never change them.
    percpu_ns[job.vcpu].fetch_add(ns, std::memory_order_relaxed);
    CpuSlot &slot = cpus_.slot(job.vcpu);
    slot.jobsRun.fetch_add(1, std::memory_order_relaxed);
    if (stolen) {
        slot.jobsStolen.fetch_add(1, std::memory_order_relaxed);
        steals.fetch_add(1, std::memory_order_relaxed);
    }
}

SmpEpoch
ExecutorPool::runAll()
{
    unsigned n = cpus_.count();
    std::vector<std::atomic<std::uint64_t>> percpu_ns(n);
    std::atomic<std::uint64_t> steals{0};
    SmpEpoch epoch;
    epoch.jobs = queued_;

    if (SchedRail::global().engaged()) {
        // Collapse onto the rail's cooperative schedule: one job at a
        // time, in global submit order, on the calling host thread.
        // Yield points inside jobs stay rail decisions; no host
        // worker ever competes with the rail for a guest. Each shard
        // is FIFO with ascending seq, so an n-way merge on the heads
        // recovers submit order. No locks: the rail serializes
        // everything and workers are never spawned on this path.
        for (;;) {
            Shard *next = nullptr;
            for (auto &shard_ptr : shards_) {
                Shard &shard = *shard_ptr;
                if (shard.head >= shard.jobs.size())
                    continue;
                if (!next ||
                    shard.jobs[shard.head].seq <
                        next->jobs[next->head].seq)
                    next = &shard;
            }
            if (!next)
                break;
            Job job = std::move(next->jobs[next->head++]);
            bool stolen = false;
            runJob(job, stolen, percpu_ns, steals);
        }
    } else if (hostThreads_ <= 1 || queued_ <= 1) {
        // Nothing to parallelize: drain on the calling thread, no
        // workers (and none spawned for single-threaded pools).
        Job job;
        bool stolen = false;
        while (popJob(0, &job, &stolen))
            runJob(job, stolen, percpu_ns, steals);
    } else {
        // Hand the batch to the persistent workers: publish the
        // batch's accumulators under the lock, bump the sequence, and
        // wait for every worker to report its drain complete. The
        // workers stay parked across episodes — repeated runAll()
        // calls pay a condition-variable wakeup, not thread spawns.
        startWorkers();
        {
            std::lock_guard<std::mutex> lock(poolMu_);
            batchPercpu_ = &percpu_ns;
            batchSteals_ = &steals;
            doneCount_ = 0;
            ++batchSeq_;
        }
        workCv_.notify_all();
        std::unique_lock<std::mutex> lock(poolMu_);
        doneCv_.wait(lock, [&] {
            return doneCount_ == workers_.size();
        });
        batchPercpu_ = nullptr;
        batchSteals_ = nullptr;
    }

    // Batch consumed; reset the shards for reuse.
    for (auto &shard_ptr : shards_) {
        shard_ptr->jobs.clear();
        shard_ptr->head = 0;
    }
    queued_ = 0;

    epoch.perCpuNs.resize(n);
    for (unsigned cpu = 0; cpu < n; ++cpu) {
        std::uint64_t ns =
            percpu_ns[cpu].load(std::memory_order_relaxed);
        epoch.perCpuNs[cpu] = ns;
        epoch.mergedNs = std::max(epoch.mergedNs, ns);
        // Observability: the slot's live epoch becomes at least the
        // batch's per-CPU total (max-merge keeps it a high-water
        // mark across batches).
        cpus_.slot(cpu).mergeEpoch(ns);
    }
    epoch.steals = steals.load(std::memory_order_relaxed);
    return epoch;
}

SyscallResult
PerCpuDevice::read(Thread &, Bytes &out, std::size_t n)
{
    std::string text = cpus_.dump();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(),
               text.begin() + static_cast<std::ptrdiff_t>(take));
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

} // namespace cider::kernel
