#include "kernel/device.h"

namespace cider::kernel {

void
Device::setProperty(const std::string &key, const std::string &value)
{
    props_[key] = value;
}

std::string
Device::property(const std::string &key) const
{
    auto it = props_.find(key);
    return it == props_.end() ? std::string() : it->second;
}

SyscallResult
Device::ioctl(Thread &, std::uint64_t, void *)
{
    return SyscallResult::failure(lnx::NOTTY);
}

SyscallResult
Device::read(Thread &, Bytes &, std::size_t)
{
    return SyscallResult::failure(lnx::INVAL);
}

SyscallResult
Device::write(Thread &, const Bytes &)
{
    return SyscallResult::failure(lnx::INVAL);
}

SyscallResult
DeviceFile::read(Thread &t, Bytes &out, std::size_t n)
{
    return dev_.read(t, out, n);
}

SyscallResult
DeviceFile::write(Thread &t, const Bytes &data)
{
    return dev_.write(t, data);
}

SyscallResult
DeviceFile::ioctl(Thread &t, std::uint64_t req, void *arg)
{
    return dev_.ioctl(t, req, arg);
}

PollState
DeviceFile::poll() const
{
    PollState st;
    st.readable = true;
    st.writable = true;
    return st;
}

Device &
DeviceRegistry::add(std::unique_ptr<Device> dev)
{
    devices_.push_back(std::move(dev));
    Device &ref = *devices_.back();
    if (hook_)
        hook_(ref);
    return ref;
}

Device *
DeviceRegistry::find(const std::string &name) const
{
    for (const auto &d : devices_)
        if (d->name() == name)
            return d.get();
    return nullptr;
}

std::vector<Device *>
DeviceRegistry::all() const
{
    std::vector<Device *> out;
    out.reserve(devices_.size());
    for (const auto &d : devices_)
        out.push_back(d.get());
    return out;
}

void
DeviceRegistry::setAddHook(AddHook hook)
{
    hook_ = std::move(hook);
    if (hook_)
        for (const auto &d : devices_)
            hook_(*d);
}

} // namespace cider::kernel
