#include "kernel/kernel.h"

#include "kernel/pipe.h"
#include <algorithm>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "kernel/fault_rail.h"
#include "kernel/sched_rail.h"
#include "kernel/trap_context.h"

namespace cider::kernel {

namespace {

/** An open regular file: shared inode plus this open's offset. */
class RegularFile : public OpenFile
{
  public:
    RegularFile(InodePtr inode, const hw::DeviceProfile &profile, int flags)
        : inode_(std::move(inode)), profile_(profile), flags_(flags)
    {}

    std::string kind() const override { return "file"; }

    SyscallResult
    read(Thread &, Bytes &out, std::size_t n) override
    {
        if ((flags_ & oflag::WRONLY) != 0)
            return SyscallResult::failure(lnx::BADF);
        const Bytes &data = inode_->data;
        if (offset_ >= data.size()) {
            out.clear();
            return SyscallResult::success(0);
        }
        std::size_t take = std::min(n, data.size() - offset_);
        charge(take * profile_.storageReadBytePs / 1000);
        out.assign(data.begin() + static_cast<std::ptrdiff_t>(offset_),
                   data.begin() + static_cast<std::ptrdiff_t>(offset_ + take));
        offset_ += take;
        return SyscallResult::success(static_cast<std::int64_t>(take));
    }

    SyscallResult
    write(Thread &, const Bytes &data) override
    {
        if ((flags_ & (oflag::WRONLY | oflag::RDWR)) == 0)
            return SyscallResult::failure(lnx::BADF);
        charge(data.size() * profile_.storageWriteBytePs / 1000);
        Bytes &dst = inode_->data;
        if (offset_ + data.size() > dst.size())
            dst.resize(offset_ + data.size());
        std::copy(data.begin(), data.end(),
                  dst.begin() + static_cast<std::ptrdiff_t>(offset_));
        offset_ += data.size();
        return SyscallResult::success(static_cast<std::int64_t>(data.size()));
    }

    SyscallResult
    seek(std::int64_t offset, int whence) override
    {
        std::int64_t base = 0;
        switch (whence) {
          case seekw::SET:
            base = 0;
            break;
          case seekw::CUR:
            base = static_cast<std::int64_t>(offset_);
            break;
          case seekw::END:
            base = static_cast<std::int64_t>(inode_->data.size());
            break;
          default:
            return SyscallResult::failure(lnx::INVAL);
        }
        std::int64_t target = base + offset;
        if (target < 0)
            return SyscallResult::failure(lnx::INVAL);
        offset_ = static_cast<std::size_t>(target);
        return SyscallResult::success(target);
    }

    PollState
    poll() const override
    {
        return {true, true, false};
    }

  private:
    InodePtr inode_;
    const hw::DeviceProfile &profile_;
    int flags_;
    std::size_t offset_ = 0;
};

/**
 * The unmodified domestic dispatcher: one table, one trap class.
 * Foreign trap classes do not exist on vanilla Android.
 */
class VanillaDispatcher : public TrapDispatcher
{
  public:
    const char *name() const override { return "vanilla-linux"; }

    SyscallResult
    dispatch(TrapContext &ctx) override
    {
        if (ctx.cls != TrapClass::LinuxSyscall) {
            warn("vanilla kernel has no handler for trap class ",
                 trapClassName(ctx.cls));
            return SyscallResult::failure(lnx::NOSYS);
        }
        ctx.table = &ctx.kernel.linuxTable();
        ctx.entry = ctx.table->find(ctx.nr);
        if (!ctx.entry)
            return SyscallResult::failure(lnx::NOSYS);
        return ctx.entry->call(ctx);
    }
};

} // namespace

/** Largest dense span one table may cover (a registration this far
 *  from the rest of the table is a table-construction bug). */
constexpr std::size_t kMaxTableSpan = 65536;

SyscallTable::Entry &
SyscallTable::slotFor(int nr, const char *sys_name)
{
    if (dense_.empty()) {
        base_ = nr;
        dense_.emplace_back();
        return dense_.front();
    }
    if (nr < base_) {
        std::size_t grow = static_cast<std::size_t>(base_ - nr);
        if (dense_.size() + grow > kMaxTableSpan)
            // invariant-only: tables are built from static in-tree
            // registrations, never from foreign user input.
            cider_panic("syscall table ", name_, ": registering ",
                        sys_name, " (nr ", nr,
                        ") would exceed the dense span limit");
        // Entry is move-only (owns its stat), so grow the front by
        // rebuilding rather than a copy-filling insert().
        std::vector<Entry> grown(grow);
        grown.reserve(grow + dense_.size());
        std::move(dense_.begin(), dense_.end(),
                  std::back_inserter(grown));
        dense_ = std::move(grown);
        base_ = nr;
    }
    auto idx = static_cast<std::size_t>(nr - base_);
    if (idx >= dense_.size()) {
        if (idx + 1 > kMaxTableSpan)
            // invariant-only: see above.
            cider_panic("syscall table ", name_, ": registering ",
                        sys_name, " (nr ", nr,
                        ") would exceed the dense span limit");
        dense_.resize(idx + 1);
    }
    return dense_[idx];
}

SyscallTable::Entry &
SyscallTable::set(int nr, const char *sys_name, SyscallFn fn,
                  void *user)
{
    Entry &e = slotFor(nr, sys_name);
    if (!e.empty())
        // invariant-only: duplicate registration is an in-tree bug.
        cider_panic("syscall table ", name_, ": duplicate registration "
                    "of nr ", nr, " (", e.name ? e.name : "?", " vs ",
                    sys_name, ")");
    e.name = sys_name;
    e.fn = fn;
    e.user = user;
    e.stat = std::make_unique<SyscallStat>();
    ++count_;
    return e;
}

SyscallTable::Entry &
SyscallTable::set(int nr, const char *sys_name, SyscallHandler fallback)
{
    Entry &e = slotFor(nr, sys_name);
    if (!e.empty())
        // invariant-only: duplicate registration is an in-tree bug.
        cider_panic("syscall table ", name_, ": duplicate registration "
                    "of nr ", nr, " (", e.name ? e.name : "?", " vs ",
                    sys_name, ")");
    e.name = sys_name;
    e.fallback = std::move(fallback);
    e.stat = std::make_unique<SyscallStat>();
    ++count_;
    return e;
}

const char *
SyscallTable::sysName(int nr) const
{
    const Entry *e = find(nr);
    return e ? e->name : nullptr;
}

std::vector<int>
SyscallTable::registeredNumbers() const
{
    std::vector<int> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < dense_.size(); ++i)
        if (!dense_[i].empty())
            out.push_back(base_ + static_cast<int>(i));
    return out;
}

Kernel::Kernel(const hw::DeviceProfile &profile)
    : profile_(profile), vm_(std::make_unique<VmSubsystem>(&profile)),
      percpu_(profile.cpuCores), vfs_(profile), net_(profile),
      linuxTable_("linux")
{
    dispatcher_ = std::make_unique<VanillaDispatcher>();
    signalHook_ = std::make_unique<SignalDeliveryHook>();
    vfs_.mkdirAll("/dev");
    vfs_.mkdirAll("/tmp");
    vfs_.mkdirAll("/data");
    vfs_.mkdirAll("/system/bin");
    vfs_.mkdirAll("/system/lib");

    trapStats_.attachTable(linuxTable_);
    vfs_.mkdirAll("/proc/cider");
    Device &dump =
        devices_.add(std::make_unique<TrapStatsDevice>(trapStats_));
    vfs_.mknod("/proc/cider/trapstats", &dump);
    Device &faults =
        devices_.add(std::make_unique<FaultRailDevice>(FaultRail::global()));
    vfs_.mknod("/proc/cider/faults", &faults);
    Device &lockorder = devices_.add(
        std::make_unique<SchedRailDevice>(SchedRail::global()));
    vfs_.mknod("/proc/cider/lockorder", &lockorder);
    Device &percpu =
        devices_.add(std::make_unique<PerCpuDevice>(percpu_));
    vfs_.mknod("/proc/cider/percpu", &percpu);
    Device &vmdev = devices_.add(std::make_unique<VmDevice>(*this));
    vfs_.mknod("/proc/cider/vm", &vmdev);
    Device &netdev =
        devices_.add(std::make_unique<NetStackDevice>(net_));
    vfs_.mknod("/proc/cider/net", &netdev);
}

Kernel::~Kernel() = default;

Process &
Kernel::createProcess(const std::string &name, Persona persona,
                      Process *parent)
{
    std::lock_guard<std::mutex> lock(procMu_);
    Pid pid = nextPid_++;
    auto proc = std::make_unique<Process>(pid, name, parent);
    proc->mem().bind(vm_.get());
    proc->createThread(persona);
    Process &ref = *proc;
    processes_[pid] = std::move(proc);
    return ref;
}

void
Kernel::forEachProcess(const std::function<void(Process &)> &fn) const
{
    std::lock_guard<std::mutex> lock(procMu_);
    for (const auto &[pid, proc] : processes_)
        fn(*proc);
}

Process *
Kernel::findProcess(Pid pid) const
{
    std::lock_guard<std::mutex> lock(procMu_);
    auto it = processes_.find(pid);
    return it == processes_.end() ? nullptr : it->second.get();
}

std::size_t
Kernel::processCount() const
{
    std::lock_guard<std::mutex> lock(procMu_);
    return processes_.size();
}

bool
Kernel::reapProcess(Pid pid)
{
    std::lock_guard<std::mutex> lock(procMu_);
    auto it = processes_.find(pid);
    if (it == processes_.end())
        return false;
    Process &proc = *it->second;
    if (proc.state() == Process::State::Running)
        return false;
    if (proc.state() == Process::State::Zombie)
        proc.markReaped();
    // Children keep raw parent pointers; orphans are adopted by
    // "init" (no parent) before the entry is destroyed.
    for (auto &[cpid, child] : processes_)
        if (child->parent() == &proc)
            child->reparent(nullptr);
    processes_.erase(it);
    return true;
}

std::size_t
Kernel::sweepReaped()
{
    std::lock_guard<std::mutex> lock(procMu_);
    std::size_t freed = 0;
    for (auto it = processes_.begin(); it != processes_.end();) {
        if (it->second->state() != Process::State::Reaped) {
            ++it;
            continue;
        }
        Process &proc = *it->second;
        for (auto &[cpid, child] : processes_)
            if (child.get() != &proc && child->parent() == &proc)
                child->reparent(nullptr);
        it = processes_.erase(it);
        ++freed;
    }
    return freed;
}

SyscallResult
Kernel::trap(Thread &t, TrapClass cls, int nr, SyscallArgs args)
{
    CIDER_SCHED_POINT("trap.enter");
    TrapContext ctx{*this,       t,
                    cls,         nr,
                    args,        t.persona(),
                    t.clock().now(), &trapStats_.tracer()};
    charge(profile_.trapEnterExitNs);
    SyscallResult r;
    try {
        r = dispatcher_->dispatch(ctx);
    } catch (const BadSyscallArg &e) {
        // Foreign user space controls the argument vector; a missing
        // or mistyped argument fails the trap, it must not panic the
        // kernel (graceful degradation, not fail-stop).
        warn("bad syscall argument in ", trapClassName(cls), " nr ", nr,
             ": ", e.what());
        trapStats_.recordBadArg();
        r = SyscallResult::failure(lnx::INVAL);
    } catch (...) {
        // exit/execve unwind through the trap; account them before
        // the exception leaves the kernel.
        trapStats_.recordNoReturn(ctx, t.clock().now() - ctx.enterNs);
        throw;
    }
    trapStats_.recordTrap(ctx, r, t.clock().now() - ctx.enterNs);
    // SMP epoch merge: when the calling host thread is bound to a
    // simulated CPU, fold this thread's clock into the CPU's live
    // epoch at the trap boundary (DESIGN.md §11).
    PerCpu::noteTrapBoundary(t);
    checkPendingSignals(t);

    if (oomKillEnabled_) {
        // Memory-pressure kill: a Linux-path trap reports ENOMEM; a
        // Mach trap hands KERN_RESOURCE_SHORTAGE back in the return
        // register (its "success" value carries the kern_return_t).
        bool oom = !r.ok() && r.err == lnx::NOMEM;
        // (6 == KERN_RESOURCE_SHORTAGE; the domestic kernel does not
        // include the foreign headers, only the ABI value.) Only
        // entries tagged returnsKr carry a kern_return_t there —
        // identity traps return plain values (a tid, a port name) in
        // the same register, and those can legitimately be 6.
        if (!oom && cls == TrapClass::XnuMach && ctx.entry &&
            ctx.entry->returnsKr && r.ok() && r.value == 6)
            oom = true;
        // Only the process main thread unwinds via ProcessExit —
        // runProcess catches it there; service threads started with
        // startThread have no such handler on their host thread.
        if (oom && &t == &t.process().mainThread() &&
            t.process().state() == Process::State::Running) {
            int code = 128 + lsig::KILL;
            warn("oom-killing pid ", t.process().pid(), " (",
                 t.process().name(), ") after resource-shortage trap");
            trapStats_.recordOomKill();
            Process &proc = t.process();
            proc.terminate(code, t.clock().now());
            notifyParentExit(proc);
            throw ProcessExit{code};
        }
    }
    return r;
}

void
Kernel::setDispatcher(std::unique_ptr<TrapDispatcher> d)
{
    if (!d)
        // invariant-only: dispatchers are installed by in-tree setup.
        cider_panic("null dispatcher");
    dispatcher_ = std::move(d);
}

void
Kernel::registerLoader(std::unique_ptr<BinaryLoader> loader)
{
    loaders_.push_back(std::move(loader));
}

void
Kernel::setSignalHook(std::unique_ptr<SignalDeliveryHook> hook)
{
    if (!hook)
        // invariant-only: hooks are installed by in-tree setup.
        cider_panic("null signal hook");
    signalHook_ = std::move(hook);
}

SyscallResult
Kernel::sysNull(Thread &)
{
    // lmbench's "null" syscall: dispatch bookkeeping and nothing else.
    charge(profile_.nullSyscallWorkNs);
    return SyscallResult::success();
}

SyscallResult
Kernel::sysOpen(Thread &t, const std::string &path, int flags)
{
    charge(profile_.storageOpenNs);
    Lookup lk = vfs_.lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    InodePtr node = lk.inode;
    if (!node) {
        if (!(flags & oflag::CREAT))
            return SyscallResult::failure(lnx::NOENT);
        SyscallResult r = vfs_.create(path, &node);
        if (!r.ok())
            return r;
    } else if (flags & oflag::TRUNC) {
        node->data.clear();
    }
    std::shared_ptr<OpenFile> file;
    switch (node->type) {
      case InodeType::Regular:
        file = std::make_shared<RegularFile>(node, profile_, flags);
        break;
      case InodeType::DeviceNode:
        if (!node->device)
            return SyscallResult::failure(lnx::NXIO);
        file = std::make_shared<DeviceFile>(*node->device);
        break;
      case InodeType::Directory:
        return SyscallResult::failure(lnx::ISDIR);
    }
    SyscallResult r = t.process().fds().install(std::move(file));
    if (r.ok() && (flags & oflag::CLOEXEC))
        t.process().fds().get(static_cast<Fd>(r.value))->cloexec = true;
    return r;
}

SyscallResult
Kernel::sysClose(Thread &t, Fd fd)
{
    return t.process().fds().close(fd);
}

SyscallResult
Kernel::sysRead(Thread &t, Fd fd, Bytes &out, std::size_t n)
{
    auto desc = t.process().fds().get(fd);
    if (!desc || !desc->file)
        return SyscallResult::failure(lnx::BADF);
    return desc->file->read(t, out, n);
}

SyscallResult
Kernel::sysWrite(Thread &t, Fd fd, const Bytes &data)
{
    auto desc = t.process().fds().get(fd);
    if (!desc || !desc->file)
        return SyscallResult::failure(lnx::BADF);
    SyscallResult r = desc->file->write(t, data);
    if (!r.ok() && r.err == lnx::PIPE) {
        // Linux raises SIGPIPE alongside the EPIPE return.
        SigInfo info;
        info.signo = lsig::PIPE;
        info.senderPid = t.process().pid();
        deliverSignal(t, info);
    }
    return r;
}

SyscallResult
Kernel::sysDup(Thread &t, Fd fd)
{
    return t.process().fds().dup(fd);
}

SyscallResult
Kernel::sysPipe(Thread &t, Fd out_fds[2])
{
    auto [rd, wr] = makePipe(profile_);
    SyscallResult r0 = t.process().fds().install(rd);
    if (!r0.ok())
        return r0;
    SyscallResult r1 = t.process().fds().install(wr);
    if (!r1.ok()) {
        t.process().fds().close(static_cast<Fd>(r0.value));
        return r1;
    }
    out_fds[0] = static_cast<Fd>(r0.value);
    out_fds[1] = static_cast<Fd>(r1.value);
    return SyscallResult::success();
}

SyscallResult
Kernel::sysMkdir(Thread &, const std::string &path)
{
    charge(profile_.storageCreateNs / 2);
    return vfs_.mkdir(path);
}

SyscallResult
Kernel::sysUnlink(Thread &, const std::string &path)
{
    return vfs_.unlink(path);
}

SyscallResult
Kernel::sysRmdir(Thread &, const std::string &path)
{
    return vfs_.rmdir(path);
}

SyscallResult
Kernel::sysGetpid(Thread &t)
{
    return SyscallResult::success(t.process().pid());
}

SyscallResult
Kernel::sysGetppid(Thread &t)
{
    Process *parent = t.process().parent();
    return SyscallResult::success(parent ? parent->pid() : 0);
}

SyscallResult
Kernel::sysLseek(Thread &t, Fd fd, std::int64_t offset, int whence)
{
    auto desc = t.process().fds().get(fd);
    if (!desc || !desc->file)
        return SyscallResult::failure(lnx::BADF);
    return desc->file->seek(offset, whence);
}

SyscallResult
Kernel::sysStat(Thread &t, const std::string &path, StatBuf *out)
{
    (void)t;
    charge(profile_.storageOpenNs / 2);
    Lookup lk = vfs_.lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (out) {
        out->size = lk.inode->data.size();
        out->type = lk.inode->type;
    }
    return SyscallResult::success();
}

SyscallResult
Kernel::sysRename(Thread &, const std::string &from,
                  const std::string &to)
{
    return vfs_.rename(from, to);
}

SyscallResult
Kernel::sysDup2(Thread &t, Fd fd, Fd new_fd)
{
    return t.process().fds().dup2(fd, new_fd);
}

SyscallResult
Kernel::sysIoctl(Thread &t, Fd fd, std::uint64_t req, void *arg)
{
    auto desc = t.process().fds().get(fd);
    if (!desc || !desc->file)
        return SyscallResult::failure(lnx::BADF);
    return desc->file->ioctl(t, req, arg);
}

SyscallResult
Kernel::sysSocket(Thread &t)
{
    auto sock = std::make_shared<UnixSocket>(profile_);
    return t.process().fds().install(std::move(sock));
}

SyscallResult
Kernel::sysSocketpair(Thread &t, Fd out_fds[2])
{
    auto [a, b] = UnixSocket::makePair(profile_);
    SyscallResult r0 = t.process().fds().install(a);
    if (!r0.ok())
        return r0;
    SyscallResult r1 = t.process().fds().install(b);
    if (!r1.ok()) {
        t.process().fds().close(static_cast<Fd>(r0.value));
        return r1;
    }
    out_fds[0] = static_cast<Fd>(r0.value);
    out_fds[1] = static_cast<Fd>(r1.value);
    return SyscallResult::success();
}

namespace {

UnixSocketPtr
socketFromFd(Thread &t, Fd fd)
{
    auto desc = t.process().fds().get(fd);
    if (!desc)
        return nullptr;
    return std::dynamic_pointer_cast<UnixSocket>(desc->file);
}

InetSocketPtr
inetFromFd(Thread &t, Fd fd)
{
    auto desc = t.process().fds().get(fd);
    if (!desc)
        return nullptr;
    return std::dynamic_pointer_cast<InetSocket>(desc->file);
}

} // namespace

SyscallResult
Kernel::sysBind(Thread &t, Fd fd, const std::string &path)
{
    auto sock = socketFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    return unixRegistry_.bind(path, sock);
}

SyscallResult
Kernel::sysListen(Thread &t, Fd fd, int backlog)
{
    if (auto inet = inetFromFd(t, fd))
        return inet->listen(backlog);
    auto sock = socketFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    return sock->listen(backlog);
}

SyscallResult
Kernel::sysAccept(Thread &t, Fd fd)
{
    if (auto inet = inetFromFd(t, fd)) {
        InetSocketPtr peer;
        SyscallResult r = inet->accept(peer);
        if (!r.ok())
            return r;
        return t.process().fds().install(std::move(peer));
    }
    auto sock = socketFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    UnixSocketPtr peer;
    SyscallResult r = sock->accept(peer);
    if (!r.ok())
        return r;
    return t.process().fds().install(std::move(peer));
}

SyscallResult
Kernel::sysConnect(Thread &t, Fd fd, const std::string &path)
{
    auto sock = socketFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    return UnixSocket::connect(sock, unixRegistry_.find(path));
}

SyscallResult
Kernel::sysNetSocket(Thread &t, int type)
{
    NetProto proto;
    switch (type) {
    case 1: proto = NetProto::Stream; break;
    case 2: proto = NetProto::Dgram; break;
    default: return SyscallResult::failure(lnx::INVAL);
    }
    return t.process().fds().install(net_.socket(proto));
}

SyscallResult
Kernel::sysNetBind(Thread &t, Fd fd, NetAddr addr, NetPort port)
{
    auto sock = inetFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    return sock->bind(addr, port);
}

SyscallResult
Kernel::sysNetConnect(Thread &t, Fd fd, NetAddr addr, NetPort port)
{
    auto sock = inetFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    return sock->connectTo(addr, port);
}

SyscallResult
Kernel::sysNetSendTo(Thread &t, Fd fd, NetAddr addr, NetPort port,
                     const Bytes &data)
{
    auto sock = inetFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    return sock->sendTo(t, addr, port, data);
}

SyscallResult
Kernel::sysNetRecvFrom(Thread &t, Fd fd, Bytes &out, std::size_t n,
                       NetAddr *src_addr, NetPort *src_port)
{
    auto sock = inetFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    return sock->recvFrom(t, out, n, src_addr, src_port);
}

SyscallResult
Kernel::sysNetShutdown(Thread &t, Fd fd, int how)
{
    auto sock = inetFromFd(t, fd);
    if (!sock)
        return SyscallResult::failure(lnx::NOTSOCK);
    if (how < 0 || how > 2)
        return SyscallResult::failure(lnx::INVAL);
    return sock->shutdownHow(how);
}

SyscallResult
Kernel::sysSigaction(Thread &t, int linux_signo, const SignalAction &action)
{
    if (linux_signo <= 0 || linux_signo >= lsig::COUNT)
        return SyscallResult::failure(lnx::INVAL);
    if (linux_signo == lsig::KILL || linux_signo == lsig::STOP)
        return SyscallResult::failure(lnx::INVAL);
    t.process().signals().action(linux_signo) = action;
    return SyscallResult::success();
}

SyscallResult
Kernel::sysKill(Thread &t, Pid pid, int linux_signo)
{
    Process *target = findProcess(pid);
    if (!target || target->state() != Process::State::Running)
        return SyscallResult::failure(lnx::SRCH);
    if (linux_signo == 0)
        return SyscallResult::success(); // existence probe
    if (linux_signo < 0 || linux_signo >= lsig::COUNT)
        return SyscallResult::failure(lnx::INVAL);
    SigInfo info;
    info.signo = linux_signo;
    info.senderPid = t.process().pid();
    deliverSignal(target->mainThread(), info);
    return SyscallResult::success();
}

void
Kernel::deliverSignal(Thread &target, SigInfo info)
{
    // Fault site: a dropped signal models delivery failing under
    // resource exhaustion (e.g. no room for the signal frame).
    if (CIDER_FAULT_POINT("signal.deliver"))
        return;
    charge(profile_.signalDeliverNs);
    // Persona-aware preparation: numbering, frame size, translation
    // cost for foreign receivers (paper section 4.1).
    int table_signo = signalHook_->prepare(target, info);
    info.tableSigno = table_signo;

    const SignalAction &act = target.process().signals().action(table_signo);
    switch (act.kind) {
      case SignalAction::Kind::Ignore:
        return;
      case SignalAction::Kind::Handler:
        if (Thread::current() == &target) {
            // Synchronous delivery: run the handler now, charging the
            // frame materialisation.
            charge(info.frameSize / 16); // frame copy at ~16 B/ns
            act.fn(info.signo, info);
        } else {
            target.queueSignal(info);
        }
        return;
      case SignalAction::Kind::Default:
        if (SignalState::defaultTerminates(table_signo)) {
            Process &proc = target.process();
            // Same teardown contract as sysExit: modules drop
            // image-derived state, then the parent learns of the death
            // — a SIGKILL storm must leave reapable zombies, not
            // silent ones.
            notifyUnload(proc);
            proc.terminate(128 + table_signo, target.clock().now());
            notifyParentExit(proc);
        }
        return;
    }
}

void
Kernel::checkPendingSignals(Thread &t)
{
    SigInfo info;
    while (t.takePendingSignal(&info)) {
        // signo was already translated for this receiver at queue
        // time; tableSigno remembers the Linux number for lookup.
        charge(info.frameSize / 16);
        const SignalAction &act =
            t.process().signals().action(info.tableSigno);
        if (act.kind == SignalAction::Kind::Handler)
            act.fn(info.signo, info);
    }
}

SyscallResult
Kernel::sysFork(Thread &t, EntryFn child_body, bool run_now)
{
    Process &parent = t.process();

    // Base fork work (task struct, fd table, mm setup); the address
    // space itself is duplicated by VmMap::forkFrom, which charges the
    // write-protect sweep over the private entries — dominated by
    // dyld's ~90 MB of dylib mappings when an iOS binary forks
    // (Figure 5, fork+exit). COW by default; the eager lever restores
    // the full content copy as the A/B baseline.
    charge(profile_.cyclesToNs(260000));

    Process &child =
        createProcess(parent.name() + ":child", t.persona(), &parent);
    child.mem().forkFrom(parent.mem(), eagerForkCopy_);
    child.fds() = parent.fds().cloneForFork();
    child.signals() = parent.signals();
    child.image() = parent.image();
    child.image().entry = child_body;

    for (const auto &hook : forkHooks_)
        hook(parent, child);

    // The child's virtual clock starts where the parent's is now; the
    // parent later synchronises via waitpid, giving sequential-run
    // semantics identical wall-clock attribution to the real test.
    Thread &child_main = child.mainThread();
    child_main.clock().charge(t.clock().now());

    if (run_now && child_body)
        runProcess(child);

    return SyscallResult::success(child.pid());
}

SyscallResult
Kernel::sysExecve(Thread &t, const std::string &path,
                  const std::vector<std::string> &argv)
{
    SyscallResult r = execLoad(t, path, argv);
    if (!r.ok())
        return r;

    // execve does not return on success: run the fresh image and
    // unwind this process.
    Process &proc = t.process();
    int rc = proc.image().entry ? proc.image().entry(t) : 0;
    sysExit(t, rc);
}

SyscallResult
Kernel::execLoad(Thread &t, const std::string &path,
                 const std::vector<std::string> &argv)
{
    Bytes blob;
    SyscallResult r = vfs_.readFile(path, blob);
    if (!r.ok())
        return r;

    // Base exec work: tearing down the old image, setting up the
    // fresh one, argv/stack copy.
    charge(profile_.cyclesToNs(390000));

    BinaryLoader *chosen = nullptr;
    for (const auto &loader : loaders_) {
        if (loader->probe(blob)) {
            chosen = loader.get();
            break;
        }
    }
    if (!chosen)
        return SyscallResult::failure(lnx::NOEXEC);

    Process &proc = t.process();
    // The old image is gone from this point on; let modules drop
    // anything derived from it (translation caches and the like).
    notifyUnload(proc);
    proc.fds().closeCloexec();
    proc.signals().reset();
    proc.mem().reset();
    proc.ext().clear();
    t.ext().clear();

    r = chosen->load(*this, t, blob, path, argv);
    if (!r.ok())
        return r;

    // Post-load hooks: modules re-establish per-process state for the
    // fresh image (e.g. the Mach task bootstrap port).
    for (const auto &hook : execHooks_)
        hook(proc);

    return SyscallResult::success();
}

void
Kernel::notifyUnload(Process &proc)
{
    for (const auto &hook : unloadHooks_)
        hook(proc);
}

void
Kernel::notifyParentExit(Process &proc)
{
    Process *parent = proc.parent();
    if (!parent || parent->state() != Process::State::Running)
        return;
    SigInfo info;
    info.signo = lsig::CHLD;
    info.senderPid = proc.pid();
    deliverSignal(parent->mainThread(), info);
}

void
Kernel::sysExit(Thread &t, int code)
{
    Process &proc = t.process();
    notifyUnload(proc);
    proc.terminate(code, t.clock().now());
    notifyParentExit(proc);
    throw ProcessExit{code};
}

SyscallResult
Kernel::sysWaitpid(Thread &t, Pid pid, int *status)
{
    Process *child = findProcess(pid);
    if (!child || child->parent() != &t.process())
        return SyscallResult::failure(lnx::CHILD);
    child->waitUntilZombie();
    if (status)
        *status = child->exitCode();
    // Merge virtual time: the parent observed the child's lifetime.
    if (child->exitVirtualTime() > t.clock().now())
        t.clock().charge(child->exitVirtualTime() - t.clock().now());
    child->markReaped();
    return SyscallResult::success(pid);
}

int
Kernel::runProcess(Process &proc)
{
    Thread &main = proc.mainThread();
    ThreadScope scope(main);
    int rc = 0;
    try {
        rc = proc.image().entry ? proc.image().entry(main) : 0;
    } catch (const ProcessExit &e) {
        rc = e.code;
    }
    // sysExit already unloaded on the ProcessExit path (the process
    // is a zombie by now); entry functions that plain-return still
    // owe the image teardown.
    if (proc.state() == Process::State::Running)
        notifyUnload(proc);
    proc.terminate(rc, main.clock().now());
    return rc;
}

std::thread
Kernel::startThread(Process &proc, Persona persona,
                    std::function<void(Thread &)> fn)
{
    Thread &thread = proc.createThread(persona);
    return std::thread([&thread, fn = std::move(fn)] {
        ThreadScope scope(thread);
        fn(thread);
    });
}

} // namespace cider::kernel
