#include "kernel/net.h"

#include <algorithm>
#include <sstream>

#include "base/cost_clock.h"
#include "hw/device_profile.h"
#include "kernel/sched_rail.h"
#include "kernel/thread.h"

namespace cider::kernel {

namespace {

const char *stateName(InetSocket::State s)
{
    switch (s) {
    case InetSocket::State::Closed: return "closed";
    case InetSocket::State::Bound: return "bound";
    case InetSocket::State::Listening: return "listen";
    case InetSocket::State::SynSent: return "syn-sent";
    case InetSocket::State::SynRcvd: return "syn-rcvd";
    case InetSocket::State::Established: return "established";
    case InetSocket::State::Reset: return "reset";
    case InetSocket::State::Dead: return "dead";
    }
    return "?";
}

} // namespace

// ---------------------------------------------------------------------------
// InetSocket
// ---------------------------------------------------------------------------

InetSocket::InetSocket(NetStack &stack, NetProto proto)
    : stack_(stack), proto_(proto)
{
    stack_.socketsLive_.fetch_add(1);
    stack_.socketsCreated_.fetch_add(1);
}

InetSocket::~InetSocket()
{
    stack_.socketsLive_.fetch_sub(1);
    stack_.retransmits_.fetch_add(retransmits_);
    stack_.dupSegments_.fetch_add(dupSegments_);
}

InetSocket::State InetSocket::state() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return state_;
}

void InetSocket::setRcvCap(std::size_t cap)
{
    std::lock_guard<std::mutex> lk(mu_);
    rcvCap_ = std::max<std::size_t>(cap, kSegSize);
}

NetFrame InetSocket::frameLocked(std::uint8_t flags, std::uint32_t seq,
                                 Bytes payload) const
{
    NetFrame f;
    f.proto = proto_;
    f.flags = flags;
    f.srcAddr = localAddr_;
    f.dstAddr = remoteAddr_;
    f.srcPort = localPort_;
    f.dstPort = remotePort_;
    f.seq = seq;
    f.ack = rcvNext_;
    f.window = advertisedWindowLocked();
    f.payload = std::move(payload);
    return f;
}

std::uint32_t InetSocket::advertisedWindowLocked() const
{
    std::size_t used = rcvBuf_.size() + oooBytes_;
    return used >= rcvCap_
               ? 0
               : static_cast<std::uint32_t>(rcvCap_ - used);
}

void InetSocket::sendFrames(const std::vector<NetFrame> &frames)
{
    for (const NetFrame &f : frames) {
        charge(stack_.profile().netSegmentNs);
        stack_.transmitFrame(f);
    }
}

SyscallResult InetSocket::bind(NetAddr addr, NetPort port)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (state_ != State::Closed)
            return SyscallResult::failure(lnx::INVAL);
    }
    return stack_.bindSocket(shared_from_this(), addr, port, proto_,
                             false);
}

SyscallResult InetSocket::listen(int backlog)
{
    if (proto_ != NetProto::Stream)
        return SyscallResult::failure(lnx::OPNOTSUPP);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (state_ == State::Listening) {
            backlog_ = std::max(backlog, 1);
            return SyscallResult::success(0);
        }
        if (state_ != State::Bound)
            return SyscallResult::failure(lnx::INVAL);
    }
    SyscallResult r = stack_.bindSocket(shared_from_this(), localAddr_,
                                        localPort_, proto_, true);
    if (!r.ok())
        return r;
    std::lock_guard<std::mutex> lk(mu_);
    state_ = State::Listening;
    backlog_ = std::max(backlog, 1);
    return SyscallResult::success(0);
}

SyscallResult InetSocket::accept(InetSocketPtr &out)
{
    CIDER_SCHED_POINT("net.accept");
    std::unique_lock<std::mutex> lk(mu_);
    if (state_ != State::Listening)
        return SyscallResult::failure(lnx::INVAL);
    while (pendingAccept_.empty()) {
        if (nonblock_.load())
            return SyscallResult::failure(lnx::AGAIN);
        cv_.wait(lk);
        if (state_ != State::Listening)
            return SyscallResult::failure(lnx::INVAL);
    }
    out = pendingAccept_.front();
    pendingAccept_.pop_front();
    return SyscallResult::success(0);
}

SyscallResult InetSocket::connectTo(NetAddr addr, NetPort port)
{
    CIDER_SCHED_POINT("net.connect");
    if (proto_ == NetProto::Dgram) {
        // Datagram "connect" just pins the default destination.
        std::lock_guard<std::mutex> lk(mu_);
        remoteAddr_ = addr;
        remotePort_ = port;
        return SyscallResult::success(0);
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (state_ == State::Established || state_ == State::SynSent)
            return SyscallResult::failure(lnx::ALREADY);
        if (state_ != State::Closed && state_ != State::Bound)
            return SyscallResult::failure(lnx::INVAL);
    }
    if (localPort_ == 0) {
        SyscallResult r = stack_.bindSocket(
            shared_from_this(), 0, 0, proto_, false);
        if (!r.ok())
            return r;
    }
    NetFrame syn;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (localAddr_ == 0)
            localAddr_ = stack_.defaultAddr();
        if (localAddr_ == 0)
            return SyscallResult::failure(lnx::NETUNREACH);
        remoteAddr_ = addr;
        remotePort_ = port;
        state_ = State::SynSent;
        syn = frameLocked(netflag::SYN, 0);
        syn.window = advertisedWindowLocked();
    }
    stack_.registerConn(shared_from_this());

    // Loopback delivery is synchronous, so each SYN either resolves
    // the handshake before transmitFrame returns or was eaten by a
    // fault site / full backlog; retry a bounded number of times.
    for (int attempt = 0; attempt < kConnectAttempts; ++attempt) {
        charge(stack_.profile().netSegmentNs << attempt); // backoff
        stack_.transmitFrame(syn);
        std::unique_lock<std::mutex> lk(mu_);
        if (state_ == State::Established)
            return SyscallResult::success(0);
        if (state_ == State::Reset || state_ == State::Dead) {
            state_ = State::Dead;
            lk.unlock();
            stack_.eraseConn(*this);
            return SyscallResult::failure(lnx::CONNREFUSED);
        }
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        state_ = State::Dead;
    }
    stack_.eraseConn(*this);
    return SyscallResult::failure(lnx::TIMEDOUT);
}

SyscallResult InetSocket::read(Thread &t, Bytes &out, std::size_t n)
{
    (void)t;
    CIDER_SCHED_POINT("net.recv");
    if (proto_ == NetProto::Dgram)
        return recvFrom(t, out, n, nullptr, nullptr);

    bool windowWasClosed = false;
    {
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            if (!rcvBuf_.empty())
                break;
            if (state_ == State::Reset)
                return SyscallResult::failure(lnx::CONNRESET);
            if (rdShut_ || eofReadyLocked())
                return SyscallResult::success(0);
            if (state_ != State::Established &&
                state_ != State::SynRcvd)
                return SyscallResult::failure(lnx::NOTCONN);
            if (nonblock_.load())
                return SyscallResult::failure(lnx::AGAIN);
            cv_.wait(lk);
        }
        windowWasClosed = advertisedWindowLocked() == 0;
        std::size_t take = std::min(n, rcvBuf_.size());
        out.assign(rcvBuf_.begin(),
                   rcvBuf_.begin() + static_cast<long>(take));
        rcvBuf_.erase(rcvBuf_.begin(),
                      rcvBuf_.begin() + static_cast<long>(take));
    }
    charge(stack_.profile().netSegmentNs / 2);
    if (windowWasClosed) {
        // The peer saw window 0 and stalled; tell it we have room.
        std::vector<NetFrame> upd;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (state_ == State::Established)
                upd.push_back(frameLocked(netflag::ACK, sndNext_));
        }
        sendFrames(upd);
    }
    return SyscallResult::success(
        static_cast<std::int64_t>(out.size()));
}

SyscallResult InetSocket::write(Thread &t, const Bytes &data)
{
    (void)t;
    CIDER_SCHED_POINT("net.send");
    if (proto_ == NetProto::Dgram)
        return sendTo(t, remoteAddr_, remotePort_, data);
    if (data.empty())
        return SyscallResult::success(0);

    std::vector<NetFrame> frames;
    std::size_t taken = 0;
    {
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            if (state_ == State::Reset)
                return SyscallResult::failure(lnx::CONNRESET);
            if (finPending_ || finSent_ || state_ == State::Dead)
                return SyscallResult::failure(lnx::PIPE);
            if (state_ != State::Established)
                return SyscallResult::failure(lnx::NOTCONN);
            if (sndBuf_.size() < kSndCap)
                break;
            if (nonblock_.load())
                return SyscallResult::failure(lnx::AGAIN);
            cv_.wait(lk);
        }
        taken = std::min(data.size(), kSndCap - sndBuf_.size());
        sndBuf_.insert(sndBuf_.end(), data.begin(),
                       data.begin() + static_cast<long>(taken));
        buildSegmentsLocked(frames);
    }
    sendFrames(frames);
    return SyscallResult::success(static_cast<std::int64_t>(taken));
}

void InetSocket::buildSegmentsLocked(std::vector<NetFrame> &out)
{
    // Respect the peer's advertised window: never put more than
    // peerWindow_ bytes in flight past sndUna_.
    for (;;) {
        std::uint32_t inflight = sndNext_ - sndUna_;
        std::uint32_t avail = static_cast<std::uint32_t>(
            sndUna_ + sndBuf_.size() - sndNext_);
        if (avail == 0 || inflight >= peerWindow_)
            break;
        std::uint32_t len = std::min<std::uint32_t>(
            {static_cast<std::uint32_t>(kSegSize), avail,
             peerWindow_ - inflight});
        std::size_t off = sndNext_ - sndUna_;
        Bytes payload(sndBuf_.begin() + static_cast<long>(off),
                      sndBuf_.begin() +
                          static_cast<long>(off + len));
        out.push_back(
            frameLocked(netflag::ACK, sndNext_, std::move(payload)));
        sndNext_ += len;
    }
    if (finPending_ && !finSent_ &&
        sndNext_ == sndUna_ + sndBuf_.size()) {
        finSeq_ = sndNext_;
        finSent_ = true;
        sndNext_ += 1; // FIN consumes one sequence number
        out.push_back(frameLocked(netflag::FIN | netflag::ACK,
                                  finSeq_));
    }
}

void InetSocket::retransmitLocked(std::vector<NetFrame> &out)
{
    if (sndUna_ == sndNext_)
        return;
    std::uint32_t dataEnd =
        sndUna_ + static_cast<std::uint32_t>(sndBuf_.size());
    if (sndUna_ < dataEnd) {
        std::uint32_t len = std::min<std::uint32_t>(
            static_cast<std::uint32_t>(kSegSize), dataEnd - sndUna_);
        Bytes payload(sndBuf_.begin(),
                      sndBuf_.begin() + static_cast<long>(len));
        out.push_back(
            frameLocked(netflag::ACK, sndUna_, std::move(payload)));
    } else if (finSent_ && !finAcked_) {
        out.push_back(frameLocked(netflag::FIN | netflag::ACK,
                                  finSeq_));
    }
    ++retransmits_;
}

void InetSocket::pump()
{
    CIDER_SCHED_POINT("net.pump");
    std::vector<NetFrame> frames;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (proto_ != NetProto::Stream)
            return;
        if (state_ == State::SynSent) {
            frames.push_back(frameLocked(netflag::SYN, 0));
        } else if (sndUna_ != sndNext_) {
            if (sndUna_ == lastPumpUna_) {
                if (++stalePumps_ >= kStalePumpsBeforeRto) {
                    retransmitLocked(frames);
                    stalePumps_ = 0;
                }
            } else {
                stalePumps_ = 0;
            }
            lastPumpUna_ = sndUna_;
        }
        // A window that re-opened between writes lets queued bytes go.
        buildSegmentsLocked(frames);
    }
    sendFrames(frames);
}

SyscallResult InetSocket::shutdownHow(int how)
{
    CIDER_SCHED_POINT("net.close");
    std::vector<NetFrame> frames;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (proto_ != NetProto::Stream)
            return SyscallResult::failure(lnx::OPNOTSUPP);
        if (state_ != State::Established && state_ != State::SynRcvd &&
            state_ != State::Reset)
            return SyscallResult::failure(lnx::NOTCONN);
        if (how == 0 || how == 2)
            rdShut_ = true;
        if ((how == 1 || how == 2) && !finPending_ &&
            state_ == State::Established) {
            finPending_ = true;
            buildSegmentsLocked(frames);
        }
        cv_.notify_all();
    }
    sendFrames(frames);
    return SyscallResult::success(0);
}

void InetSocket::abort()
{
    CIDER_SCHED_POINT("net.close");
    NetFrame rst;
    bool send = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (state_ == State::Established || state_ == State::SynRcvd ||
            state_ == State::SynSent) {
            rst = frameLocked(netflag::RST, sndNext_);
            send = true;
        }
        state_ = State::Dead;
        cv_.notify_all();
    }
    if (send) {
        charge(stack_.profile().netSegmentNs);
        stack_.transmitFrame(rst);
        stack_.resetsSent_.fetch_add(1);
    }
    stack_.eraseConn(*this);
}

void InetSocket::closed()
{
    State st;
    std::vector<InetSocketPtr> orphans;
    {
        std::lock_guard<std::mutex> lk(mu_);
        st = state_;
        if (state_ == State::Listening) {
            orphans.assign(pendingAccept_.begin(),
                           pendingAccept_.end());
            pendingAccept_.clear();
            state_ = State::Dead;
        }
        cv_.notify_all();
    }
    switch (st) {
    case State::Listening:
        stack_.unbindListener(*this);
        // Connections nobody will ever accept get aborted, as a real
        // listener teardown RSTs its accept queue.
        for (const InetSocketPtr &child : orphans)
            child->abort();
        break;
    case State::Established:
    case State::SynRcvd: {
        bool dirty;
        {
            std::lock_guard<std::mutex> lk(mu_);
            dirty = !rcvBuf_.empty() || !ooo_.empty();
        }
        if (dirty) {
            abort(); // close with unread data => RST, like TCP
        } else {
            shutdownHow(1);
            std::lock_guard<std::mutex> lk(mu_);
            state_ = State::Dead;
        }
        // TCP-lite has no TIME_WAIT: the connection entry dies with
        // the descriptor. A FIN lost after this point stays lost
        // (the peer's pump sees RST-on-missing-conn instead).
        stack_.eraseConn(*this);
        break;
    }
    case State::SynSent:
    case State::Reset:
        stack_.eraseConn(*this);
        break;
    default:
        break;
    }
    if (proto_ == NetProto::Dgram && localPort_ != 0)
        stack_.unbindDgram(*this);
    {
        std::lock_guard<std::mutex> lk(mu_);
        state_ = State::Dead;
    }
}

PollState InetSocket::poll() const
{
    std::lock_guard<std::mutex> lk(mu_);
    PollState ps;
    switch (proto_) {
    case NetProto::Dgram:
        ps.readable = !dgrams_.empty();
        ps.writable = true;
        break;
    case NetProto::Stream:
        if (state_ == State::Listening) {
            ps.readable = !pendingAccept_.empty();
        } else {
            ps.readable = !rcvBuf_.empty() || eofReadyLocked() ||
                          rdShut_ || state_ == State::Reset;
            ps.writable = state_ == State::Established &&
                          !finPending_ && sndBuf_.size() < kSndCap;
            ps.error = state_ == State::Reset;
        }
        break;
    }
    return ps;
}

bool InetSocket::eofReadyLocked() const
{
    return peerFin_ && rcvBuf_.empty();
}

SyscallResult InetSocket::ioctl(Thread &t, std::uint64_t req, void *arg)
{
    (void)t;
    switch (req) {
    case netio::PUMP:
        pump();
        return SyscallResult::success(0);
    case netio::FIONBIO:
        if (arg == nullptr)
            return SyscallResult::failure(lnx::INVAL);
        setNonblocking(*static_cast<int *>(arg) != 0);
        return SyscallResult::success(0);
    case netio::RCVBUF:
        if (arg == nullptr)
            return SyscallResult::failure(lnx::INVAL);
        setRcvCap(*static_cast<std::size_t *>(arg));
        return SyscallResult::success(0);
    default:
        return SyscallResult::failure(lnx::INVAL);
    }
}

SyscallResult InetSocket::sendTo(Thread &t, NetAddr addr, NetPort port,
                                 const Bytes &data)
{
    (void)t;
    CIDER_SCHED_POINT("net.send");
    if (proto_ != NetProto::Dgram)
        return SyscallResult::failure(lnx::OPNOTSUPP);
    if (addr == 0 || port == 0)
        return SyscallResult::failure(lnx::ADDRNOTAVAIL);
    if (localPort_ == 0) {
        SyscallResult r = stack_.bindSocket(
            shared_from_this(), 0, 0, proto_, false);
        if (!r.ok())
            return r;
    }
    NetFrame f;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (localAddr_ == 0)
            localAddr_ = stack_.defaultAddr();
        f = frameLocked(0, 0, data);
        f.proto = NetProto::Dgram;
        f.dstAddr = addr;
        f.dstPort = port;
    }
    charge(stack_.profile().netSegmentNs);
    stack_.transmitFrame(f);
    // UDP is fire-and-forget: an unreachable port counts a drop at
    // the stack but the send itself succeeds.
    return SyscallResult::success(
        static_cast<std::int64_t>(data.size()));
}

SyscallResult InetSocket::recvFrom(Thread &t, Bytes &out, std::size_t n,
                                   NetAddr *src_addr, NetPort *src_port)
{
    (void)t;
    CIDER_SCHED_POINT("net.recv");
    if (proto_ != NetProto::Dgram)
        return SyscallResult::failure(lnx::OPNOTSUPP);
    std::unique_lock<std::mutex> lk(mu_);
    while (dgrams_.empty()) {
        if (state_ == State::Dead)
            return SyscallResult::failure(lnx::BADF);
        if (nonblock_.load())
            return SyscallResult::failure(lnx::AGAIN);
        cv_.wait(lk);
    }
    Dgram d = std::move(dgrams_.front());
    dgrams_.pop_front();
    lk.unlock();
    charge(stack_.profile().netSegmentNs / 2);
    std::size_t take = std::min(n, d.data.size());
    out.assign(d.data.begin(),
               d.data.begin() + static_cast<long>(take));
    if (src_addr != nullptr)
        *src_addr = d.srcAddr;
    if (src_port != nullptr)
        *src_port = d.srcPort;
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

// --- frame input ----------------------------------------------------------

InetSocket::InputVerdict
InetSocket::streamInput(const NetFrame &frame,
                        std::vector<NetFrame> &replies)
{
    CIDER_SCHED_POINT("net.input");
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ == State::Dead)
        return InputVerdict::ConnDead;

    if (frame.flags & netflag::RST) {
        state_ = State::Reset;
        cv_.notify_all();
        return InputVerdict::ConnDead;
    }

    bool promoted = false;
    if (frame.flags & netflag::SYN) {
        if (frame.flags & netflag::ACK) {
            // SYNACK for our active open.
            if (state_ == State::SynSent) {
                state_ = State::Established;
                peerWindow_ = frame.window;
                cv_.notify_all();
            }
            replies.push_back(frameLocked(netflag::ACK, sndNext_));
            return InputVerdict::None;
        }
        // Duplicate SYN reaching a passive child: re-offer SYNACK.
        if (state_ == State::SynRcvd || state_ == State::Established)
            replies.push_back(
                frameLocked(netflag::SYN | netflag::ACK, 0));
        return InputVerdict::None;
    }

    // Any non-SYN frame from the peer proves the handshake's final
    // ACK reached the wire even if the ACK frame itself was dropped.
    if (state_ == State::SynRcvd) {
        state_ = State::Established;
        promoted = true;
        cv_.notify_all();
    }

    if (frame.flags & netflag::ACK)
        absorbAckLocked(frame, replies);
    if (!frame.payload.empty())
        absorbDataLocked(frame, replies);
    if (frame.flags & netflag::FIN) {
        peerFinSeen_ = true;
        peerFinSeq_ = frame.seq;
    }
    if (peerFinSeen_ && !peerFin_ && rcvNext_ == peerFinSeq_ &&
        ooo_.empty()) {
        rcvNext_ = peerFinSeq_ + 1; // consume the FIN's sequence slot
        peerFin_ = true;
        cv_.notify_all();
    }
    if (frame.flags & netflag::FIN)
        replies.push_back(frameLocked(netflag::ACK, sndNext_));

    return promoted ? InputVerdict::Promoted : InputVerdict::None;
}

void InetSocket::absorbAckLocked(const NetFrame &frame,
                                 std::vector<NetFrame> &replies)
{
    bool windowWasZero = peerWindow_ == 0;
    peerWindow_ = frame.window;
    std::uint32_t ack = frame.ack;
    std::uint32_t dataEnd =
        sndUna_ + static_cast<std::uint32_t>(sndBuf_.size()) +
        (finSent_ ? 1 : 0);
    if (ack > sndUna_ && ack <= dataEnd) {
        std::uint32_t bytes = std::min(
            ack - sndUna_,
            static_cast<std::uint32_t>(sndBuf_.size()));
        sndBuf_.erase(sndBuf_.begin(),
                      sndBuf_.begin() + static_cast<long>(bytes));
        sndUna_ = ack;
        if (finSent_ && ack == finSeq_ + 1)
            finAcked_ = true;
        dupAcks_ = 0;
        stalePumps_ = 0;
        cv_.notify_all(); // writers waiting for buffer space
    } else if (ack == sndUna_ && sndNext_ != sndUna_) {
        // Fires exactly once per stall (== 2, not >=), so the reply
        // recursion stays bounded.
        if (++dupAcks_ == 2)
            retransmitLocked(replies);
    }
    lastAckSeen_ = ack;
    // A window-reopen update (the peer drained its receive buffer)
    // releases queued bytes right away; recursion stays bounded
    // because steady-state ack advances never emit data from here.
    if (windowWasZero && peerWindow_ > 0)
        buildSegmentsLocked(replies);
}

void InetSocket::absorbDataLocked(const NetFrame &frame,
                                  std::vector<NetFrame> &replies)
{
    std::uint32_t seq = frame.seq;
    std::uint32_t len =
        static_cast<std::uint32_t>(frame.payload.size());

    if (seq + len <= rcvNext_) {
        ++dupSegments_; // pure retransmit duplicate
    } else if (seq <= rcvNext_) {
        // In-order (possibly partially duplicate) segment.
        std::uint32_t skip = rcvNext_ - seq;
        if (!rdShut_)
            rcvBuf_.insert(rcvBuf_.end(),
                           frame.payload.begin() +
                               static_cast<long>(skip),
                           frame.payload.end());
        rcvNext_ = seq + len;
        // Drain any out-of-order segments this unblocked.
        auto it = ooo_.begin();
        while (it != ooo_.end() && it->first <= rcvNext_) {
            const Bytes &seg = it->second;
            std::uint32_t send = it->first;
            std::uint32_t slen =
                static_cast<std::uint32_t>(seg.size());
            if (send + slen > rcvNext_) {
                std::uint32_t sk = rcvNext_ - send;
                if (!rdShut_)
                    rcvBuf_.insert(rcvBuf_.end(),
                                   seg.begin() +
                                       static_cast<long>(sk),
                                   seg.end());
                rcvNext_ = send + slen;
            }
            oooBytes_ -= seg.size();
            it = ooo_.erase(it);
        }
        cv_.notify_all();
    } else if (ooo_.size() < kOooCap &&
               len + oooBytes_ + rcvBuf_.size() <= rcvCap_) {
        // Future segment: park it for reassembly.
        auto [it, fresh] = ooo_.emplace(seq, frame.payload);
        if (fresh) {
            oooBytes_ += len;
            stack_.oooQueued_.fetch_add(1);
        } else {
            ++dupSegments_;
        }
    }
    // Cumulative ack (also the dup-ack that triggers fast retransmit
    // on the sender when a gap persists).
    replies.push_back(frameLocked(netflag::ACK, sndNext_));
}

void InetSocket::dgramInput(const NetFrame &frame)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (dgrams_.size() >= kDgramQueueCap) {
        stack_.dgramDrops_.fetch_add(1);
        return;
    }
    dgrams_.push_back(
        Dgram{frame.srcAddr, frame.srcPort, frame.payload});
    cv_.notify_all();
}

InetSocketPtr InetSocket::handleSyn(const NetFrame &frame,
                                    bool &refused)
{
    std::lock_guard<std::mutex> lk(mu_);
    refused = false;
    if (state_ != State::Listening ||
        static_cast<int>(pendingAccept_.size()) + synRcvdCount_ >=
            backlog_) {
        refused = true;
        return nullptr;
    }
    auto child =
        std::make_shared<InetSocket>(stack_, NetProto::Stream);
    child->localAddr_ = frame.dstAddr;
    child->localPort_ = frame.dstPort;
    child->remoteAddr_ = frame.srcAddr;
    child->remotePort_ = frame.srcPort;
    child->state_ = State::SynRcvd;
    child->peerWindow_ = frame.window;
    child->listener_ = weak_from_this();
    child->countedInSynBacklog_ = true;
    ++synRcvdCount_;
    return child;
}

bool InetSocket::consumeSynBacklogSlot()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!countedInSynBacklog_)
        return false;
    countedInSynBacklog_ = false;
    return true;
}

void InetSocket::childAborted()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (synRcvdCount_ > 0)
        --synRcvdCount_;
}

void InetSocket::enqueuePending(const InetSocketPtr &child)
{
    child->consumeSynBacklogSlot();
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ != State::Listening)
        return; // listener died mid-handshake; nobody will accept
    if (synRcvdCount_ > 0)
        --synRcvdCount_;
    pendingAccept_.push_back(child);
    cv_.notify_all();
}

std::string InetSocket::describe() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    os << (proto_ == NetProto::Stream ? "tcp " : "udp ") << localAddr_
       << ":" << localPort_;
    if (remotePort_ != 0 || remoteAddr_ != 0)
        os << " -> " << remoteAddr_ << ":" << remotePort_;
    os << " " << stateName(state_) << " snd=" << sndBuf_.size()
       << " rcv=" << rcvBuf_.size() << " ooo=" << oooBytes_
       << " retx=" << retransmits_;
    return os.str();
}

// ---------------------------------------------------------------------------
// NetStack
// ---------------------------------------------------------------------------

NetStack::NetStack(const hw::DeviceProfile &profile) : profile_(profile)
{}

void NetStack::attach(NetDevice *dev)
{
    std::lock_guard<std::mutex> lk(mu_);
    devices_.push_back(dev);
}

void NetStack::detach(NetDevice *dev)
{
    std::lock_guard<std::mutex> lk(mu_);
    devices_.erase(
        std::remove(devices_.begin(), devices_.end(), dev),
        devices_.end());
}

std::vector<NetDevice *> NetStack::devices() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return devices_;
}

NetAddr NetStack::defaultAddr() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return devices_.empty() ? 0 : devices_.front()->address();
}

InetSocketPtr NetStack::socket(NetProto proto)
{
    return std::make_shared<InetSocket>(*this, proto);
}

NetPort NetStack::ephemeralPort()
{
    // Lock-free so connect() can allocate while holding no lock at
    // all; collisions require 16k allocations plus a port still bound
    // after wraparound, which bindSocket reports as EADDRINUSE.
    std::uint32_t v = ephemeral_.fetch_add(1);
    return static_cast<NetPort>(49152 + (v % 16384));
}

SyscallResult NetStack::bindSocket(const InetSocketPtr &sock,
                                   NetAddr addr, NetPort port,
                                   NetProto proto, bool listening)
{
    if (port == 0)
        port = ephemeralPort();
    std::lock_guard<std::mutex> lk(mu_);
    if (addr == 0 && !listening && !devices_.empty())
        addr = devices_.front()->address();
    PortKey key{addr, port};
    auto &table = proto == NetProto::Dgram ? dgrams_ : listeners_;
    if (proto == NetProto::Dgram || listening) {
        auto [it, fresh] = table.emplace(key, sock);
        if (!fresh && it->second != sock)
            return SyscallResult::failure(lnx::ADDRINUSE);
    }
    {
        std::lock_guard<std::mutex> sl(sock->mu_);
        sock->localAddr_ = addr;
        sock->localPort_ = port;
        if (sock->state_ == InetSocket::State::Closed)
            sock->state_ = InetSocket::State::Bound;
    }
    return SyscallResult::success(0);
}

void NetStack::registerConn(const InetSocketPtr &sock)
{
    std::lock_guard<std::mutex> lk(mu_);
    conns_[ConnKey{sock->localAddr_, sock->remoteAddr_,
                   sock->localPort_, sock->remotePort_}] = sock;
}

void NetStack::eraseConn(const InetSocket &sock)
{
    std::lock_guard<std::mutex> lk(mu_);
    conns_.erase(ConnKey{sock.localAddr_, sock.remoteAddr_,
                         sock.localPort_, sock.remotePort_});
}

void NetStack::unbindListener(const InetSocket &sock)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = listeners_.find({sock.localAddr_, sock.localPort_});
    if (it != listeners_.end() && it->second.get() == &sock)
        listeners_.erase(it);
}

void NetStack::unbindDgram(const InetSocket &sock)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = dgrams_.find({sock.localAddr_, sock.localPort_});
    if (it != dgrams_.end() && it->second.get() == &sock)
        dgrams_.erase(it);
}

bool NetStack::transmitFrame(const NetFrame &frame)
{
    NetDevice *dev = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (NetDevice *d : devices_)
            if (d->address() == frame.srcAddr) {
                dev = d;
                break;
            }
        if (dev == nullptr && !devices_.empty())
            dev = devices_.front();
    }
    if (dev == nullptr) {
        framesNoRoute_.fetch_add(1);
        return false;
    }
    framesRouted_.fetch_add(1);
    return dev->transmit(frame);
}

void NetStack::sendRst(const NetFrame &cause)
{
    if (cause.flags & netflag::RST)
        return; // never RST an RST
    NetFrame rst;
    rst.proto = NetProto::Stream;
    rst.flags = netflag::RST;
    rst.srcAddr = cause.dstAddr;
    rst.dstAddr = cause.srcAddr;
    rst.srcPort = cause.dstPort;
    rst.dstPort = cause.srcPort;
    rst.ack = cause.seq;
    resetsSent_.fetch_add(1);
    transmitFrame(rst);
}

void NetStack::input(const NetFrame &frame)
{
    charge(profile_.netSegmentNs);

    if (frame.proto == NetProto::Dgram) {
        InetSocketPtr sock;
        {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = dgrams_.find({frame.dstAddr, frame.dstPort});
            if (it == dgrams_.end())
                it = dgrams_.find({0, frame.dstPort});
            if (it != dgrams_.end())
                sock = it->second;
        }
        if (sock) {
            sock->dgramInput(frame);
        } else {
            framesNoPort_.fetch_add(1);
            dgramDrops_.fetch_add(1);
        }
        return;
    }

    // Stream: established connection first, then listeners for SYNs.
    InetSocketPtr sock;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = conns_.find(ConnKey{frame.dstAddr, frame.srcAddr,
                                      frame.dstPort, frame.srcPort});
        if (it != conns_.end())
            sock = it->second;
    }
    if (sock) {
        std::vector<NetFrame> replies;
        InetSocket::InputVerdict verdict =
            sock->streamInput(frame, replies);
        if (verdict == InetSocket::InputVerdict::ConnDead) {
            eraseConn(*sock);
            // A child RST before promotion frees its backlog slot.
            if (sock->consumeSynBacklogSlot())
                if (InetSocketPtr l = sock->listener_.lock())
                    l->childAborted();
        }
        if (verdict == InetSocket::InputVerdict::Promoted) {
            if (InetSocketPtr l = sock->listener_.lock())
                l->enqueuePending(sock);
        }
        for (const NetFrame &r : replies) {
            charge(profile_.netSegmentNs);
            transmitFrame(r);
        }
        return;
    }

    if ((frame.flags & netflag::SYN) &&
        !(frame.flags & netflag::ACK)) {
        InetSocketPtr listener;
        {
            std::lock_guard<std::mutex> lk(mu_);
            auto it =
                listeners_.find({frame.dstAddr, frame.dstPort});
            if (it == listeners_.end())
                it = listeners_.find({0, frame.dstPort});
            if (it != listeners_.end())
                listener = it->second;
        }
        if (listener) {
            bool refused = false;
            InetSocketPtr child =
                listener->handleSyn(frame, refused);
            if (child) {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    conns_[ConnKey{child->localAddr_,
                                   child->remoteAddr_,
                                   child->localPort_,
                                   child->remotePort_}] = child;
                }
                NetFrame synack = child->frameLocked(
                    netflag::SYN | netflag::ACK, 0);
                charge(profile_.netSegmentNs);
                transmitFrame(synack);
                return;
            }
            if (refused)
                synRefused_.fetch_add(1);
        }
    }

    framesNoPort_.fetch_add(1);
    sendRst(frame);
}

NetStats NetStack::stats() const
{
    NetStats s;
    s.socketsLive = socketsLive_.load();
    s.socketsCreated = socketsCreated_.load();
    s.framesRouted = framesRouted_.load();
    s.framesNoRoute = framesNoRoute_.load();
    s.framesNoPort = framesNoPort_.load();
    s.resetsSent = resetsSent_.load();
    s.synRefused = synRefused_.load();
    s.retransmits = retransmits_.load();
    s.dupSegments = dupSegments_.load();
    s.oooQueued = oooQueued_.load();
    s.dgramDrops = dgramDrops_.load();

    std::vector<InetSocketPtr> bound;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto &[k, v] : conns_)
            bound.push_back(v);
        for (const auto &[k, v] : dgrams_)
            bound.push_back(v);
    }
    for (const InetSocketPtr &sock : bound) {
        std::lock_guard<std::mutex> sl(sock->mu_);
        s.bufferedBytes += sock->sndBuf_.size() +
                           sock->rcvBuf_.size() + sock->oooBytes_;
        s.retransmits += sock->retransmits_;
        s.dupSegments += sock->dupSegments_;
    }
    return s;
}

std::string NetStack::dump() const
{
    NetStats s = stats();
    std::ostringstream os;
    os << "cider net stack\n"
       << "sockets: live=" << s.socketsLive
       << " created=" << s.socketsCreated << "\n"
       << "frames: routed=" << s.framesRouted
       << " no-route=" << s.framesNoRoute
       << " no-port=" << s.framesNoPort << "\n"
       << "tcp-lite: retx=" << s.retransmits
       << " dup-segs=" << s.dupSegments << " ooo=" << s.oooQueued
       << " rst-sent=" << s.resetsSent
       << " syn-refused=" << s.synRefused << "\n"
       << "udp-lite: drops=" << s.dgramDrops << "\n"
       << "buffered-bytes: " << s.bufferedBytes << "\n";

    std::vector<NetDevice *> devs;
    std::vector<InetSocketPtr> socks;
    {
        std::lock_guard<std::mutex> lk(mu_);
        devs = devices_;
        for (const auto &[k, v] : listeners_)
            socks.push_back(v);
        for (const auto &[k, v] : conns_)
            socks.push_back(v);
        for (const auto &[k, v] : dgrams_)
            socks.push_back(v);
    }
    os << "devices:\n";
    for (NetDevice *d : devs)
        os << "  " << d->ifName() << " addr=" << d->address() << " "
           << d->statsLine() << "\n";
    os << "sockets:\n";
    for (const InetSocketPtr &sock : socks)
        os << "  " << sock->describe() << "\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// /proc/cider/net
// ---------------------------------------------------------------------------

SyscallResult NetStackDevice::read(Thread &t, Bytes &out, std::size_t n)
{
    (void)t;
    std::string text = stack_.dump();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(), text.begin() + static_cast<long>(take));
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

} // namespace cider::kernel
