/**
 * @file
 * AF_INET sockets over a TCP-lite/UDP-lite protocol core.
 *
 * The paper's third duct-tape subsystem needs network reachability for
 * foreign apps; this layer provides it without a host network. Frames
 * travel synchronously on the sender's host thread: a transmit charges
 * the sender's CostClock (per-segment protocol work plus NIC link
 * latency from the device profile) and is delivered by the loopback
 * fabric into NetStack::input() before the transmit call returns, so
 * a seeded run's virtual-time series is bit-identical across repeats
 * even under FaultRail drop/duplicate/reorder storms.
 *
 * Layering: the kernel owns the stack and the socket objects; NICs
 * live in src/iokit and reach back only through the abstract NetDevice
 * interface below (the kernel never includes iokit headers).
 *
 * TCP-lite keeps the parts that make loss observable and recoverable —
 * SYN/SYNACK/ACK handshake with listener backlog, cumulative acks over
 * a byte sequence space, out-of-order reassembly, receiver-advertised
 * flow-control window, dup-ack fast retransmit — and drops what a
 * deterministic simulation does not need (checksums, TIME_WAIT, RTT
 * estimation). There is no timer wheel: retransmission is driven by
 * explicit pump() calls (ioctl netio::PUMP), the virtual-time analogue
 * of the softirq retransmit timer.
 */

#ifndef CIDER_KERNEL_NET_H
#define CIDER_KERNEL_NET_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "kernel/device.h"
#include "kernel/file.h"

namespace cider::hw {
struct DeviceProfile;
} // namespace cider::hw

namespace cider::kernel {

using NetAddr = std::uint32_t;
using NetPort = std::uint16_t;

namespace netflag {
constexpr std::uint8_t SYN = 0x1;
constexpr std::uint8_t ACK = 0x2;
constexpr std::uint8_t FIN = 0x4;
constexpr std::uint8_t RST = 0x8;
} // namespace netflag

/** ioctl requests understood by InetSocket (SIOCDEVPRIVATE range). */
namespace netio {
/** Drive retransmit/window machinery (softirq-timer analogue). */
constexpr std::uint64_t PUMP = 0x89F0;
/** Set the receive-buffer capacity; arg is a std::size_t*. */
constexpr std::uint64_t RCVBUF = 0x89F1;
/** FIONBIO: nonzero int* arg switches the socket nonblocking. */
constexpr std::uint64_t FIONBIO = 0x5421;
} // namespace netio

enum class NetProto : std::uint8_t
{
    Stream, // TCP-lite
    Dgram,  // UDP-lite
};

/** One frame on the simulated wire. */
struct NetFrame
{
    NetProto proto = NetProto::Stream;
    std::uint8_t flags = 0;
    NetAddr srcAddr = 0;
    NetAddr dstAddr = 0;
    NetPort srcPort = 0;
    NetPort dstPort = 0;
    /** First payload byte's position in the sender's sequence space
     *  (FIN consumes one sequence number, SYN none). */
    std::uint32_t seq = 0;
    /** Cumulative ack: next sequence number expected from the peer. */
    std::uint32_t ack = 0;
    /** Receiver-advertised window (bytes the sender may have in
     *  flight past @c ack). */
    std::uint32_t window = 0;
    Bytes payload;
};

/**
 * What the kernel knows about a NIC. Implemented by the I/O Kit
 * IONetworkInterface; transmit() pushes a frame toward the fabric and
 * returns false when the device dropped it (ring overflow, link down).
 */
class NetDevice
{
  public:
    virtual ~NetDevice() = default;
    virtual const std::string &ifName() const = 0;
    virtual NetAddr address() const = 0;
    virtual bool transmit(const NetFrame &frame) = 0;
    /** One-line stats summary for /proc/cider/net (optional). */
    virtual std::string statsLine() const { return {}; }
};

/** Aggregate stack counters (leak audit + /proc/cider/net). */
struct NetStats
{
    std::uint64_t socketsLive = 0;
    std::uint64_t socketsCreated = 0;
    std::uint64_t framesRouted = 0;
    std::uint64_t framesNoRoute = 0;
    std::uint64_t framesNoPort = 0;
    std::uint64_t resetsSent = 0;
    std::uint64_t synRefused = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t dupSegments = 0;
    std::uint64_t oooQueued = 0;
    std::uint64_t dgramDrops = 0;
    /** Bytes sitting in bound sockets' send/receive buffers. */
    std::uint64_t bufferedBytes = 0;
};

class NetStack;
class InetSocket;
using InetSocketPtr = std::shared_ptr<InetSocket>;

/**
 * An AF_INET endpoint (stream or datagram). All public operations are
 * safe to call from any simulated thread; the per-socket mutex is
 * never held across a transmit, so synchronous loopback delivery can
 * re-enter the stack without deadlock. SchedRail yield points sit at
 * operation entry, before any lock.
 */
class InetSocket : public OpenFile,
                   public std::enable_shared_from_this<InetSocket>
{
  public:
    enum class State
    {
        Closed,      // fresh or fully shut down
        Bound,       // has a local address
        Listening,   // passive open
        SynSent,     // active open in progress
        SynRcvd,     // passive child, handshake incomplete
        Established, // data may flow
        Reset,       // peer aborted (RST seen)
        Dead,        // detached from the stack
    };

    InetSocket(NetStack &stack, NetProto proto);
    ~InetSocket() override;

    std::string kind() const override
    {
        return proto_ == NetProto::Stream ? "inet" : "inet-dgram";
    }

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;
    SyscallResult write(Thread &t, const Bytes &data) override;
    SyscallResult ioctl(Thread &t, std::uint64_t req, void *arg) override;
    PollState poll() const override;
    void closed() override;

    /** Bind to (addr, port); addr 0 listens on every interface and
     *  port 0 picks an ephemeral port. */
    SyscallResult bind(NetAddr addr, NetPort port);
    SyscallResult listen(int backlog);
    /** Pop a completed connection; EAGAIN when nonblocking and none
     *  is pending. The returned socket may already carry data — or an
     *  RST — from an eager peer. */
    SyscallResult accept(InetSocketPtr &out);
    /** Active open. Never blocks on a host primitive: loopback
     *  delivery is synchronous, so the handshake resolves within the
     *  bounded SYN-retry loop or fails (ECONNREFUSED on RST,
     *  ETIMEDOUT when a fault storm eats every SYN). */
    SyscallResult connectTo(NetAddr addr, NetPort port);
    SyscallResult shutdownHow(int how); // 0=RD 1=WR 2=RDWR
    /** Abortive close: RST the peer and detach (close(2) with unread
     *  data does this implicitly, as TCP does). */
    void abort();
    /** Retransmit-timer analogue; also reopens a zero window. */
    void pump();

    SyscallResult sendTo(Thread &t, NetAddr addr, NetPort port,
                         const Bytes &data);
    SyscallResult recvFrom(Thread &t, Bytes &out, std::size_t n,
                           NetAddr *src_addr, NetPort *src_port);

    void setNonblocking(bool nb) { nonblock_.store(nb); }
    void setRcvCap(std::size_t cap);

    State state() const;
    NetProto proto() const { return proto_; }
    NetAddr localAddr() const { return localAddr_; }
    NetPort localPort() const { return localPort_; }
    std::uint64_t retransmitCount() const { return retransmits_; }

    /** One "state line" for /proc/cider/net. */
    std::string describe() const;

  private:
    friend class NetStack;

    static constexpr std::size_t kSegSize = 1024;
    static constexpr std::size_t kSndCap = 64 * 1024;
    static constexpr std::size_t kDgramQueueCap = 64;
    static constexpr int kConnectAttempts = 6;
    static constexpr int kStalePumpsBeforeRto = 2;
    static constexpr std::size_t kOooCap = 64;

    struct Dgram
    {
        NetAddr srcAddr;
        NetPort srcPort;
        Bytes data;
    };

    /** What input() should do after a frame was absorbed. */
    enum class InputVerdict
    {
        None,
        Promoted, // SynRcvd child completed: enqueue on the listener
        ConnDead, // RST processed: unlink the connection entry
    };

    // Frame handlers (called by NetStack with no stack lock held;
    // they take the socket lock and append any protocol replies to
    // @p replies for the caller to transmit after unlock).
    InputVerdict streamInput(const NetFrame &frame,
                             std::vector<NetFrame> &replies);
    void dgramInput(const NetFrame &frame);
    /** Listener side of a SYN: create a SynRcvd child or refuse. */
    InetSocketPtr handleSyn(const NetFrame &frame, bool &refused);
    void enqueuePending(const InetSocketPtr &child);
    /** True exactly once for a child that died before promotion, so
     *  the listener's SYN-backlog slot can be returned. */
    bool consumeSynBacklogSlot();
    void childAborted();

    // All *Locked helpers require mu_ held.
    void buildSegmentsLocked(std::vector<NetFrame> &out);
    void retransmitLocked(std::vector<NetFrame> &out);
    NetFrame frameLocked(std::uint8_t flags, std::uint32_t seq,
                         Bytes payload = {}) const;
    std::uint32_t advertisedWindowLocked() const;
    void absorbDataLocked(const NetFrame &frame,
                          std::vector<NetFrame> &replies);
    void absorbAckLocked(const NetFrame &frame,
                         std::vector<NetFrame> &replies);
    bool eofReadyLocked() const;
    void sendFrames(const std::vector<NetFrame> &frames);

    NetStack &stack_;
    const NetProto proto_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::atomic<bool> nonblock_{false};

    State state_ = State::Closed;
    NetAddr localAddr_ = 0;
    NetPort localPort_ = 0;
    NetAddr remoteAddr_ = 0;
    NetPort remotePort_ = 0;

    // --- send side (stream) ---
    std::deque<std::uint8_t> sndBuf_; // bytes [sndUna_, una+size)
    std::uint32_t sndUna_ = 0;        // oldest unacked seq
    std::uint32_t sndNext_ = 0;       // next seq to transmit
    std::uint32_t peerWindow_ = 0;
    bool finPending_ = false;
    bool finSent_ = false;
    bool finAcked_ = false;
    std::uint32_t finSeq_ = 0;
    std::uint32_t lastAckSeen_ = 0;
    int dupAcks_ = 0;
    std::uint32_t lastPumpUna_ = 0;
    int stalePumps_ = 0;

    // --- receive side (stream) ---
    std::deque<std::uint8_t> rcvBuf_;
    std::size_t rcvCap_ = 64 * 1024;
    std::uint32_t rcvNext_ = 0;
    std::map<std::uint32_t, Bytes> ooo_;
    std::size_t oooBytes_ = 0;
    bool peerFin_ = false;         // FIN consumed at rcvNext_
    bool peerFinSeen_ = false;     // FIN seq recorded (maybe early)
    std::uint32_t peerFinSeq_ = 0;
    std::uint32_t lastAdvertised_ = 0;
    bool rdShut_ = false;

    // --- listener ---
    int backlog_ = 0;
    int synRcvdCount_ = 0;
    std::deque<InetSocketPtr> pendingAccept_;
    std::weak_ptr<InetSocket> listener_; // set on passive children
    bool countedInSynBacklog_ = false;

    // --- datagram ---
    std::deque<Dgram> dgrams_;

    std::uint64_t retransmits_ = 0;
    std::uint64_t dupSegments_ = 0;
};

/**
 * The AF_INET stack: port tables, connection lookup, and the route
 * from sockets to attached NICs. Owned by the Kernel; NICs attach at
 * I/O Kit driver start. The stack lock covers only the tables — it is
 * released before any socket lock is taken and before any transmit,
 * so lock order is always {stack} then {one socket}, never two
 * sockets and never socket-then-stack.
 */
class NetStack
{
  public:
    explicit NetStack(const hw::DeviceProfile &profile);

    const hw::DeviceProfile &profile() const { return profile_; }

    void attach(NetDevice *dev);
    void detach(NetDevice *dev);
    /** Devices currently attached (for /proc and tests). */
    std::vector<NetDevice *> devices() const;

    InetSocketPtr socket(NetProto proto);

    /** Entry point for frames delivered by a NIC. May synchronously
     *  emit bounded protocol replies (SYNACK/ACK/RST) through the
     *  same NIC path; data transmission is never initiated here. */
    void input(const NetFrame &frame);

    /** Route @p frame out through an attached device. Prefers the
     *  device owning srcAddr; charges nothing itself (the NIC model
     *  charges link latency). */
    bool transmitFrame(const NetFrame &frame);

    NetStats stats() const;
    std::string dump() const;

    /** First attached device's address (default source for sockets
     *  bound to the wildcard address); 0 when no NIC is attached. */
    NetAddr defaultAddr() const;

  private:
    friend class InetSocket;

    using PortKey = std::pair<NetAddr, NetPort>;
    struct ConnKey
    {
        NetAddr localAddr;
        NetAddr remoteAddr;
        NetPort localPort;
        NetPort remotePort;
        bool operator<(const ConnKey &o) const
        {
            return std::tie(localAddr, remoteAddr, localPort,
                            remotePort) <
                   std::tie(o.localAddr, o.remoteAddr, o.localPort,
                            o.remotePort);
        }
    };

    NetPort ephemeralPort();
    SyscallResult bindSocket(const InetSocketPtr &sock, NetAddr addr,
                             NetPort port, NetProto proto,
                             bool listening);
    void registerConn(const InetSocketPtr &sock);
    void eraseConn(const InetSocket &sock);
    void unbindListener(const InetSocket &sock);
    void unbindDgram(const InetSocket &sock);
    void sendRst(const NetFrame &cause);

    const hw::DeviceProfile &profile_;
    mutable std::mutex mu_;
    std::vector<NetDevice *> devices_;
    std::map<PortKey, InetSocketPtr> listeners_;
    std::map<ConnKey, InetSocketPtr> conns_;
    std::map<PortKey, InetSocketPtr> dgrams_;
    std::atomic<std::uint32_t> ephemeral_{0};

    std::atomic<std::uint64_t> socketsLive_{0};
    std::atomic<std::uint64_t> socketsCreated_{0};
    std::atomic<std::uint64_t> framesRouted_{0};
    std::atomic<std::uint64_t> framesNoRoute_{0};
    std::atomic<std::uint64_t> framesNoPort_{0};
    std::atomic<std::uint64_t> resetsSent_{0};
    std::atomic<std::uint64_t> synRefused_{0};
    std::atomic<std::uint64_t> retransmits_{0};
    std::atomic<std::uint64_t> dupSegments_{0};
    std::atomic<std::uint64_t> oooQueued_{0};
    std::atomic<std::uint64_t> dgramDrops_{0};
};

/** /proc/cider/net: live sockets, tables, and counters. */
class NetStackDevice : public Device
{
  public:
    explicit NetStackDevice(const NetStack &stack)
        : Device("net", "proc"), stack_(stack)
    {}

    SyscallResult read(Thread &t, Bytes &out, std::size_t n) override;

  private:
    const NetStack &stack_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_NET_H
