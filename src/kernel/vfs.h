/**
 * @file
 * In-memory virtual filesystem of the simulated domestic kernel.
 *
 * A plain hierarchical namespace of inodes plus an *overlay table*:
 * Cider overlays an iOS filesystem hierarchy onto the Android one so
 * foreign apps see familiar paths such as /Documents (paper section
 * 3). Overlays are longest-prefix path rewrites applied during
 * resolution.
 *
 * All operations charge storage costs from the kernel's DeviceProfile
 * so filesystem-heavy benchmarks (file create/delete, storage
 * read/write) reflect the device being simulated.
 *
 * Resolution is built for the dyld workload (the same 115-dylib
 * closure walked on every exec): components are iterated as
 * string_views with no intermediate vector, directory lookups are
 * heterogeneous (no key materialisation), and a generation-stamped
 * dentry cache short-circuits repeated full-path walks. Any
 * namespace mutation — create/unlink/rename/rmdir/mknod/overlay-add
 * — bumps the generation, atomically invalidating every cached
 * entry, so the cache can never serve a stale inode.
 */

#ifndef CIDER_KERNEL_VFS_H
#define CIDER_KERNEL_VFS_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/bytes.h"
#include "kernel/types.h"

namespace cider::hw {
struct DeviceProfile;
} // namespace cider::hw

namespace cider::kernel {

class Device;

/** Inode type tag. */
enum class InodeType
{
    Regular,
    Directory,
    DeviceNode,
};

/** One filesystem object. */
struct Inode
{
    InodeType type = InodeType::Regular;
    Bytes data;                              ///< regular-file contents
    /** Directory entries; the transparent comparator lets lookups
     *  probe with string_view components without allocating keys. */
    std::map<std::string, std::shared_ptr<Inode>, std::less<>> children;
    Device *device = nullptr;                ///< device nodes
    /**
     * Binary-image tag: names a registered LibraryImage or program so
     * loaders can attach callable text to an on-disk blob.
     */
    std::string imageTag;
};

using InodePtr = std::shared_ptr<Inode>;

/** Result of a path lookup. */
struct Lookup
{
    InodePtr inode;  ///< null when the final component is missing
    InodePtr parent; ///< directory that holds (or would hold) it
    std::string leaf;
    int err = 0;     ///< non-zero when resolution itself failed
};

/** Dentry-cache observability for tests and benches. */
struct DentryCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    bool enabled = true;
};

/** The mounted namespace. */
class Vfs
{
  public:
    explicit Vfs(const hw::DeviceProfile &profile);

    /**
     * Add an overlay: any path beginning with @p prefix is rewritten
     * to @p target before resolution. Longest prefix wins, matching
     * the behaviour of stacked mounts.
     */
    void addOverlay(const std::string &prefix, const std::string &target);

    /** Apply overlay rewriting only (exposed for tests). */
    std::string rewrite(const std::string &path) const;

    /** Resolve @p path; never creates anything. */
    Lookup lookup(const std::string &path) const;

    /** Create all missing directories along @p path. */
    SyscallResult mkdirAll(const std::string &path);

    SyscallResult mkdir(const std::string &path);

    /** Create (or truncate) a regular file; returns its inode. */
    SyscallResult create(const std::string &path, InodePtr *out = nullptr);

    SyscallResult unlink(const std::string &path);

    /** Move/rename a file or directory. */
    SyscallResult rename(const std::string &from, const std::string &to);

    SyscallResult rmdir(const std::string &path);

    /** List names in a directory. */
    SyscallResult readdir(const std::string &path,
                          std::vector<std::string> &out) const;

    /** Register a device node at @p path. */
    SyscallResult mknod(const std::string &path, Device *dev);

    /** Whole-file convenience helpers used by loaders and tools. */
    SyscallResult writeFile(const std::string &path, const Bytes &data);
    SyscallResult readFile(const std::string &path, Bytes &out) const;

    /** True when @p path resolves to an existing inode. */
    bool exists(const std::string &path) const;

    const hw::DeviceProfile &profile() const { return profile_; }

    /**
     * Split an absolute path into components; "." and "" dropped and
     * ".." resolved by popping the previous component (a leading
     * ".." at the root stays at the root, as in POSIX).
     */
    static std::vector<std::string> splitPath(const std::string &path);

    /** Toggle the dentry cache (on by default); disabling clears it. */
    void setDentryCacheEnabled(bool enabled);

    DentryCacheStats dentryCacheStats() const;

  private:
    struct DentryEntry
    {
        std::uint64_t gen = 0;
        Lookup result;
    };

    /// @{ Unlocked bodies; public entry points take mu_ once and call
    /// these, so internal composition (writeFile → create → lookup)
    /// never re-enters the lock.
    std::string rewriteImpl(const std::string &path) const;
    Lookup lookupImpl(const std::string &path) const;
    SyscallResult createImpl(const std::string &path, InodePtr *out);
    /// @}

    /** Resolve an overlay-rewritten path by walking components. */
    Lookup walk(std::string_view effective) const;

    /** Invalidate every cached dentry (namespace mutated). */
    void bumpNamespaceGen() { ++namespaceGen_; }

    const hw::DeviceProfile &profile_;

    /**
     * One lock for the *namespace*: inode tree structure, overlay
     * table, dentry cache, and generation counter (decomposed from
     * the old whole-kernel serialization — SMP host threads resolving
     * disjoint paths contend only here, not on the kernel). Inode
     * *contents* (Inode::data) are not covered: file data follows the
     * owning process's fd-level serialization, like page-cache pages
     * vs. the dcache in a real kernel.
     */
    mutable std::mutex mu_;
    InodePtr root_;
    std::vector<std::pair<std::string, std::string>> overlays_;

    /**
     * Dentry cache: original (pre-rewrite) path -> resolved Lookup,
     * valid only while its generation matches namespaceGen_. Mutable
     * because lookup() is logically const; mu_ covers it.
     */
    mutable std::unordered_map<std::string, DentryEntry> dentryCache_;
    mutable std::uint64_t cacheHits_ = 0;
    mutable std::uint64_t cacheMisses_ = 0;
    std::uint64_t namespaceGen_ = 0;
    bool cacheEnabled_ = true;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_VFS_H
