/**
 * @file
 * In-memory virtual filesystem of the simulated domestic kernel.
 *
 * A plain hierarchical namespace of inodes plus an *overlay table*:
 * Cider overlays an iOS filesystem hierarchy onto the Android one so
 * foreign apps see familiar paths such as /Documents (paper section
 * 3). Overlays are longest-prefix path rewrites applied during
 * resolution.
 *
 * All operations charge storage costs from the kernel's DeviceProfile
 * so filesystem-heavy benchmarks (file create/delete, storage
 * read/write) reflect the device being simulated.
 */

#ifndef CIDER_KERNEL_VFS_H
#define CIDER_KERNEL_VFS_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "kernel/types.h"

namespace cider::hw {
struct DeviceProfile;
} // namespace cider::hw

namespace cider::kernel {

class Device;

/** Inode type tag. */
enum class InodeType
{
    Regular,
    Directory,
    DeviceNode,
};

/** One filesystem object. */
struct Inode
{
    InodeType type = InodeType::Regular;
    Bytes data;                              ///< regular-file contents
    std::map<std::string, std::shared_ptr<Inode>> children; ///< dirs
    Device *device = nullptr;                ///< device nodes
    /**
     * Binary-image tag: names a registered LibraryImage or program so
     * loaders can attach callable text to an on-disk blob.
     */
    std::string imageTag;
};

using InodePtr = std::shared_ptr<Inode>;

/** Result of a path lookup. */
struct Lookup
{
    InodePtr inode;  ///< null when the final component is missing
    InodePtr parent; ///< directory that holds (or would hold) it
    std::string leaf;
    int err = 0;     ///< non-zero when resolution itself failed
};

/** The mounted namespace. */
class Vfs
{
  public:
    explicit Vfs(const hw::DeviceProfile &profile);

    /**
     * Add an overlay: any path beginning with @p prefix is rewritten
     * to @p target before resolution. Longest prefix wins, matching
     * the behaviour of stacked mounts.
     */
    void addOverlay(const std::string &prefix, const std::string &target);

    /** Apply overlay rewriting only (exposed for tests). */
    std::string rewrite(const std::string &path) const;

    /** Resolve @p path; never creates anything. */
    Lookup lookup(const std::string &path) const;

    /** Create all missing directories along @p path. */
    SyscallResult mkdirAll(const std::string &path);

    SyscallResult mkdir(const std::string &path);

    /** Create (or truncate) a regular file; returns its inode. */
    SyscallResult create(const std::string &path, InodePtr *out = nullptr);

    SyscallResult unlink(const std::string &path);

    /** Move/rename a file or directory. */
    SyscallResult rename(const std::string &from, const std::string &to);

    SyscallResult rmdir(const std::string &path);

    /** List names in a directory. */
    SyscallResult readdir(const std::string &path,
                          std::vector<std::string> &out) const;

    /** Register a device node at @p path. */
    SyscallResult mknod(const std::string &path, Device *dev);

    /** Whole-file convenience helpers used by loaders and tools. */
    SyscallResult writeFile(const std::string &path, const Bytes &data);
    SyscallResult readFile(const std::string &path, Bytes &out) const;

    /** True when @p path resolves to an existing inode. */
    bool exists(const std::string &path) const;

    const hw::DeviceProfile &profile() const { return profile_; }

    /** Split an absolute path into components; "." and "" dropped. */
    static std::vector<std::string> splitPath(const std::string &path);

  private:
    const hw::DeviceProfile &profile_;
    InodePtr root_;
    std::vector<std::pair<std::string, std::string>> overlays_;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_VFS_H
