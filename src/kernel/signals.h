/**
 * @file
 * Signal model of the simulated domestic kernel.
 *
 * The kernel generates and stores signals in *Linux* numbering; a
 * SignalDeliveryHook installed by the persona layer translates number,
 * siginfo layout, and frame size when the receiving thread runs under
 * a foreign persona (paper section 4.1). Programmatic XNU signals are
 * translated to Linux numbers before they enter the kernel, so both
 * directions — Android->iOS and iOS->Android — work.
 */

#ifndef CIDER_KERNEL_SIGNALS_H
#define CIDER_KERNEL_SIGNALS_H

#include <array>
#include <deque>
#include <functional>

#include "kernel/types.h"

namespace cider::kernel {

class Thread;

/** Siginfo as handed to user handlers (origin-neutral form). */
struct SigInfo
{
    int signo = 0;          ///< numbering of the *receiver's* persona
    int tableSigno = 0;     ///< Linux number used for table lookups
    int code = 0;
    Pid senderPid = 0;
    std::int64_t value = 0;
    /**
     * Bytes of signal-frame state the kernel had to materialise for
     * this delivery. iOS binaries expect a larger frame than Linux
     * ones, which is part of the persona delivery overhead.
     */
    std::size_t frameSize = 0;
};

using SignalHandlerFn = std::function<void(int, const SigInfo &)>;

/** Disposition of one signal. */
struct SignalAction
{
    enum class Kind
    {
        Default,
        Ignore,
        Handler,
    };

    Kind kind = Kind::Default;
    SignalHandlerFn fn;
};

/** Per-process table of dispositions (Linux numbering). */
class SignalState
{
  public:
    SignalAction &action(int linux_signo);
    const SignalAction &action(int linux_signo) const;

    /** Reset all handlers to default (exec does this). */
    void reset();

    /** True when the default action for @p signo terminates. */
    static bool defaultTerminates(int linux_signo);

  private:
    std::array<SignalAction, lsig::COUNT> actions_;
};

/**
 * Hook the persona layer installs on the kernel to customise delivery
 * per receiving thread. The default hook delivers Linux numbering
 * with a Linux-sized frame.
 */
class SignalDeliveryHook
{
  public:
    virtual ~SignalDeliveryHook() = default;

    /**
     * Prepare @p info (numbering, frame size) for delivery to
     * @p target and charge any translation cost.
     * @return the signo to look up in the handler table (always the
     *         Linux number) — handlers are registered under the
     *         receiver persona's numbering by the libc wrappers, so
     *         the hook also rewrites info.signo for the handler.
     */
    virtual int prepare(Thread &target, SigInfo &info);
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_SIGNALS_H
