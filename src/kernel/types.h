/**
 * @file
 * Shared identifiers, errno values, and the syscall calling
 * convention used across the simulated domestic (Linux) kernel.
 */

#ifndef CIDER_KERNEL_TYPES_H
#define CIDER_KERNEL_TYPES_H

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "base/bytes.h"

namespace cider::kernel {

using Pid = int;
using Tid = int;
using Fd = int;

/**
 * Execution mode of a thread. Cider tracks a persona per thread (not
 * per process), inherits it across fork/clone, and lets one process
 * host threads of different personas simultaneously (paper section 4).
 */
enum class Persona
{
    Android, ///< domestic: Linux ABI, bionic TLS layout
    Ios,     ///< foreign: XNU ABI, Darwin TLS layout
};

/** Human-readable persona name for logs and tests. */
const char *personaName(Persona p);

/**
 * How a thread trapped into the kernel. Linux has one entry path;
 * XNU-built binaries use four distinct trap classes (paper section
 * 4.1: "iOS apps can trap into the kernel in four different ways").
 */
enum class TrapClass
{
    LinuxSyscall, ///< domestic svc entry
    XnuBsd,       ///< XNU positive syscall numbers (BSD layer)
    XnuMach,      ///< XNU negative numbers (Mach traps)
    XnuMdep,      ///< machine-dependent fast traps (TLS pointer etc.)
    XnuDiag,      ///< diagnostics entry
};

const char *trapClassName(TrapClass c);

/**
 * Raw result of a syscall before the persona layer applies a calling
 * convention. Linux reports failure as a negative errno in the return
 * register; XNU returns a positive errno and signals failure through
 * a CPU carry flag. Handlers fill @ref err with a *Linux* errno (the
 * domestic kernel's native vocabulary); convention and errno-value
 * translation happen at the dispatch boundary.
 */
struct SyscallResult
{
    std::int64_t value = 0;
    int err = 0; ///< 0 on success; Linux errno otherwise

    bool ok() const { return err == 0; }

    static SyscallResult success(std::int64_t v = 0) { return {v, 0}; }
    static SyscallResult failure(int e) { return {-1, e}; }
};

/**
 * A syscall argument. The simulator passes structured values instead
 * of user-space pointers; buffers are passed by pointer to host
 * memory owned by the caller.
 */
using Arg = std::variant<std::monostate, std::uint64_t, std::int64_t,
                         double, std::string, Bytes *, const Bytes *,
                         void *>;

/**
 * A syscall handler asked for an argument the caller did not supply
 * (or supplied with the wrong type). Foreign user space controls the
 * argument vector, so this must not panic the simulator: the trap
 * dispatcher catches it, fails the trap with EINVAL, and counts it in
 * TrapStats as a bad-argument trap.
 */
class BadSyscallArg : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Argument vector handed to syscall handlers. */
struct SyscallArgs
{
    std::vector<Arg> args;

    std::uint64_t u64(std::size_t i) const;
    std::int64_t i64(std::size_t i) const;
    int i32(std::size_t i) const { return static_cast<int>(i64(i)); }
    const std::string &str(std::size_t i) const;
    Bytes *bytes(std::size_t i) const;
    const Bytes *cbytes(std::size_t i) const;
    void *ptr(std::size_t i) const;

    std::size_t size() const { return args.size(); }
};

/** Convenience builder for syscall argument vectors. */
template <typename... As>
SyscallArgs
makeArgs(As &&...as)
{
    SyscallArgs sa;
    (sa.args.emplace_back(std::forward<As>(as)), ...);
    return sa;
}

/**
 * Linux errno values (the domestic kernel's native error vocabulary).
 * Kept as an enum-like namespace so call sites read like kernel code.
 */
namespace lnx {

inline constexpr int PERM = 1;
inline constexpr int NOENT = 2;
inline constexpr int SRCH = 3;
inline constexpr int INTR = 4;
inline constexpr int IO = 5;
inline constexpr int NXIO = 6;
inline constexpr int TOOBIG = 7;
inline constexpr int NOEXEC = 8;
inline constexpr int BADF = 9;
inline constexpr int CHILD = 10;
inline constexpr int AGAIN = 11;
inline constexpr int NOMEM = 12;
inline constexpr int ACCES = 13;
inline constexpr int FAULT = 14;
inline constexpr int BUSY = 16;
inline constexpr int EXIST = 17;
inline constexpr int XDEV = 18;
inline constexpr int NODEV = 19;
inline constexpr int NOTDIR = 20;
inline constexpr int ISDIR = 21;
inline constexpr int INVAL = 22;
inline constexpr int NFILE = 23;
inline constexpr int MFILE = 24;
inline constexpr int NOTTY = 25;
inline constexpr int FBIG = 27;
inline constexpr int NOSPC = 28;
inline constexpr int SPIPE = 29;
inline constexpr int ROFS = 30;
inline constexpr int MLINK = 31;
inline constexpr int PIPE = 32;
inline constexpr int RANGE = 34;
inline constexpr int DEADLK = 35;
inline constexpr int NAMETOOLONG = 36;
inline constexpr int NOSYS = 38;
inline constexpr int NOTEMPTY = 39;
inline constexpr int NOTSOCK = 88;
inline constexpr int OPNOTSUPP = 95;
inline constexpr int ADDRINUSE = 98;
inline constexpr int ADDRNOTAVAIL = 99;
inline constexpr int NETUNREACH = 101;
inline constexpr int CONNRESET = 104;
inline constexpr int NOTCONN = 107;
inline constexpr int TIMEDOUT = 110;
inline constexpr int CONNREFUSED = 111;
inline constexpr int ALREADY = 114;
inline constexpr int INPROGRESS = 115;

} // namespace lnx

/** Linux signal numbers (ARM/generic). */
namespace lsig {

inline constexpr int HUP = 1;
inline constexpr int INT = 2;
inline constexpr int QUIT = 3;
inline constexpr int ILL = 4;
inline constexpr int TRAP = 5;
inline constexpr int ABRT = 6;
inline constexpr int BUS = 7;
inline constexpr int FPE = 8;
inline constexpr int KILL = 9;
inline constexpr int USR1 = 10;
inline constexpr int SEGV = 11;
inline constexpr int USR2 = 12;
inline constexpr int PIPE = 13;
inline constexpr int ALRM = 14;
inline constexpr int TERM = 15;
inline constexpr int STKFLT = 16;
inline constexpr int CHLD = 17;
inline constexpr int CONT = 18;
inline constexpr int STOP = 19;
inline constexpr int TSTP = 20;
inline constexpr int TTIN = 21;
inline constexpr int TTOU = 22;
inline constexpr int URG = 23;
inline constexpr int XCPU = 24;
inline constexpr int XFSZ = 25;
inline constexpr int VTALRM = 26;
inline constexpr int PROF = 27;
inline constexpr int WINCH = 28;
inline constexpr int IO = 29;
inline constexpr int PWR = 30;
inline constexpr int SYS = 31;
inline constexpr int COUNT = 32;

} // namespace lsig

} // namespace cider::kernel

#endif // CIDER_KERNEL_TYPES_H
