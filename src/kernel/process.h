/**
 * @file
 * Process object of the simulated domestic kernel.
 */

#ifndef CIDER_KERNEL_PROCESS_H
#define CIDER_KERNEL_PROCESS_H

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hw/device_profile.h"
#include "kernel/fd_table.h"
#include "kernel/signals.h"
#include "kernel/thread.h"
#include "kernel/types.h"
#include "kernel/vm.h"

namespace cider::kernel {

/** Binary container format of a loaded image. */
enum class BinaryFormat
{
    None,
    Elf,
    MachO,
};

/**
 * A process address space is a real vm_map (kernel/vm.h): VmObject
 * backing stores, COW entries, shared submaps. The 90 MB of dylib
 * mappings dyld creates is the dominant fork cost for iOS binaries in
 * the paper's Figure 5; fork aliases them copy-on-write.
 */
using AddressSpace = VmMap;

/** Main-entry callable bound by a binary loader. */
using EntryFn = std::function<int(Thread &)>;

/** The currently executed binary image of a process. */
struct ProcessImage
{
    std::string path;
    BinaryFormat format = BinaryFormat::None;
    std::string entrySymbol;
    hw::Codegen codegen = hw::Codegen::LinuxGcc;
    Persona persona = Persona::Android;
    std::vector<std::string> dylibDeps;
    std::vector<std::string> argv;
    EntryFn entry;
};

class Process
{
  public:
    enum class State
    {
        Running,
        Zombie, ///< exited, not yet reaped by parent
        Reaped,
    };

    Process(Pid pid, std::string name, Process *parent);

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    Process *parent() const { return parent_; }
    /** Re-home this process (init-style orphan adoption on reap). */
    void reparent(Process *p) { parent_ = p; }

    AddressSpace &mem() { return mem_; }
    FdTable &fds() { return fds_; }
    SignalState &signals() { return signals_; }
    ProcessImage &image() { return image_; }
    ExtMap &ext() { return ext_; }

    /** Create a thread in this process (persona is inherited state). */
    Thread &createThread(Persona persona);
    Thread &mainThread();
    const std::vector<std::unique_ptr<Thread>> &threads() const
    {
        return threads_;
    }

    State state() const { return state_; }
    int exitCode() const { return exitCode_; }
    /** Virtual time at which the process exited (for wait). */
    std::uint64_t exitVirtualTime() const { return exitVtime_; }

    /** Kernel-side exit: close fds, flip to Zombie, wake waiters. */
    void terminate(int code, std::uint64_t vtime);

    void markReaped() { state_ = State::Reaped; }

    /** Block the calling host thread until this process is a zombie. */
    void waitUntilZombie();

  private:
    Pid pid_;
    std::string name_;
    Process *parent_;
    AddressSpace mem_;
    FdTable fds_;
    SignalState signals_;
    ProcessImage image_;
    ExtMap ext_;
    std::vector<std::unique_ptr<Thread>> threads_;
    Tid nextTid_ = 1;

    std::mutex mu_;
    std::condition_variable exitCv_;
    State state_ = State::Running;
    int exitCode_ = 0;
    std::uint64_t exitVtime_ = 0;
};

/** Thrown by the exit syscall to unwind a simulated program body. */
struct ProcessExit
{
    int code;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_PROCESS_H
