#include "kernel/vfs.h"

#include <algorithm>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "hw/device_profile.h"

namespace cider::kernel {

Vfs::Vfs(const hw::DeviceProfile &profile) : profile_(profile)
{
    root_ = std::make_shared<Inode>();
    root_->type = InodeType::Directory;
}

void
Vfs::addOverlay(const std::string &prefix, const std::string &target)
{
    overlays_.emplace_back(prefix, target);
    // Longest prefix first so nested overlays behave like stacked
    // mounts.
    std::sort(overlays_.begin(), overlays_.end(),
              [](const auto &a, const auto &b) {
                  return a.first.size() > b.first.size();
              });
}

std::string
Vfs::rewrite(const std::string &path) const
{
    for (const auto &[prefix, target] : overlays_) {
        if (path.size() >= prefix.size() &&
            path.compare(0, prefix.size(), prefix) == 0 &&
            (path.size() == prefix.size() || path[prefix.size()] == '/')) {
            return target + path.substr(prefix.size());
        }
    }
    return path;
}

std::vector<std::string>
Vfs::splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty() && cur != ".")
                parts.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty() && cur != ".")
        parts.push_back(cur);
    return parts;
}

Lookup
Vfs::lookup(const std::string &path) const
{
    Lookup out;
    std::string effective = rewrite(path);
    std::vector<std::string> parts = splitPath(effective);

    InodePtr dir = root_;
    if (parts.empty()) {
        out.inode = root_;
        out.parent = root_;
        return out;
    }
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        if (dir->type != InodeType::Directory) {
            out.err = lnx::NOTDIR;
            return out;
        }
        auto it = dir->children.find(parts[i]);
        if (it == dir->children.end()) {
            out.err = lnx::NOENT;
            return out;
        }
        dir = it->second;
    }
    if (dir->type != InodeType::Directory) {
        out.err = lnx::NOTDIR;
        return out;
    }
    out.parent = dir;
    out.leaf = parts.back();
    auto it = dir->children.find(out.leaf);
    if (it != dir->children.end())
        out.inode = it->second;
    return out;
}

SyscallResult
Vfs::mkdirAll(const std::string &path)
{
    std::string effective = rewrite(path);
    std::vector<std::string> parts = splitPath(effective);
    InodePtr dir = root_;
    for (const auto &part : parts) {
        if (dir->type != InodeType::Directory)
            return SyscallResult::failure(lnx::NOTDIR);
        auto it = dir->children.find(part);
        if (it == dir->children.end()) {
            auto node = std::make_shared<Inode>();
            node->type = InodeType::Directory;
            dir->children[part] = node;
            dir = node;
        } else {
            dir = it->second;
        }
    }
    if (dir->type != InodeType::Directory)
        return SyscallResult::failure(lnx::NOTDIR);
    return SyscallResult::success();
}

SyscallResult
Vfs::mkdir(const std::string &path)
{
    Lookup lk = lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (lk.inode)
        return SyscallResult::failure(lnx::EXIST);
    auto node = std::make_shared<Inode>();
    node->type = InodeType::Directory;
    lk.parent->children[lk.leaf] = node;
    return SyscallResult::success();
}

SyscallResult
Vfs::create(const std::string &path, InodePtr *out)
{
    charge(profile_.storageCreateNs / 2);
    Lookup lk = lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (lk.leaf.empty())
        return SyscallResult::failure(lnx::ISDIR);
    if (lk.inode) {
        if (lk.inode->type == InodeType::Directory)
            return SyscallResult::failure(lnx::ISDIR);
        lk.inode->data.clear();
        if (out)
            *out = lk.inode;
        return SyscallResult::success();
    }
    auto node = std::make_shared<Inode>();
    node->type = InodeType::Regular;
    lk.parent->children[lk.leaf] = node;
    if (out)
        *out = node;
    return SyscallResult::success();
}

SyscallResult
Vfs::unlink(const std::string &path)
{
    charge(profile_.storageCreateNs / 2);
    Lookup lk = lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type == InodeType::Directory)
        return SyscallResult::failure(lnx::ISDIR);
    lk.parent->children.erase(lk.leaf);
    return SyscallResult::success();
}

SyscallResult
Vfs::rename(const std::string &from, const std::string &to)
{
    charge(profile_.storageCreateNs / 4);
    Lookup src = lookup(from);
    if (src.err)
        return SyscallResult::failure(src.err);
    if (!src.inode)
        return SyscallResult::failure(lnx::NOENT);
    Lookup dst = lookup(to);
    if (dst.err)
        return SyscallResult::failure(dst.err);
    if (dst.leaf.empty())
        return SyscallResult::failure(lnx::ISDIR);
    if (dst.inode && dst.inode->type == InodeType::Directory)
        return SyscallResult::failure(lnx::ISDIR);
    dst.parent->children[dst.leaf] = src.inode;
    // Self-rename must not drop the file.
    if (src.parent != dst.parent || src.leaf != dst.leaf)
        src.parent->children.erase(src.leaf);
    return SyscallResult::success();
}

SyscallResult
Vfs::rmdir(const std::string &path)
{
    Lookup lk = lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type != InodeType::Directory)
        return SyscallResult::failure(lnx::NOTDIR);
    if (!lk.inode->children.empty())
        return SyscallResult::failure(lnx::NOTEMPTY);
    lk.parent->children.erase(lk.leaf);
    return SyscallResult::success();
}

SyscallResult
Vfs::readdir(const std::string &path, std::vector<std::string> &out) const
{
    Lookup lk = lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type != InodeType::Directory)
        return SyscallResult::failure(lnx::NOTDIR);
    out.clear();
    for (const auto &[name, node] : lk.inode->children)
        out.push_back(name);
    return SyscallResult::success();
}

SyscallResult
Vfs::mknod(const std::string &path, Device *dev)
{
    Lookup lk = lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (lk.inode)
        return SyscallResult::failure(lnx::EXIST);
    auto node = std::make_shared<Inode>();
    node->type = InodeType::DeviceNode;
    node->device = dev;
    lk.parent->children[lk.leaf] = node;
    return SyscallResult::success();
}

SyscallResult
Vfs::writeFile(const std::string &path, const Bytes &data)
{
    InodePtr node;
    SyscallResult r = create(path, &node);
    if (!r.ok())
        return r;
    charge(data.size() * profile_.storageWriteBytePs / 1000);
    node->data = data;
    return SyscallResult::success(static_cast<std::int64_t>(data.size()));
}

SyscallResult
Vfs::readFile(const std::string &path, Bytes &out) const
{
    Lookup lk = lookup(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type != InodeType::Regular)
        return SyscallResult::failure(lnx::ISDIR);
    charge(lk.inode->data.size() * profile_.storageReadBytePs / 1000);
    out = lk.inode->data;
    return SyscallResult::success(static_cast<std::int64_t>(out.size()));
}

bool
Vfs::exists(const std::string &path) const
{
    Lookup lk = lookup(path);
    return lk.err == 0 && lk.inode != nullptr;
}

} // namespace cider::kernel
