#include "kernel/vfs.h"

#include <algorithm>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "hw/device_profile.h"
#include "kernel/fault_rail.h"

namespace cider::kernel {

namespace {

/** Entries cached before the dentry table is wiped and restarted. */
constexpr std::size_t kDentryCacheCap = 8192;

/** In-place iterator over the components of a path; no allocation,
 *  empty and "." components skipped. */
class PathComponents
{
  public:
    explicit PathComponents(std::string_view path) : rest_(path) {}

    bool
    next(std::string_view *out)
    {
        while (!rest_.empty()) {
            std::size_t slash = rest_.find('/');
            std::string_view c = rest_.substr(0, slash);
            rest_ = (slash == std::string_view::npos)
                        ? std::string_view{}
                        : rest_.substr(slash + 1);
            if (!c.empty() && c != ".") {
                *out = c;
                return true;
            }
        }
        return false;
    }

  private:
    std::string_view rest_;
};

} // namespace

Vfs::Vfs(const hw::DeviceProfile &profile) : profile_(profile)
{
    root_ = std::make_shared<Inode>();
    root_->type = InodeType::Directory;
}

void
Vfs::addOverlay(const std::string &prefix, const std::string &target)
{
    std::lock_guard<std::mutex> lock(mu_);
    overlays_.emplace_back(prefix, target);
    // Longest prefix first so nested overlays behave like stacked
    // mounts.
    std::sort(overlays_.begin(), overlays_.end(),
              [](const auto &a, const auto &b) {
                  return a.first.size() > b.first.size();
              });
    // New overlays change what any path resolves to.
    bumpNamespaceGen();
}

void
Vfs::setDentryCacheEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mu_);
    cacheEnabled_ = enabled;
    if (!enabled)
        dentryCache_.clear();
}

DentryCacheStats
Vfs::dentryCacheStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    DentryCacheStats st;
    st.hits = cacheHits_;
    st.misses = cacheMisses_;
    st.entries = dentryCache_.size();
    st.enabled = cacheEnabled_;
    return st;
}

std::string
Vfs::rewrite(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rewriteImpl(path);
}

std::string
Vfs::rewriteImpl(const std::string &path) const
{
    for (const auto &[prefix, target] : overlays_) {
        if (path.size() >= prefix.size() &&
            path.compare(0, prefix.size(), prefix) == 0 &&
            (path.size() == prefix.size() || path[prefix.size()] == '/')) {
            return target + path.substr(prefix.size());
        }
    }
    return path;
}

std::vector<std::string>
Vfs::splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    PathComponents components(path);
    std::string_view c;
    while (components.next(&c)) {
        if (c == "..") {
            // Resolve to the parent; at the root, ".." stays put.
            if (!parts.empty())
                parts.pop_back();
            continue;
        }
        parts.emplace_back(c);
    }
    return parts;
}

Lookup
Vfs::walk(std::string_view effective) const
{
    Lookup out;
    // One frame per resolved component: (inode, name). ".." pops a
    // frame instead of being treated as a child name; only the final
    // component may be absent.
    std::vector<std::pair<InodePtr, std::string_view>> stack;
    PathComponents components(effective);
    std::string_view c;
    bool missing = false;
    while (components.next(&c)) {
        if (missing) {
            out.err = lnx::NOENT;
            return out;
        }
        if (c == "..") {
            if (stack.empty())
                continue; // "/.." resolves to the root itself
            if (stack.back().first->type != InodeType::Directory) {
                out.err = lnx::NOTDIR;
                return out;
            }
            stack.pop_back();
            continue;
        }
        InodePtr parent = stack.empty() ? root_ : stack.back().first;
        if (parent->type != InodeType::Directory) {
            out.err = lnx::NOTDIR;
            return out;
        }
        auto it = parent->children.find(c);
        InodePtr node =
            it == parent->children.end() ? nullptr : it->second;
        missing = (node == nullptr);
        stack.emplace_back(std::move(node), c);
    }
    if (stack.empty()) {
        out.inode = root_;
        out.parent = root_;
        return out;
    }
    out.parent =
        stack.size() >= 2 ? stack[stack.size() - 2].first : root_;
    out.leaf = std::string(stack.back().second);
    out.inode = stack.back().first;
    return out;
}

Lookup
Vfs::lookup(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lookupImpl(path);
}

Lookup
Vfs::lookupImpl(const std::string &path) const
{
    // Fault site: a failed lookup models a media/metadata read error
    // (checked before the dentry cache so hits cannot mask it).
    if (CIDER_FAULT_POINT("vfs.lookup")) {
        Lookup out;
        out.err = lnx::IO;
        return out;
    }
    if (cacheEnabled_) {
        auto it = dentryCache_.find(path);
        if (it != dentryCache_.end() &&
            it->second.gen == namespaceGen_) {
            ++cacheHits_;
            return it->second.result;
        }
        ++cacheMisses_;
    }
    Lookup out = walk(rewriteImpl(path));
    if (cacheEnabled_ && out.err == 0) {
        if (dentryCache_.size() >= kDentryCacheCap)
            dentryCache_.clear();
        DentryEntry &entry = dentryCache_[path];
        entry.gen = namespaceGen_;
        entry.result = out;
    }
    return out;
}

SyscallResult
Vfs::mkdirAll(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string effective = rewriteImpl(path);
    std::vector<InodePtr> stack;
    PathComponents components(effective);
    std::string_view c;
    while (components.next(&c)) {
        InodePtr dir = stack.empty() ? root_ : stack.back();
        if (dir->type != InodeType::Directory)
            return SyscallResult::failure(lnx::NOTDIR);
        if (c == "..") {
            if (!stack.empty())
                stack.pop_back();
            continue;
        }
        auto it = dir->children.find(c);
        if (it == dir->children.end()) {
            auto node = std::make_shared<Inode>();
            node->type = InodeType::Directory;
            dir->children.emplace(std::string(c), node);
            bumpNamespaceGen();
            stack.push_back(node);
        } else {
            stack.push_back(it->second);
        }
    }
    InodePtr last = stack.empty() ? root_ : stack.back();
    if (last->type != InodeType::Directory)
        return SyscallResult::failure(lnx::NOTDIR);
    return SyscallResult::success();
}

SyscallResult
Vfs::mkdir(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    Lookup lk = lookupImpl(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (lk.inode)
        return SyscallResult::failure(lnx::EXIST);
    auto node = std::make_shared<Inode>();
    node->type = InodeType::Directory;
    lk.parent->children[lk.leaf] = node;
    bumpNamespaceGen();
    return SyscallResult::success();
}

SyscallResult
Vfs::create(const std::string &path, InodePtr *out)
{
    std::lock_guard<std::mutex> lock(mu_);
    return createImpl(path, out);
}

SyscallResult
Vfs::createImpl(const std::string &path, InodePtr *out)
{
    // Fault site: creation failing for want of space.
    if (CIDER_FAULT_POINT("vfs.create"))
        return SyscallResult::failure(lnx::NOSPC);
    charge(profile_.storageCreateNs / 2);
    Lookup lk = lookupImpl(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (lk.leaf.empty())
        return SyscallResult::failure(lnx::ISDIR);
    if (lk.inode) {
        if (lk.inode->type == InodeType::Directory)
            return SyscallResult::failure(lnx::ISDIR);
        lk.inode->data.clear();
        if (out)
            *out = lk.inode;
        return SyscallResult::success();
    }
    auto node = std::make_shared<Inode>();
    node->type = InodeType::Regular;
    lk.parent->children[lk.leaf] = node;
    bumpNamespaceGen();
    if (out)
        *out = node;
    return SyscallResult::success();
}

SyscallResult
Vfs::unlink(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    charge(profile_.storageCreateNs / 2);
    Lookup lk = lookupImpl(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type == InodeType::Directory)
        return SyscallResult::failure(lnx::ISDIR);
    lk.parent->children.erase(lk.leaf);
    bumpNamespaceGen();
    return SyscallResult::success();
}

SyscallResult
Vfs::rename(const std::string &from, const std::string &to)
{
    std::lock_guard<std::mutex> lock(mu_);
    charge(profile_.storageCreateNs / 4);
    Lookup src = lookupImpl(from);
    if (src.err)
        return SyscallResult::failure(src.err);
    if (!src.inode)
        return SyscallResult::failure(lnx::NOENT);
    Lookup dst = lookupImpl(to);
    if (dst.err)
        return SyscallResult::failure(dst.err);
    if (dst.leaf.empty())
        return SyscallResult::failure(lnx::ISDIR);
    if (dst.inode && dst.inode->type == InodeType::Directory)
        return SyscallResult::failure(lnx::ISDIR);
    dst.parent->children[dst.leaf] = src.inode;
    // Self-rename must not drop the file.
    if (src.parent != dst.parent || src.leaf != dst.leaf)
        src.parent->children.erase(src.leaf);
    bumpNamespaceGen();
    return SyscallResult::success();
}

SyscallResult
Vfs::rmdir(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    Lookup lk = lookupImpl(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type != InodeType::Directory)
        return SyscallResult::failure(lnx::NOTDIR);
    if (!lk.inode->children.empty())
        return SyscallResult::failure(lnx::NOTEMPTY);
    lk.parent->children.erase(lk.leaf);
    bumpNamespaceGen();
    return SyscallResult::success();
}

SyscallResult
Vfs::readdir(const std::string &path, std::vector<std::string> &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    Lookup lk = lookupImpl(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type != InodeType::Directory)
        return SyscallResult::failure(lnx::NOTDIR);
    out.clear();
    for (const auto &[name, node] : lk.inode->children)
        out.push_back(name);
    return SyscallResult::success();
}

SyscallResult
Vfs::mknod(const std::string &path, Device *dev)
{
    std::lock_guard<std::mutex> lock(mu_);
    Lookup lk = lookupImpl(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (lk.inode)
        return SyscallResult::failure(lnx::EXIST);
    auto node = std::make_shared<Inode>();
    node->type = InodeType::DeviceNode;
    node->device = dev;
    lk.parent->children[lk.leaf] = node;
    bumpNamespaceGen();
    return SyscallResult::success();
}

SyscallResult
Vfs::writeFile(const std::string &path, const Bytes &data)
{
    std::lock_guard<std::mutex> lock(mu_);
    InodePtr node;
    SyscallResult r = createImpl(path, &node);
    if (!r.ok())
        return r;
    charge(data.size() * profile_.storageWriteBytePs / 1000);
    node->data = data;
    return SyscallResult::success(static_cast<std::int64_t>(data.size()));
}

SyscallResult
Vfs::readFile(const std::string &path, Bytes &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    Lookup lk = lookupImpl(path);
    if (lk.err)
        return SyscallResult::failure(lk.err);
    if (!lk.inode)
        return SyscallResult::failure(lnx::NOENT);
    if (lk.inode->type != InodeType::Regular)
        return SyscallResult::failure(lnx::ISDIR);
    charge(lk.inode->data.size() * profile_.storageReadBytePs / 1000);
    out = lk.inode->data;
    return SyscallResult::success(static_cast<std::int64_t>(out.size()));
}

bool
Vfs::exists(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu_);
    Lookup lk = lookupImpl(path);
    return lk.err == 0 && lk.inode != nullptr;
}

} // namespace cider::kernel
