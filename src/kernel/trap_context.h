/**
 * @file
 * TrapContext: the single record threaded through the whole trap path.
 *
 * Kernel::trap() materialises one TrapContext per kernel entry and
 * hands it to the installed TrapDispatcher, which resolves the target
 * dispatch table and handler entry into it before invoking the
 * handler. Handlers receive the context instead of the old loose
 * (Kernel&, Thread&, SyscallArgs&) triple, so every layer — persona
 * check, convention translation, the syscall body, and the stats/trace
 * subsystem on the way out — sees the same trap record.
 */

#ifndef CIDER_KERNEL_TRAP_CONTEXT_H
#define CIDER_KERNEL_TRAP_CONTEXT_H

#include <cstdint>

#include "kernel/kernel.h"
#include "kernel/thread.h"
#include "kernel/types.h"

namespace cider::kernel {

class TrapTracer;

/**
 * One kernel entry from user space. Created once at Kernel::trap(),
 * filled in as the trap flows down the dispatch layers, and read back
 * by the stats subsystem at trap exit.
 */
struct TrapContext
{
    Kernel &kernel;
    Thread &thread;
    TrapClass cls;
    int nr;
    SyscallArgs &args;

    /** Persona of the calling thread at trap entry (set_persona can
     *  change the thread's persona mid-trap). */
    Persona entryPersona;

    /** Virtual time of the calling thread at trap entry; the stats
     *  layer derives per-syscall latency from the CostClock delta. */
    std::uint64_t enterNs = 0;

    /** Trace sink for this kernel (never null inside a trap). */
    TrapTracer *tracer = nullptr;

    /** Dispatch table the dispatcher selected (null when the trap was
     *  rejected before table select, e.g. wrong persona). */
    const SyscallTable *table = nullptr;

    /** Handler entry the table lookup resolved (null on unknown nr). */
    const SyscallTable::Entry *entry = nullptr;
};

} // namespace cider::kernel

#endif // CIDER_KERNEL_TRAP_CONTEXT_H
