#include "kernel/trap_stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "kernel/kernel.h"
#include "kernel/thread.h"
#include "kernel/trap_context.h"

namespace cider::kernel {

int
SyscallStat::bucketOf(std::uint64_t ns)
{
    int b = 0;
    while (ns > 1 && b < kBuckets - 1) {
        ns >>= 1;
        ++b;
    }
    return b;
}

void
SyscallStat::record(std::uint64_t latency_ns, bool ok)
{
    calls.fetch_add(1, std::memory_order_relaxed);
    if (!ok)
        errors.fetch_add(1, std::memory_order_relaxed);
    totalNs.fetch_add(latency_ns, std::memory_order_relaxed);
    hist[static_cast<std::size_t>(bucketOf(latency_ns))].fetch_add(
        1, std::memory_order_relaxed);

    std::uint64_t seen = minNs.load(std::memory_order_relaxed);
    while (latency_ns < seen &&
           !minNs.compare_exchange_weak(seen, latency_ns,
                                        std::memory_order_relaxed))
        ;
    seen = maxNs.load(std::memory_order_relaxed);
    while (latency_ns > seen &&
           !maxNs.compare_exchange_weak(seen, latency_ns,
                                        std::memory_order_relaxed))
        ;
}

TrapTracer::TrapTracer(std::size_t capacity)
{
    std::size_t cap = 1;
    while (cap < capacity)
        cap <<= 1;
    slots_ = std::make_unique<Slot[]>(cap);
    cap_ = cap;
    mask_ = cap - 1;
}

void
TrapTracer::record(TraceRecord rec)
{
    std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    rec.seq = ticket;
    Slot &slot = slots_[static_cast<std::size_t>(ticket) & mask_];
    std::uint64_t claim = slot.seq.load(std::memory_order_relaxed);
    // Claim even -> odd; a peer holding the slot (writer lapping us,
    // or a snapshot mid-copy) makes us drop rather than tear.
    if ((claim & 1) ||
        !slot.seq.compare_exchange_strong(claim, claim + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    slot.rec = rec;
    slot.seq.store(claim + 2, std::memory_order_release);
}

std::vector<TraceRecord>
TrapTracer::snapshot() const
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t count = std::min<std::uint64_t>(head, cap_);
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = head - count; i < head; ++i) {
        Slot &slot = slots_[static_cast<std::size_t>(i) & mask_];
        std::uint64_t claim = slot.seq.load(std::memory_order_relaxed);
        if ((claim & 1) ||
            !slot.seq.compare_exchange_strong(claim, claim + 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed))
            continue; // a writer holds it; skip, never tear
        TraceRecord rec = slot.rec;
        slot.seq.store(claim, std::memory_order_release);
        // With drops the slot may hold a record from a different lap;
        // the embedded sequence keeps the copy honest.
        if (rec.seq == i)
            out.push_back(rec);
    }
    return out;
}

void
TrapTracer::reset()
{
    // Benchmark warm-up only — not safe against concurrent writers,
    // like every other reset() in the stats subsystem.
    head_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < cap_; ++i) {
        slots_[i].seq.store(0, std::memory_order_relaxed);
        slots_[i].rec = TraceRecord{};
    }
}

TrapStats::TrapStats() = default;

void
TrapStats::attachTable(const SyscallTable &tbl)
{
    for (const SyscallTable *t : tables_)
        if (t == &tbl)
            return;
    tables_.push_back(&tbl);
}

void
TrapStats::recordTrap(const TrapContext &ctx, const SyscallResult &r,
                      std::uint64_t latency_ns)
{
    if (ctx.entry && ctx.entry->stat) {
        ctx.entry->stat->record(latency_ns, r.ok());
    } else if (ctx.table) {
        unknownNr_.fetch_add(1, std::memory_order_relaxed);
    } else if (!r.ok()) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    // A trap with no table that nevertheless succeeded is set_persona,
    // which the dispatcher services before table select; the switch
    // itself was already traced by recordPersonaSwitch().

    TraceRecord rec;
    rec.kind = TraceRecord::Kind::Trap;
    rec.cls = ctx.cls;
    rec.persona = ctx.entryPersona;
    rec.nr = ctx.nr;
    rec.tid = ctx.thread.tid();
    rec.value = r.value;
    rec.err = r.err;
    rec.latencyNs = latency_ns;
    rec.timeNs = ctx.thread.clock().now();
    tracer_.record(rec);
}

void
TrapStats::recordNoReturn(const TrapContext &ctx,
                          std::uint64_t latency_ns)
{
    noReturnTraps_.fetch_add(1, std::memory_order_relaxed);
    if (ctx.entry && ctx.entry->stat)
        ctx.entry->stat->record(latency_ns, true);

    TraceRecord rec;
    rec.kind = TraceRecord::Kind::Trap;
    rec.cls = ctx.cls;
    rec.persona = ctx.entryPersona;
    rec.nr = ctx.nr;
    rec.tid = ctx.thread.tid();
    rec.latencyNs = latency_ns;
    rec.timeNs = ctx.thread.clock().now();
    tracer_.record(rec);
}

void
TrapStats::recordPersonaSwitch(Thread &t, Persona from, Persona to)
{
    personaSwitches_.fetch_add(1, std::memory_order_relaxed);

    TraceRecord rec;
    rec.kind = TraceRecord::Kind::PersonaSwitch;
    rec.persona = from;
    rec.toPersona = to;
    rec.tid = t.tid();
    rec.timeNs = t.clock().now();
    tracer_.record(rec);
}

const SyscallStat *
TrapStats::stat(const std::string &table, int nr) const
{
    for (const SyscallTable *t : tables_) {
        if (t->name() != table)
            continue;
        if (const SyscallTable::Entry *e = t->find(nr))
            return e->stat.get();
        return nullptr;
    }
    return nullptr;
}

std::uint64_t
TrapStats::calls(const std::string &table, int nr) const
{
    const SyscallStat *s = stat(table, nr);
    return s ? s->calls.load(std::memory_order_relaxed) : 0;
}

std::uint64_t
TrapStats::errors(const std::string &table, int nr) const
{
    const SyscallStat *s = stat(table, nr);
    return s ? s->errors.load(std::memory_order_relaxed) : 0;
}

std::uint64_t
TrapStats::totalNs(const std::string &table, int nr) const
{
    const SyscallStat *s = stat(table, nr);
    return s ? s->totalNs.load(std::memory_order_relaxed) : 0;
}

std::uint64_t
TrapStats::tableCalls(const std::string &table) const
{
    std::uint64_t sum = 0;
    for (const SyscallTable *t : tables_) {
        if (t->name() != table)
            continue;
        for (int nr : t->registeredNumbers())
            sum += calls(table, nr);
    }
    return sum;
}

std::uint64_t
TrapStats::totalCalls() const
{
    std::uint64_t sum = 0;
    for (const SyscallTable *t : tables_)
        sum += tableCalls(t->name());
    return sum;
}

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
TrapStats::dump() const
{
    std::string out;
    out += "=== cider trapstats ===\n";

    for (const SyscallTable *t : tables_) {
        std::vector<int> nrs = t->registeredNumbers();
        appendf(out, "table %s: %zu syscalls registered\n",
                t->name().c_str(), nrs.size());
        appendf(out, "  %8s %-18s %10s %8s %14s %10s %10s\n", "nr",
                "name", "calls", "errors", "total-ns", "min-ns",
                "max-ns");
        for (int nr : nrs) {
            const SyscallTable::Entry *e = t->find(nr);
            if (!e || !e->stat)
                continue;
            const SyscallStat &s = *e->stat;
            std::uint64_t n = s.calls.load(std::memory_order_relaxed);
            if (n == 0)
                continue;
            std::uint64_t mn = s.minNs.load(std::memory_order_relaxed);
            appendf(out,
                    "  %8d %-18s %10" PRIu64 " %8" PRIu64 " %14" PRIu64
                    " %10" PRIu64 " %10" PRIu64 "\n",
                    nr, e->name ? e->name : "?", n,
                    s.errors.load(std::memory_order_relaxed),
                    s.totalNs.load(std::memory_order_relaxed),
                    mn == ~std::uint64_t{0} ? 0 : mn,
                    s.maxNs.load(std::memory_order_relaxed));
            out += "           hist(ns):";
            for (int b = 0; b < SyscallStat::kBuckets; ++b) {
                std::uint64_t c = s.hist[static_cast<std::size_t>(b)]
                                      .load(std::memory_order_relaxed);
                if (c == 0)
                    continue;
                appendf(out, " [2^%d]=%" PRIu64, b, c);
            }
            out += "\n";
        }
    }

    appendf(out, "persona-switches: %" PRIu64 "\n", personaSwitches());
    appendf(out, "rejected-traps: %" PRIu64 "\n", rejectedTraps());
    appendf(out, "unknown-syscalls: %" PRIu64 "\n", unknownSyscalls());
    appendf(out, "noreturn-traps: %" PRIu64 "\n",
            noReturnTraps_.load(std::memory_order_relaxed));
    appendf(out, "badarg-traps: %" PRIu64 "\n", badArgTraps());
    appendf(out, "oom-kills: %" PRIu64 "\n", oomKills());

    std::vector<TraceRecord> trace = tracer_.snapshot();
    appendf(out, "trace: %zu of %" PRIu64 " records\n", trace.size(),
            tracer_.recorded());
    for (const TraceRecord &r : trace) {
        if (r.kind == TraceRecord::Kind::PersonaSwitch) {
            appendf(out,
                    "  #%-6" PRIu64 " tid=%-4d set_persona %s -> %s "
                    "t=%" PRIu64 "\n",
                    r.seq, r.tid, personaName(r.persona),
                    personaName(r.toPersona), r.timeNs);
            continue;
        }
        appendf(out,
                "  #%-6" PRIu64 " tid=%-4d %s %s nr=%d val=%lld "
                "err=%d lat=%" PRIu64 " t=%" PRIu64 "\n",
                r.seq, r.tid, personaName(r.persona),
                trapClassName(r.cls), r.nr,
                static_cast<long long>(r.value), r.err, r.latencyNs,
                r.timeNs);
    }
    return out;
}

void
TrapStats::reset()
{
    for (const SyscallTable *t : tables_) {
        for (int nr : t->registeredNumbers()) {
            const SyscallTable::Entry *e = t->find(nr);
            if (!e || !e->stat)
                continue;
            SyscallStat &s = *e->stat;
            s.calls.store(0, std::memory_order_relaxed);
            s.errors.store(0, std::memory_order_relaxed);
            s.totalNs.store(0, std::memory_order_relaxed);
            s.minNs.store(~std::uint64_t{0}, std::memory_order_relaxed);
            s.maxNs.store(0, std::memory_order_relaxed);
            for (auto &b : s.hist)
                b.store(0, std::memory_order_relaxed);
        }
    }
    personaSwitches_.store(0, std::memory_order_relaxed);
    rejected_.store(0, std::memory_order_relaxed);
    unknownNr_.store(0, std::memory_order_relaxed);
    noReturnTraps_.store(0, std::memory_order_relaxed);
    badArgTraps_.store(0, std::memory_order_relaxed);
    oomKills_.store(0, std::memory_order_relaxed);
    tracer_.reset();
}

SyscallResult
TrapStatsDevice::read(Thread &, Bytes &out, std::size_t n)
{
    std::string text = stats_.dump();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(),
               text.begin() + static_cast<std::ptrdiff_t>(take));
    return SyscallResult::success(static_cast<std::int64_t>(take));
}

} // namespace cider::kernel
