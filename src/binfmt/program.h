/**
 * @file
 * Program text, symbols, and library images.
 *
 * Binaries in the simulator are real byte blobs (see elf.h/macho.h)
 * whose *text* is a named entry in a ProgramRegistry: a C++ callable
 * standing in for native machine code. Dynamic libraries are
 * LibraryImage objects whose exports are NativeFn symbols; the
 * dynamic linkers (dyld, the Android linker) resolve against a
 * LibraryRegistry the way the real loaders walk the filesystem.
 */

#ifndef CIDER_BINFMT_PROGRAM_H
#define CIDER_BINFMT_PROGRAM_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "kernel/process.h"
#include "kernel/types.h"

namespace cider::kernel {
class Kernel;
class Thread;
} // namespace cider::kernel

namespace cider::binfmt {

/** A dynamically typed value crossing a simulated function boundary. */
using Value = std::variant<std::monostate, std::int64_t, double,
                           std::string, void *>;

/** Extract an integer (accepting monostate as 0). */
std::int64_t valueI64(const Value &v);
double valueF64(const Value &v);
std::string valueStr(const Value &v);
void *valuePtr(const Value &v);

struct UserEnv;

/** "Native code": the body of a function exported by a library. */
using NativeFn = std::function<Value(UserEnv &, std::vector<Value> &)>;

/** Program entry point ("main" of a binary). */
using ProgramFn = std::function<int(UserEnv &)>;

/**
 * The user-space execution environment of a running simulated
 * program: which kernel/thread it runs on and its argv.
 */
struct UserEnv
{
    kernel::Kernel &kernel;
    kernel::Thread &thread;
    std::vector<std::string> argv;

    kernel::Process &process() { return thread.process(); }
};

/** One exported symbol of a library. */
struct Symbol
{
    std::string name;
    NativeFn fn;
};

/** Export table of a library image. */
class SymbolTable
{
  public:
    void add(const std::string &name, NativeFn fn);
    const Symbol *find(const std::string &name) const;
    std::vector<std::string> names() const;
    std::size_t size() const { return syms_.size(); }

  private:
    std::map<std::string, Symbol> syms_;
};

/**
 * A shared library as it exists "on disk": metadata plus callable
 * exports. Real bytes for the metadata live in VFS files; callables
 * are resolved through the registry by image name, mirroring how the
 * prototype copies binaries from iOS and runs them unmodified.
 */
struct LibraryImage
{
    std::string name;
    kernel::BinaryFormat format = kernel::BinaryFormat::MachO;
    std::vector<std::string> deps;
    std::uint64_t pages = 64; ///< mapped size (4 KB pages)
    /**
     * Handlers the image registers with its libc when loaded. dyld
     * registering one exit callback per image — and iOS libraries
     * installing many pthread_atfork callbacks — dominates iOS
     * fork/exit cost in the paper's Figure 5.
     */
    int atforkHandlers = 0;
    int exitHandlers = 0;
    SymbolTable exports;
    std::function<void(UserEnv &)> initializer;
};

/** All registered library images (one namespace per system). */
class LibraryRegistry
{
  public:
    LibraryImage &add(LibraryImage image);
    LibraryImage *find(const std::string &name);
    const LibraryImage *find(const std::string &name) const;
    std::vector<std::string> names() const;
    std::size_t size() const { return images_.size(); }

  private:
    std::map<std::string, std::unique_ptr<LibraryImage>> images_;
};

/** Registered program entry points ("text segments"). */
class ProgramRegistry
{
  public:
    void add(const std::string &name, ProgramFn fn);
    const ProgramFn *find(const std::string &name) const;
    std::size_t size() const { return programs_.size(); }

  private:
    std::map<std::string, ProgramFn> programs_;
};

} // namespace cider::binfmt

#endif // CIDER_BINFMT_PROGRAM_H
