/**
 * @file
 * ELF object model: builder, byte serialisation, and parser.
 *
 * The domestic counterpart of macho.h: Android binaries and shared
 * objects are ELF images with an entry symbol, program headers
 * (segments), DT_NEEDED dependencies, and a dynamic-symbol export
 * list (used by the diplomat generator to match foreign imports to
 * domestic exports).
 */

#ifndef CIDER_BINFMT_ELF_H
#define CIDER_BINFMT_ELF_H

#include <optional>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "hw/device_profile.h"

namespace cider::binfmt {

/** "\x7fELF" little-endian. */
inline constexpr std::uint32_t kElfMagic = 0x464c457f;

/** ELF object types we model (real ET_* values). */
enum class ElfType : std::uint16_t
{
    Exec = 2, ///< ET_EXEC
    Dyn = 3,  ///< ET_DYN (shared object)
};

struct ElfSegment
{
    std::string name;
    std::uint64_t pages;
};

/** Parsed (or to-be-built) ELF image. */
struct ElfImage
{
    ElfType type = ElfType::Exec;
    hw::Codegen codegen = hw::Codegen::LinuxGcc;
    std::string entrySymbol;
    std::vector<ElfSegment> segments;
    std::vector<std::string> needed;  ///< DT_NEEDED entries
    std::vector<std::string> dynsyms; ///< exported dynamic symbols

    std::uint64_t totalPages() const;
};

/** Fluent builder producing serialised ELF blobs. */
class ElfBuilder
{
  public:
    explicit ElfBuilder(ElfType type = ElfType::Exec);

    ElfBuilder &entry(const std::string &symbol);
    ElfBuilder &segment(const std::string &name, std::uint64_t pages);
    ElfBuilder &needed(const std::string &name);
    ElfBuilder &exportSymbol(const std::string &name);
    ElfBuilder &codegen(hw::Codegen cg);

    Bytes build() const;
    const ElfImage &image() const { return image_; }

  private:
    ElfImage image_;
};

Bytes serializeElf(const ElfImage &image);
bool isElf(const Bytes &blob);
std::optional<ElfImage> parseElf(const Bytes &blob);

} // namespace cider::binfmt

#endif // CIDER_BINFMT_ELF_H
