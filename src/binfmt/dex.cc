#include "binfmt/dex.h"

#include <atomic>
#include <cstring>

#include "base/logging.h"

namespace cider::binfmt {

std::uint64_t
DexFile::nextStamp()
{
    // Process-wide, monotone, never reused: (identity, version) pairs
    // are unique across every DexFile ever built in this process, so
    // a translation cached against one content snapshot can never be
    // revived by a different file or a mutated copy.
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t
DexFile::intern(const std::string &s)
{
    for (std::uint32_t i = 0; i < strings.size(); ++i)
        if (strings[i] == s)
            return i;
    strings.push_back(s);
    touch();
    return static_cast<std::uint32_t>(strings.size()) - 1;
}

const std::string &
DexFile::string(std::uint32_t idx) const
{
    if (idx >= strings.size()) {
        // Reachable from a foreign (installed) image, so it must not
        // panic: parseDex validates indices, but a DexFile built
        // in-process can still hold a stale one. Resolve to the empty
        // string; the interpreter then fails the call cleanly.
        warn("dex string index ", idx, " out of range in ", name);
        static const std::string empty;
        return empty;
    }
    return strings[idx];
}

const DexMethod *
DexFile::method(const std::string &method_name) const
{
    auto it = methods.find(method_name);
    return it == methods.end() ? nullptr : &it->second;
}

Bytes
serializeDex(const DexFile &file)
{
    ByteWriter w;
    w.u32(kDexMagic);
    w.str(file.name);
    w.u32(static_cast<std::uint32_t>(file.strings.size()));
    for (const auto &s : file.strings)
        w.str(s);
    w.u32(static_cast<std::uint32_t>(file.methods.size()));
    for (const auto &[name, m] : file.methods) {
        w.str(name);
        w.u32(m.nlocals);
        w.u32(static_cast<std::uint32_t>(m.code.size()));
        for (const auto &insn : m.code) {
            w.u8(static_cast<std::uint8_t>(insn.op));
            w.i64(insn.a);
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(insn.f));
            std::memcpy(&bits, &insn.f, sizeof(bits));
            w.u64(bits);
            w.u32(insn.sidx);
        }
    }
    return w.take();
}

std::optional<DexFile>
parseDex(const Bytes &blob)
{
    ByteReader r(blob);
    if (r.u32() != kDexMagic || !r.ok())
        return std::nullopt;
    DexFile file;
    file.name = r.str();
    std::uint32_t nstrings = r.u32();
    for (std::uint32_t i = 0; i < nstrings && r.ok(); ++i)
        file.strings.push_back(r.str());
    std::uint32_t nmethods = r.u32();
    for (std::uint32_t i = 0; i < nmethods && r.ok(); ++i) {
        DexMethod m;
        m.name = r.str();
        m.nlocals = r.u32();
        std::uint32_t ninsns = r.u32();
        for (std::uint32_t j = 0; j < ninsns && r.ok(); ++j) {
            DexInsn insn;
            insn.op = static_cast<DexOp>(r.u8());
            insn.a = r.i64();
            std::uint64_t bits = r.u64();
            std::memcpy(&insn.f, &bits, sizeof(bits));
            insn.sidx = r.u32();
            m.code.push_back(insn);
        }
        file.methods[m.name] = std::move(m);
    }
    if (!r.ok())
        return std::nullopt;
    // A corrupt image is rejected here, not detected mid-execution:
    // every string-referencing instruction must resolve.
    for (const auto &[name, m] : file.methods)
        for (const DexInsn &insn : m.code)
            if ((insn.op == DexOp::CallNative ||
                 insn.op == DexOp::CallMethod) &&
                insn.sidx >= file.strings.size())
                return std::nullopt;
    file.touch();
    return file;
}

DexAssembler::DexAssembler(DexFile &file, const std::string &method_name,
                           std::uint32_t nlocals)
    : file_(file)
{
    method_.name = method_name;
    method_.nlocals = nlocals;
}

void
DexAssembler::finish()
{
    if (finished_)
        // invariant-only: the assembler is driven by in-tree code
        // generators, never by a foreign image.
        cider_panic("DexAssembler::finish called twice for ", method_.name);
    finished_ = true;
    file_.methods[method_.name] = std::move(method_);
    file_.touch();
}

DexAssembler &
DexAssembler::op(DexOp o, std::int64_t a)
{
    DexInsn insn;
    insn.op = o;
    insn.a = a;
    method_.code.push_back(insn);
    return *this;
}

DexAssembler &
DexAssembler::constI(std::int64_t v)
{
    return op(DexOp::ConstI, v);
}

DexAssembler &
DexAssembler::constF(double v)
{
    DexInsn insn;
    insn.op = DexOp::ConstF;
    insn.f = v;
    method_.code.push_back(insn);
    return *this;
}

DexAssembler &
DexAssembler::load(std::int64_t slot)
{
    return op(DexOp::Load, slot);
}

DexAssembler &
DexAssembler::store(std::int64_t slot)
{
    return op(DexOp::Store, slot);
}

DexAssembler &
DexAssembler::callNative(const std::string &name)
{
    DexInsn insn;
    insn.op = DexOp::CallNative;
    insn.sidx = file_.intern(name);
    method_.code.push_back(insn);
    return *this;
}

DexAssembler &
DexAssembler::callMethod(const std::string &name)
{
    DexInsn insn;
    insn.op = DexOp::CallMethod;
    insn.sidx = file_.intern(name);
    method_.code.push_back(insn);
    return *this;
}

DexAssembler &
DexAssembler::ret()
{
    return op(DexOp::Ret);
}

std::int64_t
DexAssembler::here() const
{
    return static_cast<std::int64_t>(method_.code.size());
}

std::size_t
DexAssembler::jmp()
{
    op(DexOp::Jmp, -1);
    return method_.code.size() - 1;
}

std::size_t
DexAssembler::jz()
{
    op(DexOp::Jz, -1);
    return method_.code.size() - 1;
}

void
DexAssembler::patch(std::size_t at, std::int64_t target)
{
    if (at >= method_.code.size())
        // invariant-only: patch targets come from this assembler's
        // own jmp()/jz() return values.
        cider_panic("DexAssembler::patch out of range");
    method_.code[at].a = target;
}

} // namespace cider::binfmt
