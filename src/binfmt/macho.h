/**
 * @file
 * Mach-O object model: builder, byte serialisation, and parser.
 *
 * Mirrors the structure of real Mach-O at the granularity Cider's
 * kernel loader needs: a magic/filetype header followed by load
 * commands (segments, dylib dependencies, the entry point, and an
 * export list for dylibs). Images round-trip through genuine byte
 * blobs, so the kernel loader parses what the builder wrote and
 * truncation/corruption are real failure modes.
 */

#ifndef CIDER_BINFMT_MACHO_H
#define CIDER_BINFMT_MACHO_H

#include <optional>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "hw/device_profile.h"

namespace cider::binfmt {

/** Mach-O magic (MH_MAGIC_64 of the real format). */
inline constexpr std::uint32_t kMachOMagic = 0xfeedfacf;

/** Mach-O file types we model. */
enum class MachOFileType : std::uint32_t
{
    Execute = 2, ///< MH_EXECUTE
    Dylib = 6,   ///< MH_DYLIB
};

/** Load command tags (matching real LC_* values where they exist). */
enum class MachOCmd : std::uint32_t
{
    Segment = 0x19,   ///< LC_SEGMENT_64
    LoadDylib = 0xc,  ///< LC_LOAD_DYLIB
    Main = 0x80000028,///< LC_MAIN
    ExportTrie = 0x33,///< export list (dyld info stand-in)
    BuildTool = 0x100 ///< toolchain tag (codegen)
};

/** One segment load command. */
struct MachOSegment
{
    std::string name;    ///< "__TEXT", "__DATA", ...
    std::uint64_t pages; ///< mapped size in 4 KB pages
};

/** Parsed (or to-be-built) Mach-O image. */
struct MachOImage
{
    MachOFileType fileType = MachOFileType::Execute;
    hw::Codegen codegen = hw::Codegen::XcodeClang;
    std::string entrySymbol;               ///< LC_MAIN target
    std::vector<MachOSegment> segments;
    std::vector<std::string> dylibs;       ///< LC_LOAD_DYLIB names
    std::vector<std::string> exports;      ///< dylib export names

    std::uint64_t totalPages() const;
};

/** Fluent builder producing serialised Mach-O blobs. */
class MachOBuilder
{
  public:
    explicit MachOBuilder(MachOFileType type = MachOFileType::Execute);

    MachOBuilder &entry(const std::string &symbol);
    MachOBuilder &segment(const std::string &name, std::uint64_t pages);
    MachOBuilder &dylib(const std::string &name);
    MachOBuilder &exportSymbol(const std::string &name);
    MachOBuilder &codegen(hw::Codegen cg);

    /** Serialise to bytes. */
    Bytes build() const;

    const MachOImage &image() const { return image_; }

  private:
    MachOImage image_;
};

/** Serialise an image (used by the builder and by tests). */
Bytes serializeMachO(const MachOImage &image);

/** True when @p blob starts with the Mach-O magic. */
bool isMachO(const Bytes &blob);

/** Parse; std::nullopt on malformed or truncated input. */
std::optional<MachOImage> parseMachO(const Bytes &blob);

} // namespace cider::binfmt

#endif // CIDER_BINFMT_MACHO_H
