/**
 * @file
 * DexLite: the Dalvik-style bytecode container.
 *
 * Android apps in the simulator ship bytecode that the Dalvik VM
 * (android/dalvik.h) *interprets*, while iOS apps run native text.
 * That asymmetry — interpreted dex vs. native Objective-C — is what
 * makes the iOS PassMark app faster than the Android one on identical
 * hardware in the paper's Figure 6, so the interpreter here is a real
 * one: a stack machine with a per-instruction dispatch cost.
 */

#ifndef CIDER_BINFMT_DEX_H
#define CIDER_BINFMT_DEX_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/bytes.h"

namespace cider::binfmt {

/** DexLite opcodes. */
enum class DexOp : std::uint8_t
{
    Nop = 0,
    ConstI,  ///< push immediate integer (a)
    ConstF,  ///< push immediate double (f)
    Load,    ///< push local[a]
    Store,   ///< pop into local[a]
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    FAdd,
    FSub,
    FMul,
    FDiv,
    CmpLt,   ///< push (x < y)
    CmpLe,
    CmpEq,
    Jmp,     ///< pc = a
    Jz,      ///< pop; if zero pc = a
    Dup,
    Drop,
    Swap,
    CallNative, ///< call bridge function strings[sidx]
    CallMethod, ///< call method strings[sidx] in same file
    Ret,        ///< pop return value, leave method
    ArrNew,     ///< pop n, push new int array of n zeros
    ArrGet,     ///< pop idx, arr; push arr[idx]
    ArrSet,     ///< pop val, idx, arr
    ArrLen,
};

/** One instruction. */
struct DexInsn
{
    DexOp op = DexOp::Nop;
    std::int64_t a = 0;       ///< integer operand / jump target
    double f = 0.0;           ///< float immediate
    std::uint32_t sidx = 0;   ///< string-table index
};

/** One method: code plus its local-variable count. */
struct DexMethod
{
    std::string name;
    std::uint32_t nlocals = 0;
    std::vector<DexInsn> code;
};

/** A .dex container. */
struct DexFile
{
    std::string name;
    std::vector<std::string> strings;
    std::map<std::string, DexMethod> methods;

    /**
     * Stable identity for translation-cache keys. `identity` is
     * assigned once per DexFile object (copies share it — they really
     * are the same logical file); `version` is re-stamped from the
     * same global counter on every mutation that can change code or
     * the string table, so a cache entry keyed on (identity, version)
     * can never observe two different method bodies. Code that
     * mutates `methods` directly (rather than through intern/
     * DexAssembler/parseDex) must call touch() afterwards.
     */
    std::uint64_t identity = nextStamp();
    std::uint64_t version = identity;

    /** Re-stamp `version`; call after any mutation. */
    void touch() { version = nextStamp(); }

    /** Intern @p s, returning its table index. */
    std::uint32_t intern(const std::string &s);
    const std::string &string(std::uint32_t idx) const;
    const DexMethod *method(const std::string &name) const;

  private:
    static std::uint64_t nextStamp();
};

inline constexpr std::uint32_t kDexMagic = 0x0a786564; // "dex\n"

Bytes serializeDex(const DexFile &file);
std::optional<DexFile> parseDex(const Bytes &blob);

/**
 * Small assembler with label fix-ups for writing test/benchmark
 * methods by hand.
 */
class DexAssembler
{
  public:
    DexAssembler(DexFile &file, const std::string &method_name,
                 std::uint32_t nlocals);

    /** Finish and install the method into the file. */
    void finish();

    DexAssembler &op(DexOp o, std::int64_t a = 0);
    DexAssembler &constI(std::int64_t v);
    DexAssembler &constF(double v);
    DexAssembler &load(std::int64_t slot);
    DexAssembler &store(std::int64_t slot);
    DexAssembler &callNative(const std::string &name);
    DexAssembler &callMethod(const std::string &name);
    DexAssembler &ret();

    /** Current instruction index (jump target). */
    std::int64_t here() const;

    /** Emit a jump with a patchable target; returns the insn index. */
    std::size_t jmp();
    std::size_t jz();
    /** Patch insn @p at to jump to @p target. */
    void patch(std::size_t at, std::int64_t target);

  private:
    DexFile &file_;
    DexMethod method_;
    bool finished_ = false;
};

} // namespace cider::binfmt

#endif // CIDER_BINFMT_DEX_H
