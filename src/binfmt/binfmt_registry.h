/**
 * @file
 * Kernel binfmt handlers: the ELF loader and Cider's in-kernel
 * Mach-O loader.
 *
 * The Mach-O loader is the entry point of the whole compatibility
 * architecture: when it loads an iOS binary it *tags the current
 * thread with the iOS persona*, which from then on selects the XNU
 * kernel ABI for every trap the thread makes (paper section 4.1).
 */

#ifndef CIDER_BINFMT_BINFMT_REGISTRY_H
#define CIDER_BINFMT_BINFMT_REGISTRY_H

#include <functional>

#include "binfmt/elf.h"
#include "binfmt/macho.h"
#include "binfmt/program.h"
#include "kernel/kernel.h"

namespace cider::binfmt {

/**
 * User-space bootstrap run before a fresh image's main: the dynamic
 * linker (dyld for Mach-O, the bionic linker for ELF) plus libc
 * initialisation. Wired in by the system layer so loaders stay
 * independent of the user-space stacks they start.
 */
using MachOBootstrap =
    std::function<void(UserEnv &, const MachOImage &)>;
using ElfBootstrap = std::function<void(UserEnv &, const ElfImage &)>;

/** Domestic ELF binfmt handler. */
class ElfLoader : public kernel::BinaryLoader
{
  public:
    ElfLoader(const ProgramRegistry &programs, ElfBootstrap bootstrap)
        : programs_(programs), bootstrap_(std::move(bootstrap))
    {}

    const char *name() const override { return "binfmt-elf"; }
    bool probe(const Bytes &blob) const override { return isElf(blob); }
    kernel::SyscallResult load(kernel::Kernel &k, kernel::Thread &t,
                               const Bytes &blob, const std::string &path,
                               const std::vector<std::string> &argv)
        override;

  private:
    const ProgramRegistry &programs_;
    ElfBootstrap bootstrap_;
};

/** Cider's Mach-O binfmt handler built into the domestic kernel. */
class MachOLoader : public kernel::BinaryLoader
{
  public:
    MachOLoader(const ProgramRegistry &programs, MachOBootstrap bootstrap)
        : programs_(programs), bootstrap_(std::move(bootstrap))
    {}

    const char *name() const override { return "binfmt-macho"; }
    bool probe(const Bytes &blob) const override { return isMachO(blob); }
    kernel::SyscallResult load(kernel::Kernel &k, kernel::Thread &t,
                               const Bytes &blob, const std::string &path,
                               const std::vector<std::string> &argv)
        override;

  private:
    const ProgramRegistry &programs_;
    MachOBootstrap bootstrap_;
};

} // namespace cider::binfmt

#endif // CIDER_BINFMT_BINFMT_REGISTRY_H
