#include "binfmt/elf.h"

namespace cider::binfmt {

namespace {

enum class Section : std::uint32_t
{
    Segment = 1,
    Needed = 2,
    Dynsym = 3,
    Entry = 4,
    Tool = 5,
};

} // namespace

std::uint64_t
ElfImage::totalPages() const
{
    std::uint64_t total = 0;
    for (const auto &seg : segments)
        total += seg.pages;
    return total;
}

ElfBuilder::ElfBuilder(ElfType type)
{
    image_.type = type;
}

ElfBuilder &
ElfBuilder::entry(const std::string &symbol)
{
    image_.entrySymbol = symbol;
    return *this;
}

ElfBuilder &
ElfBuilder::segment(const std::string &name, std::uint64_t pages)
{
    image_.segments.push_back({name, pages});
    return *this;
}

ElfBuilder &
ElfBuilder::needed(const std::string &name)
{
    image_.needed.push_back(name);
    return *this;
}

ElfBuilder &
ElfBuilder::exportSymbol(const std::string &name)
{
    image_.dynsyms.push_back(name);
    return *this;
}

ElfBuilder &
ElfBuilder::codegen(hw::Codegen cg)
{
    image_.codegen = cg;
    return *this;
}

Bytes
ElfBuilder::build() const
{
    return serializeElf(image_);
}

Bytes
serializeElf(const ElfImage &image)
{
    ByteWriter w;
    w.u32(kElfMagic);
    w.u16(static_cast<std::uint16_t>(image.type));

    std::uint32_t nrecs = static_cast<std::uint32_t>(
        image.segments.size() + image.needed.size() +
        image.dynsyms.size() + (image.entrySymbol.empty() ? 0 : 1) + 1);
    w.u32(nrecs);

    for (const auto &seg : image.segments) {
        w.u32(static_cast<std::uint32_t>(Section::Segment));
        w.str(seg.name);
        w.u64(seg.pages);
    }
    for (const auto &dep : image.needed) {
        w.u32(static_cast<std::uint32_t>(Section::Needed));
        w.str(dep);
    }
    for (const auto &sym : image.dynsyms) {
        w.u32(static_cast<std::uint32_t>(Section::Dynsym));
        w.str(sym);
    }
    if (!image.entrySymbol.empty()) {
        w.u32(static_cast<std::uint32_t>(Section::Entry));
        w.str(image.entrySymbol);
    }
    w.u32(static_cast<std::uint32_t>(Section::Tool));
    w.u8(image.codegen == hw::Codegen::XcodeClang ? 1 : 0);

    return w.take();
}

bool
isElf(const Bytes &blob)
{
    if (blob.size() < 4)
        return false;
    ByteReader r(blob);
    return r.u32() == kElfMagic;
}

std::optional<ElfImage>
parseElf(const Bytes &blob)
{
    ByteReader r(blob);
    if (r.u32() != kElfMagic || !r.ok())
        return std::nullopt;

    ElfImage image;
    std::uint16_t type = r.u16();
    if (type != static_cast<std::uint16_t>(ElfType::Exec) &&
        type != static_cast<std::uint16_t>(ElfType::Dyn))
        return std::nullopt;
    image.type = static_cast<ElfType>(type);

    std::uint32_t nrecs = r.u32();
    if (!r.ok())
        return std::nullopt;
    for (std::uint32_t i = 0; i < nrecs; ++i) {
        std::uint32_t tag = r.u32();
        if (!r.ok())
            return std::nullopt;
        switch (static_cast<Section>(tag)) {
          case Section::Segment: {
              ElfSegment seg;
              seg.name = r.str();
              seg.pages = r.u64();
              image.segments.push_back(std::move(seg));
              break;
          }
          case Section::Needed:
            image.needed.push_back(r.str());
            break;
          case Section::Dynsym:
            image.dynsyms.push_back(r.str());
            break;
          case Section::Entry:
            image.entrySymbol = r.str();
            break;
          case Section::Tool:
            image.codegen = r.u8() ? hw::Codegen::XcodeClang
                                   : hw::Codegen::LinuxGcc;
            break;
          default:
            return std::nullopt;
        }
        if (!r.ok())
            return std::nullopt;
    }
    return image;
}

} // namespace cider::binfmt
