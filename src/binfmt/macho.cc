#include "binfmt/macho.h"

namespace cider::binfmt {

std::uint64_t
MachOImage::totalPages() const
{
    std::uint64_t total = 0;
    for (const auto &seg : segments)
        total += seg.pages;
    return total;
}

MachOBuilder::MachOBuilder(MachOFileType type)
{
    image_.fileType = type;
}

MachOBuilder &
MachOBuilder::entry(const std::string &symbol)
{
    image_.entrySymbol = symbol;
    return *this;
}

MachOBuilder &
MachOBuilder::segment(const std::string &name, std::uint64_t pages)
{
    image_.segments.push_back({name, pages});
    return *this;
}

MachOBuilder &
MachOBuilder::dylib(const std::string &name)
{
    image_.dylibs.push_back(name);
    return *this;
}

MachOBuilder &
MachOBuilder::exportSymbol(const std::string &name)
{
    image_.exports.push_back(name);
    return *this;
}

MachOBuilder &
MachOBuilder::codegen(hw::Codegen cg)
{
    image_.codegen = cg;
    return *this;
}

Bytes
MachOBuilder::build() const
{
    return serializeMachO(image_);
}

Bytes
serializeMachO(const MachOImage &image)
{
    ByteWriter w;
    w.u32(kMachOMagic);
    w.u32(static_cast<std::uint32_t>(image.fileType));

    std::uint32_t ncmds = static_cast<std::uint32_t>(
        image.segments.size() + image.dylibs.size() +
        image.exports.size() + (image.entrySymbol.empty() ? 0 : 1) + 1);
    w.u32(ncmds);

    for (const auto &seg : image.segments) {
        w.u32(static_cast<std::uint32_t>(MachOCmd::Segment));
        w.str(seg.name);
        w.u64(seg.pages);
    }
    for (const auto &dylib : image.dylibs) {
        w.u32(static_cast<std::uint32_t>(MachOCmd::LoadDylib));
        w.str(dylib);
    }
    for (const auto &sym : image.exports) {
        w.u32(static_cast<std::uint32_t>(MachOCmd::ExportTrie));
        w.str(sym);
    }
    if (!image.entrySymbol.empty()) {
        w.u32(static_cast<std::uint32_t>(MachOCmd::Main));
        w.str(image.entrySymbol);
    }
    w.u32(static_cast<std::uint32_t>(MachOCmd::BuildTool));
    w.u8(image.codegen == hw::Codegen::XcodeClang ? 1 : 0);

    return w.take();
}

bool
isMachO(const Bytes &blob)
{
    if (blob.size() < 4)
        return false;
    ByteReader r(blob);
    return r.u32() == kMachOMagic;
}

std::optional<MachOImage>
parseMachO(const Bytes &blob)
{
    ByteReader r(blob);
    if (r.u32() != kMachOMagic || !r.ok())
        return std::nullopt;

    MachOImage image;
    std::uint32_t filetype = r.u32();
    if (filetype != static_cast<std::uint32_t>(MachOFileType::Execute) &&
        filetype != static_cast<std::uint32_t>(MachOFileType::Dylib))
        return std::nullopt;
    image.fileType = static_cast<MachOFileType>(filetype);

    std::uint32_t ncmds = r.u32();
    if (!r.ok())
        return std::nullopt;
    for (std::uint32_t i = 0; i < ncmds; ++i) {
        std::uint32_t cmd = r.u32();
        if (!r.ok())
            return std::nullopt;
        switch (static_cast<MachOCmd>(cmd)) {
          case MachOCmd::Segment: {
              MachOSegment seg;
              seg.name = r.str();
              seg.pages = r.u64();
              image.segments.push_back(std::move(seg));
              break;
          }
          case MachOCmd::LoadDylib:
            image.dylibs.push_back(r.str());
            break;
          case MachOCmd::ExportTrie:
            image.exports.push_back(r.str());
            break;
          case MachOCmd::Main:
            image.entrySymbol = r.str();
            break;
          case MachOCmd::BuildTool:
            image.codegen = r.u8() ? hw::Codegen::XcodeClang
                                   : hw::Codegen::LinuxGcc;
            break;
          default:
            return std::nullopt; // unknown load command
        }
        if (!r.ok())
            return std::nullopt;
    }
    return image;
}

} // namespace cider::binfmt
