#include "binfmt/binfmt_registry.h"

#include "base/cost_clock.h"
#include "base/logging.h"
#include "kernel/fault_rail.h"

namespace cider::binfmt {

namespace {

/** Parse/validate work every loader does over the image bytes. */
void
chargeLoaderWork(kernel::Kernel &k, std::size_t blob_size)
{
    // Header walk plus segment setup: a few thousand cycles, scaling
    // mildly with image size.
    charge(k.profile().cyclesToNs(3000.0 +
                                  static_cast<double>(blob_size) / 8.0));
}

} // namespace

kernel::SyscallResult
ElfLoader::load(kernel::Kernel &k, kernel::Thread &t, const Bytes &blob,
                const std::string &path,
                const std::vector<std::string> &argv)
{
    // Fault site: image load failing mid-exec (bad media, truncated
    // read); exec reports ENOEXEC and the caller's process survives.
    if (CIDER_FAULT_POINT("binfmt.elf"))
        return kernel::SyscallResult::failure(kernel::lnx::NOEXEC);
    std::optional<ElfImage> parsed = parseElf(blob);
    if (!parsed)
        return kernel::SyscallResult::failure(kernel::lnx::NOEXEC);
    chargeLoaderWork(k, blob.size());

    const ProgramFn *fn = programs_.find(parsed->entrySymbol);
    if (!fn) {
        warn("elf loader: entry symbol '", parsed->entrySymbol,
             "' is not registered text");
        return kernel::SyscallResult::failure(kernel::lnx::NOEXEC);
    }

    kernel::Process &proc = t.process();
    kernel::ProcessImage &image = proc.image();
    image.path = path;
    image.format = kernel::BinaryFormat::Elf;
    image.entrySymbol = parsed->entrySymbol;
    image.codegen = parsed->codegen;
    image.persona = kernel::Persona::Android;
    image.dylibDeps = parsed->needed;
    image.argv = argv;

    for (const auto &seg : parsed->segments)
        proc.mem().addMapping(path + ":" + seg.name, seg.pages);

    t.setPersona(kernel::Persona::Android);

    ElfImage img = *parsed;
    ProgramFn body = *fn;
    ElfBootstrap bootstrap = bootstrap_;
    kernel::Kernel *kp = &k;
    image.entry = [kp, img, body, bootstrap,
                   argv](kernel::Thread &thread) -> int {
        UserEnv env{*kp, thread, argv};
        if (bootstrap)
            bootstrap(env, img);
        return body(env);
    };
    return kernel::SyscallResult::success();
}

kernel::SyscallResult
MachOLoader::load(kernel::Kernel &k, kernel::Thread &t, const Bytes &blob,
                  const std::string &path,
                  const std::vector<std::string> &argv)
{
    // Fault site: see the ELF loader above.
    if (CIDER_FAULT_POINT("binfmt.macho"))
        return kernel::SyscallResult::failure(kernel::lnx::NOEXEC);
    std::optional<MachOImage> parsed = parseMachO(blob);
    if (!parsed)
        return kernel::SyscallResult::failure(kernel::lnx::NOEXEC);
    if (parsed->fileType != MachOFileType::Execute)
        return kernel::SyscallResult::failure(kernel::lnx::NOEXEC);
    chargeLoaderWork(k, blob.size());

    const ProgramFn *fn = programs_.find(parsed->entrySymbol);
    if (!fn) {
        warn("macho loader: entry symbol '", parsed->entrySymbol,
             "' is not registered text");
        return kernel::SyscallResult::failure(kernel::lnx::NOEXEC);
    }

    kernel::Process &proc = t.process();
    kernel::ProcessImage &image = proc.image();
    image.path = path;
    image.format = kernel::BinaryFormat::MachO;
    image.entrySymbol = parsed->entrySymbol;
    image.codegen = parsed->codegen;
    image.persona = kernel::Persona::Ios;
    image.dylibDeps = parsed->dylibs;
    image.argv = argv;

    for (const auto &seg : parsed->segments)
        proc.mem().addMapping(path + ":" + seg.name, seg.pages);

    // The key step: loading a Mach-O binary tags the thread with the
    // iOS persona, used in all subsequent kernel interactions.
    t.setPersona(kernel::Persona::Ios);

    MachOImage img = *parsed;
    ProgramFn body = *fn;
    MachOBootstrap bootstrap = bootstrap_;
    kernel::Kernel *kp = &k;
    image.entry = [kp, img, body, bootstrap,
                   argv](kernel::Thread &thread) -> int {
        UserEnv env{*kp, thread, argv};
        if (bootstrap)
            bootstrap(env, img);
        return body(env);
    };
    return kernel::SyscallResult::success();
}

} // namespace cider::binfmt
