#include "binfmt/program.h"

#include "base/logging.h"

namespace cider::binfmt {

std::int64_t
valueI64(const Value &v)
{
    if (const auto *p = std::get_if<std::int64_t>(&v))
        return *p;
    if (const auto *p = std::get_if<double>(&v))
        return static_cast<std::int64_t>(*p);
    return 0;
}

double
valueF64(const Value &v)
{
    if (const auto *p = std::get_if<double>(&v))
        return *p;
    if (const auto *p = std::get_if<std::int64_t>(&v))
        return static_cast<double>(*p);
    return 0.0;
}

std::string
valueStr(const Value &v)
{
    if (const auto *p = std::get_if<std::string>(&v))
        return *p;
    return {};
}

void *
valuePtr(const Value &v)
{
    if (const auto *p = std::get_if<void *>(&v))
        return *p;
    return nullptr;
}

void
SymbolTable::add(const std::string &name, NativeFn fn)
{
    syms_[name] = Symbol{name, std::move(fn)};
}

const Symbol *
SymbolTable::find(const std::string &name) const
{
    auto it = syms_.find(name);
    return it == syms_.end() ? nullptr : &it->second;
}

std::vector<std::string>
SymbolTable::names() const
{
    std::vector<std::string> out;
    out.reserve(syms_.size());
    for (const auto &[name, sym] : syms_)
        out.push_back(name);
    return out;
}

LibraryImage &
LibraryRegistry::add(LibraryImage image)
{
    auto ptr = std::make_unique<LibraryImage>(std::move(image));
    LibraryImage &ref = *ptr;
    images_[ref.name] = std::move(ptr);
    return ref;
}

LibraryImage *
LibraryRegistry::find(const std::string &name)
{
    auto it = images_.find(name);
    return it == images_.end() ? nullptr : it->second.get();
}

const LibraryImage *
LibraryRegistry::find(const std::string &name) const
{
    auto it = images_.find(name);
    return it == images_.end() ? nullptr : it->second.get();
}

std::vector<std::string>
LibraryRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(images_.size());
    for (const auto &[name, img] : images_)
        out.push_back(name);
    return out;
}

void
ProgramRegistry::add(const std::string &name, ProgramFn fn)
{
    programs_[name] = std::move(fn);
}

const ProgramFn *
ProgramRegistry::find(const std::string &name) const
{
    auto it = programs_.find(name);
    return it == programs_.end() ? nullptr : &it->second;
}

} // namespace cider::binfmt
