/**
 * @file
 * Duct tape: zones and the cross-kernel symbol registry.
 *
 * Duct tape (paper section 4.2) compiles unmodified foreign kernel
 * source into the domestic kernel in three steps:
 *
 *  1. three coding zones — domestic, foreign, duct tape — with a
 *     visibility matrix: domestic and foreign code cannot see each
 *     other's symbols; both see the duct-tape zone; duct tape sees
 *     everything;
 *  2. automatic identification of external symbols and of conflicts
 *     between foreign and domestic names;
 *  3. remapping of conflicts to unique names, and mapping of external
 *     foreign symbols onto domestic implementations.
 *
 * The registry here performs steps 2 and 3 and *enforces* step 1: the
 * foreign-zone subsystems (Mach IPC, psynch, I/O Kit) resolve every
 * external reference through it, so a zone violation is a detectable
 * runtime error rather than a convention.
 */

#ifndef CIDER_DUCTTAPE_ZONES_H
#define CIDER_DUCTTAPE_ZONES_H

#include <map>
#include <string>
#include <vector>

namespace cider::ducttape {

/** The three coding zones of a duct-taped kernel. */
enum class Zone
{
    Domestic,
    Foreign,
    DuctTape,
};

const char *zoneName(Zone z);

/** Result of a symbol access check. */
enum class Access
{
    Ok,
    Denied,   ///< visible-zone rule violated
    NotFound,
};

/** One declared kernel symbol. */
struct SymbolInfo
{
    std::string name;     ///< source-level name
    Zone zone;
    std::string linkName; ///< unique link-time name (after remapping)
    bool remapped = false;
    std::string mappedTo; ///< duct-tape target for external foreign syms
};

/** A recorded zone violation (for tests and diagnostics). */
struct Violation
{
    Zone from;
    std::string symbol;
    Zone owner;
};

class SymbolRegistry
{
  public:
    /** The zone visibility matrix of step 1. */
    static bool zoneCanSee(Zone from, Zone to);

    /**
     * Declare @p name in @p zone. Conflicts with a same-named symbol
     * in a *different* zone are automatically remapped to a unique
     * link name (step 3); re-declaration within a zone is an error.
     * @return the (possibly remapped) symbol record.
     */
    const SymbolInfo &declare(const std::string &name, Zone zone);

    /**
     * Map an *external* foreign symbol (one the foreign code imports
     * but does not define) onto a duct-tape implementation. Declares
     * @p name in the duct-tape zone bound to @p target.
     */
    const SymbolInfo &mapExternal(const std::string &name,
                                  const std::string &target);

    /**
     * Resolve a reference to @p name made by code in @p from,
     * applying the visibility matrix. Denied accesses are recorded.
     * Lookup prefers the referencing zone's own symbol, then the
     * duct-tape zone, then (if visible) the remaining zone.
     */
    Access resolve(Zone from, const std::string &name,
                   const SymbolInfo **out = nullptr);

    /** Names that needed conflict remapping. */
    std::vector<std::string> conflicts() const;

    const std::vector<Violation> &violations() const { return violations_; }
    std::size_t symbolCount() const;

  private:
    SymbolInfo *findIn(Zone zone, const std::string &name);

    // Per-zone name tables.
    std::map<Zone, std::map<std::string, SymbolInfo>> zones_;
    std::vector<std::string> conflicts_;
    std::vector<Violation> violations_;
    int nextUnique_ = 0;
};

} // namespace cider::ducttape

#endif // CIDER_DUCTTAPE_ZONES_H
