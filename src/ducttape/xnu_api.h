/**
 * @file
 * The duct-tape adaptation layer: XNU kernel APIs implemented on the
 * domestic kernel's primitives.
 *
 * Foreign-zone subsystems (Mach IPC, psynch, I/O Kit — the src/xnu
 * and src/iokit trees) are written against these XNU interfaces
 * exactly as the real XNU sources are: lck_mtx_* locking, zalloc
 * zones, kalloc, wait queues with thread_block/wakeup semantics, and
 * mach_absolute_time. Each function charges a small fixed cost on the
 * active virtual clock, standing in for the translated domestic
 * primitive it rides on.
 *
 * The paper notes the adaptation layer built for one subsystem is
 * reusable for every later subsystem from the same foreign kernel —
 * which is literally true here: Mach IPC, psynch, and I/O Kit all
 * compile against this one header.
 */

#ifndef CIDER_DUCTTAPE_XNU_API_H
#define CIDER_DUCTTAPE_XNU_API_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ducttape/zones.h"

namespace cider::ducttape {

/// @{ Locking: XNU lck_mtx_* mapped onto domestic mutexes.
///
/// Every lock tracks its logical owner so waitq_wait can assert the
/// lck_mtx_sleep contract, and participates in the SchedRail
/// lock-order graph under its @p label (see kernel/sched_rail.h).
/// While a SchedRail episode is running, rail guests acquire the lock
/// purely logically — serialization comes from the rail, contention
/// becomes a scheduler-visible block, and an all-blocked state is
/// reported as a deadlock instead of hanging the host.
struct LckMtx;

LckMtx *lck_mtx_alloc_init(const char *label = nullptr);
void lck_mtx_lock(LckMtx *m);
void lck_mtx_unlock(LckMtx *m);
void lck_mtx_free(LckMtx *m);
/// @}

/// @{ Allocation: XNU zalloc zones mapped onto the domestic heap.
///
/// Zones amortise the domestic allocator the way real XNU does: each
/// zone keeps an intrusive free-list of fixed-size elements and
/// refills it in page-sized slab chunks, so the steady-state
/// zalloc/zfree cycle never touches the heap.
///
/// SMP structure (XNU-style CPU caching): when the calling host
/// thread is bound to a simulated CPU (kernel::CpuScope), zalloc and
/// zfree run against that CPU's private magazine — a small free-list
/// with its own lock — and only drain/refill against the global
/// depot free-list in batches. Unbound callers (every pre-SMP code
/// path) use the depot directly, preserving the original behaviour
/// bit for bit.
struct ZoneT;

/** Create an allocation zone for fixed-size elements. */
ZoneT *zinit(std::size_t elem_size, const char *zone_name);
void zdestroy(ZoneT *z);

/** Allocate an element; nullptr once failure injection triggers. */
void *zalloc(ZoneT *z);
void zfree(ZoneT *z, void *elem);

/** Accounting snapshot of a zone. */
struct ZoneStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t live = 0;
    std::uint64_t failed = 0;
    std::size_t elemSize = 0;
    /// @{ Per-CPU magazine traffic (zero while unbound).
    std::uint64_t magazineHits = 0;   ///< allocs served from a magazine
    std::uint64_t magazineFills = 0;  ///< depot -> magazine batches
    std::uint64_t magazineDrains = 0; ///< magazine -> depot batches
    std::uint64_t magazineCached = 0; ///< free elements parked in mags
    /// @}
};

ZoneStats zone_stats(const ZoneT *z);

/**
 * Process-wide totals over every zone currently alive (zinit'd and
 * not yet zdestroy'd). The fleet leak audit asserts liveElements
 * returns to its baseline after teardown; magazineCached is reported
 * separately because parked-but-free elements are not leaks.
 */
struct ZoneRegistryTotals
{
    std::size_t zones = 0;
    std::uint64_t liveElements = 0;
    std::uint64_t magazineCached = 0;
};

ZoneRegistryTotals zone_registry_totals();

/** Visit every live zone (name + stats) — leak-report detail. */
void zone_registry_each(
    const std::function<void(const char *name, const ZoneStats &)> &fn);

/** Failure injection: the (n+1)-th allocation onward returns null.
 *  Pass a negative value to disable. */
void zone_set_fail_after(ZoneT *z, std::int64_t n);

/**
 * Toggle free-list caching (on by default). With caching off the zone
 * degrades to one domestic heap allocation per element — the legacy
 * behaviour, kept as the A/B baseline for the hot-path benches. Only
 * legal while the zone has no live elements.
 */
void zone_set_caching(ZoneT *z, bool enabled);

/**
 * Push every per-CPU magazine's elements back to the depot free-list
 * (XNU's zone_gc over one zone). Used by tests asserting depot
 * accounting and by memory-pressure paths.
 */
void zone_drain_cpu_caches(ZoneT *z);

void *xnu_kalloc(std::size_t size);
void xnu_kfree(void *p, std::size_t size);
/// @}

/// @{ Wait queues: assert_wait + thread_block mapped onto condvars.
struct WaitQ;

WaitQ *waitq_alloc();
void waitq_free(WaitQ *wq);

/**
 * Block the calling (host) thread on @p wq while holding @p held,
 * until @p pred becomes true after a wakeup. The mutex is released
 * while blocked and re-held on return — XNU's
 * lck_mtx_sleep/thread_block contract. @p who is an optional label
 * for the hung-wait watchdog (waitq_blocked_waits).
 *
 * Held-lock contract: the caller MUST own @p held on entry. @p pred
 * is only ever evaluated with @p held held — at the entry check and
 * at each wakeup — so predicates may read state guarded by @p held
 * without further synchronisation. Calling without owning @p held is
 * a kernel bug and panics (the entry assertion covers the entry
 * predicate evaluation; wakeup-path evaluations hold the lock by
 * construction of the condvar wait).
 */
void waitq_wait(WaitQ *wq, LckMtx *held, const std::function<bool()> &pred,
                const char *who = nullptr);

/**
 * Like waitq_wait, but give up once the caller's virtual clock would
 * pass @p deadline_ns. Virtual time cannot advance while a thread is
 * parked, so expiry is detected by a host-side grace interval (see
 * waitq_set_block_grace_ms): after each grace period with the
 * predicate still false, the wait expires, the caller's clock is
 * advanced to the deadline, and false is returned. Returns true when
 * the predicate became true first (the normal wakeup path). Under an
 * armed SchedRail the grace machinery is bypassed: expiry becomes an
 * explicit scheduling decision (the rail fires the timeout), with the
 * same virtual-time outcome. The waitq_wait held-lock contract
 * applies identically.
 */
bool waitq_wait_deadline(WaitQ *wq, LckMtx *held,
                         const std::function<bool()> &pred,
                         std::uint64_t deadline_ns,
                         const char *who = nullptr);

void waitq_wakeup_all(WaitQ *wq);
void waitq_wakeup_one(WaitQ *wq);

/**
 * Host milliseconds a deadline wait parks before concluding no wakeup
 * is coming. The default (100 ms) is far above any same-machine
 * wakeup latency; tests and the chaos bench lower it to keep timeout
 * storms fast. Deterministic in virtual time either way: the grace
 * interval only decides *when in host time* the timeout is taken, the
 * virtual clock always lands exactly on the deadline.
 */
void waitq_set_block_grace_ms(std::uint64_t ms);
std::uint64_t waitq_block_grace_ms();

/** One thread currently parked in a duct-taped wait queue. */
struct BlockedWait
{
    const char *site = nullptr;  ///< waitq_wait label (may be null)
    std::uint64_t virtualNs = 0; ///< waiter's virtual time at block
    double hostBlockedMs = 0.0;  ///< host wall time spent blocked
};

/**
 * Hung-wait watchdog: every wait blocked longer than @p min_host_ms
 * of host wall time. Purely host-side bookkeeping — querying it never
 * touches any virtual clock.
 */
std::vector<BlockedWait> waitq_blocked_waits(double min_host_ms);
/// @}

/** XNU mach_absolute_time mapped onto the virtual clock. */
std::uint64_t mach_absolute_time();

/**
 * Declare the adaptation layer in a symbol registry: domestic
 * primitives in the domestic zone, each imported XNU API as a
 * duct-tape symbol mapped onto its domestic target, plus the handful
 * of names both kernels define (which the registry must remap).
 */
void registerDuctTapeSymbols(SymbolRegistry &registry);

} // namespace cider::ducttape

#endif // CIDER_DUCTTAPE_XNU_API_H
