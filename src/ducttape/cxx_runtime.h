/**
 * @file
 * The C++ runtime Cider adds to the domestic kernel.
 *
 * I/O Kit is written in a restricted C++ subset; to compile it into
 * the Linux kernel the prototype added "a basic C++ runtime ... based
 * on Android's Bionic" plus Makefile support so C++ objects are
 * first-class kernel objects (paper section 5.1). This module is that
 * runtime's analogue: a kernel heap with allocation accounting that
 * all I/O Kit objects go through, and a static-constructor list run
 * at kernel boot (the moment the "obj-y" C++ objects would be
 * initialised).
 */

#ifndef CIDER_DUCTTAPE_CXX_RUNTIME_H
#define CIDER_DUCTTAPE_CXX_RUNTIME_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace cider::ducttape {

/** Allocation statistics of the in-kernel C++ heap. */
struct CxxHeapStats
{
    std::uint64_t objectsConstructed = 0;
    std::uint64_t objectsDestroyed = 0;
    std::uint64_t liveObjects = 0;
    std::uint64_t liveBytes = 0;
};

/**
 * The kernel C++ runtime: heap accounting plus deferred static
 * constructors. One instance per simulated kernel.
 */
class KernelCxxRuntime
{
  public:
    /** Record construction of a kernel C++ object of @p bytes. */
    void noteConstruct(std::size_t bytes);
    void noteDestroy(std::size_t bytes);

    CxxHeapStats stats() const;

    /**
     * Register a "static constructor" (an I/O Kit driver class
     * registration, typically). Runs at bootConstructors() time; if
     * the kernel has already booted, runs immediately — matching how
     * late-loaded kernel modules initialise on insertion.
     */
    void addStaticConstructor(const std::string &name,
                              std::function<void()> ctor);

    /** Run all pending constructors (kernel boot). */
    void bootConstructors();

    bool booted() const { return booted_; }
    std::vector<std::string> constructorNames() const;

  private:
    mutable std::mutex mu_;
    CxxHeapStats stats_;
    bool booted_ = false;
    std::vector<std::pair<std::string, std::function<void()>>> pending_;
    std::vector<std::string> names_;
};

} // namespace cider::ducttape

#endif // CIDER_DUCTTAPE_CXX_RUNTIME_H
