#include "ducttape/cxx_runtime.h"

#include "base/logging.h"

namespace cider::ducttape {

void
KernelCxxRuntime::noteConstruct(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.objectsConstructed;
    ++stats_.liveObjects;
    stats_.liveBytes += bytes;
}

void
KernelCxxRuntime::noteDestroy(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.objectsDestroyed;
    if (stats_.liveObjects == 0 || stats_.liveBytes < bytes)
        // invariant-only: a free the heap never handed out is a
        // kernel-internal bug, not foreign input.
        cider_panic("kernel C++ heap underflow");
    --stats_.liveObjects;
    stats_.liveBytes -= bytes;
}

CxxHeapStats
KernelCxxRuntime::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
KernelCxxRuntime::addStaticConstructor(const std::string &name,
                                       std::function<void()> ctor)
{
    bool run_now = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names_.push_back(name);
        if (booted_)
            run_now = true;
        else
            pending_.emplace_back(name, std::move(ctor));
    }
    if (run_now)
        ctor();
}

void
KernelCxxRuntime::bootConstructors()
{
    std::vector<std::pair<std::string, std::function<void()>>> to_run;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (booted_)
            return;
        booted_ = true;
        to_run.swap(pending_);
    }
    for (auto &[name, ctor] : to_run)
        ctor();
}

std::vector<std::string>
KernelCxxRuntime::constructorNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return names_;
}

} // namespace cider::ducttape
