#include "ducttape/xnu_api.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "kernel/fault_rail.h"
#include "kernel/sched_rail.h"

namespace cider::ducttape {

namespace {

// Fixed per-primitive costs in virtual ns, standing in for the
// domestic primitive each XNU call is translated to. These run only
// inside the Cider-enabled Nexus 7 kernel, so they are expressed at
// that device's clock.
constexpr std::uint64_t kLockNs = 30;
constexpr std::uint64_t kUnlockNs = 25;
constexpr std::uint64_t kZallocNs = 70;
constexpr std::uint64_t kZfreeNs = 55;
constexpr std::uint64_t kKallocNs = 90;
constexpr std::uint64_t kWakeupNs = 60;
constexpr std::uint64_t kBlockNs = 120;

kernel::SchedRail &
schedRail()
{
    return kernel::SchedRail::global();
}

/** True when the calling host thread is a guest of an armed rail. */
bool
onSchedRail()
{
    return kernel::SchedRail::global().engaged() &&
           kernel::SchedRail::guestMarker() != nullptr;
}

/** Per-host-thread identity for logical lock ownership. Rail guests
 *  are identified by their guest marker so ownership survives the
 *  guest migrating across rail decisions on one host thread. */
thread_local char t_hostLockMark;

const void *
lockOwnerMark()
{
    if (const void *g = kernel::SchedRail::guestMarker())
        return g;
    return &t_hostLockMark;
}

} // namespace

struct LckMtx
{
    std::mutex mu;
    /** Logical owner (lockOwnerMark of the holder), for the
     *  waitq_wait held-lock assertion and the rail's logical
     *  acquisition path. */
    std::atomic<const void *> owner{nullptr};
    /** Lock-order graph label; must outlive the lock (literals). */
    const char *label = "lck";
};

namespace {

/** Logical release of @p held by a rail guest: no host mutex is
 *  involved, contenders parked on the lock become schedulable. */
void
railReleaseHeld(LckMtx *held)
{
    held->owner.store(nullptr, std::memory_order_relaxed);
    schedRail().wakeupChannel(held, /*all=*/true);
}

/** Logical (re-)acquisition of @p held by a rail guest; contention
 *  is a rail-visible block. May unwind via SchedRailAbort. */
void
railAcquireHeld(LckMtx *held)
{
    kernel::SchedRail &rail = schedRail();
    while (held->owner.load(std::memory_order_relaxed) != nullptr)
        rail.blockOn(held, "lck.contended");
    held->owner.store(lockOwnerMark(), std::memory_order_relaxed);
}

/** The waitq_wait held-lock contract (see xnu_api.h). */
void
assertHeldOwned(const LckMtx *held, const char *who)
{
    if (held->owner.load(std::memory_order_relaxed) != lockOwnerMark())
        cider_panic("waitq_wait(", who ? who : "?",
                    "): caller does not hold the wait mutex — "
                    "predicate would be evaluated without the lock");
}

} // namespace

LckMtx *
lck_mtx_alloc_init(const char *label)
{
    charge(kKallocNs);
    auto *m = new LckMtx();
    if (label && *label)
        m->label = label;
    return m;
}

void
lck_mtx_lock(LckMtx *m)
{
    charge(kLockNs);
    // Record the acquisition attempt (lockdep-style) before blocking:
    // the held-before edge of an AB/BA inversion must land in the
    // graph even when this acquire deadlocks and never succeeds.
    kernel::LockOrderGraph &g = schedRail().lockGraph();
    if (g.tracking())
        g.acquired(m, m->label);
    if (onSchedRail()) {
        railAcquireHeld(m);
    } else {
        m->mu.lock();
        m->owner.store(lockOwnerMark(), std::memory_order_relaxed);
    }
}

void
lck_mtx_unlock(LckMtx *m)
{
    charge(kUnlockNs);
    kernel::LockOrderGraph &g = schedRail().lockGraph();
    if (g.tracking())
        g.released(m);
    if (onSchedRail()) {
        railReleaseHeld(m);
    } else {
        m->owner.store(nullptr, std::memory_order_relaxed);
        m->mu.unlock();
    }
}

void
lck_mtx_free(LckMtx *m)
{
    delete m;
}

/**
 * A zalloc zone. Elements are carved out of slab chunks and recycled
 * through an intrusive singly-linked free-list (the link lives in the
 * first word of each free element), so only the refill path touches
 * the domestic heap. The mutex is mutable so const accessors such as
 * zone_stats can lock without casting away constness.
 */
struct ZoneT
{
    std::string name;
    std::size_t elemSize = 0;
    std::size_t slotSize = 0;   ///< elemSize rounded up for the link
    std::size_t chunkElems = 0; ///< elements per slab refill
    mutable std::mutex mu;
    ZoneStats stats;
    std::int64_t failAfter = -1;
    bool caching = true;
    void *freeList = nullptr;
    std::vector<void *> slabs;
};

namespace {

/** Intrusive link stored in the first word of a free element. */
void *&
freeLink(void *elem)
{
    return *static_cast<void **>(elem);
}

/** Scoped lock-order note for a non-LckMtx lock (zone mutexes), so
 *  zone locks participate in the deadlock-cycle graph. Free when
 *  tracking is off: one relaxed load each way. */
class LockOrderNote
{
  public:
    LockOrderNote(const void *lock, const char *label) : lock_(lock)
    {
        kernel::LockOrderGraph &g = schedRail().lockGraph();
        noted_ = g.tracking();
        if (noted_)
            g.acquired(lock, label);
    }

    ~LockOrderNote()
    {
        if (noted_)
            schedRail().lockGraph().released(lock_);
    }

    LockOrderNote(const LockOrderNote &) = delete;
    LockOrderNote &operator=(const LockOrderNote &) = delete;

  private:
    const void *lock_;
    bool noted_;
};

} // namespace

ZoneT *
zinit(std::size_t elem_size, const char *zone_name)
{
    auto *z = new ZoneT();
    z->name = zone_name ? zone_name : "?";
    z->elemSize = elem_size;
    z->stats.elemSize = elem_size;
    // Slots must hold the free-list link and keep every element
    // max-aligned within the slab.
    std::size_t slot = std::max(elem_size, sizeof(void *));
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    z->slotSize = (slot + kAlign - 1) / kAlign * kAlign;
    // Refill roughly a page at a time, as XNU zones do.
    z->chunkElems = std::clamp<std::size_t>(4096 / z->slotSize, 8, 256);
    return z;
}

void
zdestroy(ZoneT *z)
{
    for (void *slab : z->slabs)
        std::free(slab);
    delete z;
}

void *
zalloc(ZoneT *z)
{
    charge(kZallocNs);
    std::lock_guard<std::mutex> lock(z->mu);
    LockOrderNote note(&z->mu, z->name.c_str());
    // Both injection paths run before the allocs increment, so the
    // logical allocation index they key on is identical whether the
    // zone is slab-cached or in legacy one-heap-call-per-element mode.
    if (z->failAfter >= 0 &&
        static_cast<std::int64_t>(z->stats.allocs) >= z->failAfter) {
        ++z->stats.failed;
        return nullptr;
    }
    if (CIDER_FAULT_POINT("zone.alloc")) {
        ++z->stats.failed;
        return nullptr;
    }
    ++z->stats.allocs;
    ++z->stats.live;
    if (!z->caching)
        return std::malloc(z->elemSize);
    if (!z->freeList) {
        // Refill: carve a fresh slab into free elements.
        void *slab = std::malloc(z->slotSize * z->chunkElems);
        if (!slab) {
            --z->stats.allocs;
            --z->stats.live;
            ++z->stats.failed;
            return nullptr;
        }
        z->slabs.push_back(slab);
        char *base = static_cast<char *>(slab);
        for (std::size_t i = z->chunkElems; i-- > 0;) {
            void *elem = base + i * z->slotSize;
            freeLink(elem) = z->freeList;
            z->freeList = elem;
        }
    }
    void *elem = z->freeList;
    z->freeList = freeLink(elem);
    return elem;
}

void
zfree(ZoneT *z, void *elem)
{
    if (!elem)
        return;
    charge(kZfreeNs);
    std::lock_guard<std::mutex> lock(z->mu);
    LockOrderNote note(&z->mu, z->name.c_str());
    ++z->stats.frees;
    if (z->stats.live == 0) // invariant-only: double-free by kernel code
        cider_panic("zfree underflow in zone ", z->name);
    --z->stats.live;
    if (!z->caching) {
        std::free(elem);
        return;
    }
    freeLink(elem) = z->freeList;
    z->freeList = elem;
}

ZoneStats
zone_stats(const ZoneT *z)
{
    std::lock_guard<std::mutex> lock(z->mu);
    return z->stats;
}

void
zone_set_fail_after(ZoneT *z, std::int64_t n)
{
    std::lock_guard<std::mutex> lock(z->mu);
    z->failAfter = n;
}

void
zone_set_caching(ZoneT *z, bool enabled)
{
    std::lock_guard<std::mutex> lock(z->mu);
    if (z->caching == enabled)
        return;
    if (z->stats.live != 0) // invariant-only: kernel-internal misuse
        cider_panic("zone_set_caching with live elements in zone ",
                    z->name);
    z->caching = enabled;
}

namespace {

/**
 * Size-class cache behind xnu_kalloc/xnu_kfree, mirroring XNU's
 * kalloc zones: power-of-two classes from 16 bytes to 4 KiB, each
 * with an intrusive free-list of recycled blocks. Larger requests
 * fall through to the domestic heap. Per-class depth is capped so a
 * burst cannot pin unbounded memory.
 */
class KallocCache
{
  public:
    ~KallocCache()
    {
        for (std::size_t c = 0; c < kClasses; ++c) {
            void *p = heads_[c];
            while (p) {
                void *next = freeLink(p);
                std::free(p);
                p = next;
            }
        }
    }

    void *
    alloc(std::size_t size)
    {
        int c = classIndex(size);
        if (c < 0)
            return std::malloc(size);
        std::lock_guard<std::mutex> lock(mu_);
        if (void *p = heads_[static_cast<std::size_t>(c)]) {
            heads_[static_cast<std::size_t>(c)] = freeLink(p);
            --depth_[static_cast<std::size_t>(c)];
            return p;
        }
        return std::malloc(classSize(c));
    }

    void
    free(void *p, std::size_t size)
    {
        int c = classIndex(size);
        if (c < 0) {
            std::free(p);
            return;
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (depth_[static_cast<std::size_t>(c)] >= kMaxDepth) {
            std::free(p);
            return;
        }
        freeLink(p) = heads_[static_cast<std::size_t>(c)];
        heads_[static_cast<std::size_t>(c)] = p;
        ++depth_[static_cast<std::size_t>(c)];
    }

  private:
    static constexpr std::size_t kClasses = 9; // 16 .. 4096
    static constexpr std::size_t kMaxDepth = 1024;

    static std::size_t classSize(int c)
    {
        return std::size_t{16} << c;
    }

    /** Smallest class covering @p size, or -1 for heap fallthrough. */
    static int classIndex(std::size_t size)
    {
        if (size == 0 || size > 4096)
            return -1;
        int c = 0;
        while (classSize(c) < size)
            ++c;
        return c;
    }

    std::mutex mu_;
    void *heads_[kClasses] = {};
    std::size_t depth_[kClasses] = {};
};

KallocCache &
kallocCache()
{
    static KallocCache cache;
    return cache;
}

} // namespace

void *
xnu_kalloc(std::size_t size)
{
    charge(kKallocNs);
    if (CIDER_FAULT_POINT("kalloc.alloc"))
        return nullptr;
    return kallocCache().alloc(size);
}

void
xnu_kfree(void *p, std::size_t size)
{
    charge(kZfreeNs);
    if (!p)
        return;
    kallocCache().free(p, size);
}

struct WaitQ
{
    std::condition_variable_any cv;
    /** Wakeup epoch: bumped on every wakeup_one/all so timed waiters
     *  can tell an idle grace interval from one where wakeups flowed
     *  to other waiters (see waitq_wait_deadline). */
    std::atomic<std::uint64_t> wakeEpoch{0};
};

WaitQ *
waitq_alloc()
{
    return new WaitQ();
}

void
waitq_free(WaitQ *wq)
{
    delete wq;
}

namespace {

std::atomic<std::uint64_t> blockGraceMs{100};

/**
 * Watchdog bookkeeping for parked threads. Only waits that actually
 * block register here (the uncontended wake-up path never takes this
 * lock), and all timestamps are host-side, so the watchdog is
 * invisible to virtual time.
 */
struct BlockedEntry
{
    const char *site;
    std::uint64_t virtualNs;
    std::chrono::steady_clock::time_point since;
};

std::mutex &
blockedMu()
{
    static std::mutex mu;
    return mu;
}

std::map<const void *, BlockedEntry> &
blockedMap()
{
    static std::map<const void *, BlockedEntry> m;
    return m;
}

/** RAII registration of one parked thread, keyed by stack address. */
class BlockScope
{
  public:
    explicit BlockScope(const char *who)
    {
        std::lock_guard<std::mutex> lock(blockedMu());
        blockedMap()[this] = BlockedEntry{
            who, virtualNow(), std::chrono::steady_clock::now()};
    }

    ~BlockScope()
    {
        std::lock_guard<std::mutex> lock(blockedMu());
        blockedMap().erase(this);
    }
};

} // namespace

void
waitq_wait(WaitQ *wq, LckMtx *held, const std::function<bool()> &pred,
           const char *who)
{
    charge(kBlockNs);
    assertHeldOwned(held, who);
    if (onSchedRail()) {
        kernel::SchedRail &rail = schedRail();
        while (!pred()) {
            railReleaseHeld(held);
            rail.blockOn(wq, who ? who : "waitq");
            railAcquireHeld(held);
        }
        return;
    }
    if (pred())
        return;
    BlockScope scope(who);
    wq->cv.wait(held->mu, pred);
    // Other threads cycled the lock while we were parked; restore the
    // logical owner now that the condvar handed the mutex back.
    held->owner.store(lockOwnerMark(), std::memory_order_relaxed);
}

bool
waitq_wait_deadline(WaitQ *wq, LckMtx *held,
                    const std::function<bool()> &pred,
                    std::uint64_t deadline_ns, const char *who)
{
    charge(kBlockNs);
    assertHeldOwned(held, who);
    if (pred())
        return true;
    std::uint64_t now = virtualNow();
    if (now >= deadline_ns)
        return false;
    if (onSchedRail()) {
        // Deadline expiry is an explicit rail decision: the guest
        // stays schedulable while parked, and the scheduler choosing
        // it IS the timeout firing. A wakeup that lands first makes
        // the guest runnable without firing; a wakeup consumed by
        // another waiter just re-parks us with the deadline pending —
        // so the grace re-arm race cannot occur on the rail by
        // construction.
        kernel::SchedRail &rail = schedRail();
        for (;;) {
            railReleaseHeld(held);
            bool fired =
                rail.blockOnDeadline(wq, who ? who : "waitq");
            railAcquireHeld(held);
            if (pred())
                return true;
            if (fired) {
                charge(deadline_ns - now);
                return false;
            }
        }
    }
    BlockScope scope(who);
    // A parked thread's virtual clock cannot advance, so deadline
    // expiry is decided by host-side grace intervals: once a full
    // interval passes with no wakeup activity on this waitq, none is
    // coming, and the wait times out with the caller's clock advanced
    // exactly to the deadline — host scheduling jitter never leaks
    // into virtual time. An interval that *did* see wakeups (consumed
    // by other waiters, or merely slow to propagate on a loaded host)
    // re-arms the window, so a legitimate wakeup that precedes the
    // virtual deadline is never misreported as a timeout just because
    // the host is busy.
    auto grace = std::chrono::milliseconds(
        blockGraceMs.load(std::memory_order_relaxed));
    for (;;) {
        std::uint64_t epoch =
            wq->wakeEpoch.load(std::memory_order_relaxed);
        if (wq->cv.wait_for(held->mu, grace, pred)) {
            held->owner.store(lockOwnerMark(),
                              std::memory_order_relaxed);
            return true;
        }
        if (wq->wakeEpoch.load(std::memory_order_relaxed) == epoch)
            break; // a truly idle interval: expire
    }
    held->owner.store(lockOwnerMark(), std::memory_order_relaxed);
    charge(deadline_ns - now);
    return false;
}

void
waitq_set_block_grace_ms(std::uint64_t ms)
{
    blockGraceMs.store(ms ? ms : 1, std::memory_order_relaxed);
}

std::uint64_t
waitq_block_grace_ms()
{
    return blockGraceMs.load(std::memory_order_relaxed);
}

std::vector<BlockedWait>
waitq_blocked_waits(double min_host_ms)
{
    std::vector<BlockedWait> out;
    auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(blockedMu());
    for (const auto &[key, e] : blockedMap()) {
        double ms = std::chrono::duration<double, std::milli>(
                        now - e.since)
                        .count();
        if (ms < min_host_ms)
            continue;
        BlockedWait w;
        w.site = e.site;
        w.virtualNs = e.virtualNs;
        w.hostBlockedMs = ms;
        out.push_back(w);
    }
    return out;
}

void
waitq_wakeup_all(WaitQ *wq)
{
    charge(kWakeupNs);
    wq->wakeEpoch.fetch_add(1, std::memory_order_relaxed);
    kernel::SchedRail &rail = schedRail();
    if (rail.engaged())
        rail.wakeupChannel(wq, /*all=*/true);
    wq->cv.notify_all();
}

void
waitq_wakeup_one(WaitQ *wq)
{
    charge(kWakeupNs);
    wq->wakeEpoch.fetch_add(1, std::memory_order_relaxed);
    kernel::SchedRail &rail = schedRail();
    if (rail.engaged())
        rail.wakeupChannel(wq, /*all=*/false);
    wq->cv.notify_one();
}

std::uint64_t
mach_absolute_time()
{
    return virtualNow();
}

void
registerDuctTapeSymbols(SymbolRegistry &registry)
{
    // Domestic primitives the adaptation layer is built on.
    for (const char *sym :
         {"mutex_lock", "mutex_unlock", "kmalloc", "kfree", "wake_up",
          "schedule", "wait_event", "ktime_get", "printk"})
        registry.declare(sym, Zone::Domestic);

    // External XNU symbols the foreign code imports, each mapped onto
    // its domestic implementation through the duct-tape zone.
    registry.mapExternal("lck_mtx_lock", "mutex_lock");
    registry.mapExternal("lck_mtx_unlock", "mutex_unlock");
    registry.mapExternal("lck_mtx_alloc_init", "kmalloc");
    registry.mapExternal("lck_mtx_free", "kfree");
    registry.mapExternal("zinit", "kmalloc");
    registry.mapExternal("zalloc", "kmalloc");
    registry.mapExternal("zfree", "kfree");
    registry.mapExternal("kalloc", "kmalloc");
    registry.mapExternal("thread_block", "wait_event");
    registry.mapExternal("thread_wakeup", "wake_up");
    registry.mapExternal("assert_wait", "wait_event");
    registry.mapExternal("mach_absolute_time", "ktime_get");

    // Names both kernels define: declaring the foreign copy after the
    // domestic one forces the registry to remap it (step 3).
    registry.declare("panic", Zone::Domestic);
    registry.declare("panic", Zone::Foreign);
    registry.declare("current_thread", Zone::Domestic);
    registry.declare("current_thread", Zone::Foreign);
}

} // namespace cider::ducttape
