#include "ducttape/xnu_api.h"

#include <condition_variable>
#include <cstdlib>
#include <mutex>

#include "base/cost_clock.h"
#include "base/logging.h"

namespace cider::ducttape {

namespace {

// Fixed per-primitive costs in virtual ns, standing in for the
// domestic primitive each XNU call is translated to. These run only
// inside the Cider-enabled Nexus 7 kernel, so they are expressed at
// that device's clock.
constexpr std::uint64_t kLockNs = 30;
constexpr std::uint64_t kUnlockNs = 25;
constexpr std::uint64_t kZallocNs = 70;
constexpr std::uint64_t kZfreeNs = 55;
constexpr std::uint64_t kKallocNs = 90;
constexpr std::uint64_t kWakeupNs = 60;
constexpr std::uint64_t kBlockNs = 120;

} // namespace

struct LckMtx
{
    std::mutex mu;
};

LckMtx *
lck_mtx_alloc_init()
{
    charge(kKallocNs);
    return new LckMtx();
}

void
lck_mtx_lock(LckMtx *m)
{
    charge(kLockNs);
    m->mu.lock();
}

void
lck_mtx_unlock(LckMtx *m)
{
    charge(kUnlockNs);
    m->mu.unlock();
}

void
lck_mtx_free(LckMtx *m)
{
    delete m;
}

struct ZoneT
{
    std::string name;
    std::size_t elemSize = 0;
    std::mutex mu;
    ZoneStats stats;
    std::int64_t failAfter = -1;
};

ZoneT *
zinit(std::size_t elem_size, const char *zone_name)
{
    auto *z = new ZoneT();
    z->name = zone_name ? zone_name : "?";
    z->elemSize = elem_size;
    z->stats.elemSize = elem_size;
    return z;
}

void
zdestroy(ZoneT *z)
{
    delete z;
}

void *
zalloc(ZoneT *z)
{
    charge(kZallocNs);
    std::lock_guard<std::mutex> lock(z->mu);
    if (z->failAfter >= 0 &&
        static_cast<std::int64_t>(z->stats.allocs) >= z->failAfter) {
        ++z->stats.failed;
        return nullptr;
    }
    ++z->stats.allocs;
    ++z->stats.live;
    return std::malloc(z->elemSize);
}

void
zfree(ZoneT *z, void *elem)
{
    if (!elem)
        return;
    charge(kZfreeNs);
    std::lock_guard<std::mutex> lock(z->mu);
    ++z->stats.frees;
    if (z->stats.live == 0)
        cider_panic("zfree underflow in zone ", z->name);
    --z->stats.live;
    std::free(elem);
}

ZoneStats
zone_stats(const ZoneT *z)
{
    std::lock_guard<std::mutex> lock(const_cast<ZoneT *>(z)->mu);
    return z->stats;
}

void
zone_set_fail_after(ZoneT *z, std::int64_t n)
{
    std::lock_guard<std::mutex> lock(z->mu);
    z->failAfter = n;
}

void *
xnu_kalloc(std::size_t size)
{
    charge(kKallocNs);
    return std::malloc(size);
}

void
xnu_kfree(void *p, std::size_t)
{
    charge(kZfreeNs);
    std::free(p);
}

struct WaitQ
{
    std::condition_variable_any cv;
};

WaitQ *
waitq_alloc()
{
    return new WaitQ();
}

void
waitq_free(WaitQ *wq)
{
    delete wq;
}

void
waitq_wait(WaitQ *wq, LckMtx *held, const std::function<bool()> &pred)
{
    charge(kBlockNs);
    wq->cv.wait(held->mu, pred);
}

void
waitq_wakeup_all(WaitQ *wq)
{
    charge(kWakeupNs);
    wq->cv.notify_all();
}

void
waitq_wakeup_one(WaitQ *wq)
{
    charge(kWakeupNs);
    wq->cv.notify_one();
}

std::uint64_t
mach_absolute_time()
{
    return virtualNow();
}

void
registerDuctTapeSymbols(SymbolRegistry &registry)
{
    // Domestic primitives the adaptation layer is built on.
    for (const char *sym :
         {"mutex_lock", "mutex_unlock", "kmalloc", "kfree", "wake_up",
          "schedule", "wait_event", "ktime_get", "printk"})
        registry.declare(sym, Zone::Domestic);

    // External XNU symbols the foreign code imports, each mapped onto
    // its domestic implementation through the duct-tape zone.
    registry.mapExternal("lck_mtx_lock", "mutex_lock");
    registry.mapExternal("lck_mtx_unlock", "mutex_unlock");
    registry.mapExternal("lck_mtx_alloc_init", "kmalloc");
    registry.mapExternal("lck_mtx_free", "kfree");
    registry.mapExternal("zinit", "kmalloc");
    registry.mapExternal("zalloc", "kmalloc");
    registry.mapExternal("zfree", "kfree");
    registry.mapExternal("kalloc", "kmalloc");
    registry.mapExternal("thread_block", "wait_event");
    registry.mapExternal("thread_wakeup", "wake_up");
    registry.mapExternal("assert_wait", "wait_event");
    registry.mapExternal("mach_absolute_time", "ktime_get");

    // Names both kernels define: declaring the foreign copy after the
    // domestic one forces the registry to remap it (step 3).
    registry.declare("panic", Zone::Domestic);
    registry.declare("panic", Zone::Foreign);
    registry.declare("current_thread", Zone::Domestic);
    registry.declare("current_thread", Zone::Foreign);
}

} // namespace cider::ducttape
