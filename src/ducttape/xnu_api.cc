#include "ducttape/xnu_api.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "kernel/fault_rail.h"
#include "kernel/percpu.h"
#include "kernel/sched_rail.h"

namespace cider::ducttape {

namespace {

// Fixed per-primitive costs in virtual ns, standing in for the
// domestic primitive each XNU call is translated to. These run only
// inside the Cider-enabled Nexus 7 kernel, so they are expressed at
// that device's clock.
constexpr std::uint64_t kLockNs = 30;
constexpr std::uint64_t kUnlockNs = 25;
constexpr std::uint64_t kZallocNs = 70;
constexpr std::uint64_t kZfreeNs = 55;
constexpr std::uint64_t kKallocNs = 90;
constexpr std::uint64_t kWakeupNs = 60;
constexpr std::uint64_t kBlockNs = 120;

kernel::SchedRail &
schedRail()
{
    return kernel::SchedRail::global();
}

/** True when the calling host thread is a guest of an armed rail. */
bool
onSchedRail()
{
    return kernel::SchedRail::global().engaged() &&
           kernel::SchedRail::guestMarker() != nullptr;
}

/** Per-host-thread identity for logical lock ownership. Rail guests
 *  are identified by their guest marker so ownership survives the
 *  guest migrating across rail decisions on one host thread. */
thread_local char t_hostLockMark;

const void *
lockOwnerMark()
{
    if (const void *g = kernel::SchedRail::guestMarker())
        return g;
    return &t_hostLockMark;
}

} // namespace

struct LckMtx
{
    std::mutex mu;
    /** Logical owner (lockOwnerMark of the holder), for the
     *  waitq_wait held-lock assertion and the rail's logical
     *  acquisition path. */
    std::atomic<const void *> owner{nullptr};
    /** Lock-order graph label; must outlive the lock (literals). */
    const char *label = "lck";
};

namespace {

/** Logical release of @p held by a rail guest: no host mutex is
 *  involved, contenders parked on the lock become schedulable. */
void
railReleaseHeld(LckMtx *held)
{
    held->owner.store(nullptr, std::memory_order_relaxed);
    schedRail().wakeupChannel(held, /*all=*/true);
}

/** Logical (re-)acquisition of @p held by a rail guest; contention
 *  is a rail-visible block. May unwind via SchedRailAbort. */
void
railAcquireHeld(LckMtx *held)
{
    kernel::SchedRail &rail = schedRail();
    while (held->owner.load(std::memory_order_relaxed) != nullptr)
        rail.blockOn(held, "lck.contended");
    held->owner.store(lockOwnerMark(), std::memory_order_relaxed);
}

/** The waitq_wait held-lock contract (see xnu_api.h). */
void
assertHeldOwned(const LckMtx *held, const char *who)
{
    if (held->owner.load(std::memory_order_relaxed) != lockOwnerMark())
        cider_panic("waitq_wait(", who ? who : "?",
                    "): caller does not hold the wait mutex — "
                    "predicate would be evaluated without the lock");
}

} // namespace

LckMtx *
lck_mtx_alloc_init(const char *label)
{
    charge(kKallocNs);
    auto *m = new LckMtx();
    if (label && *label)
        m->label = label;
    return m;
}

void
lck_mtx_lock(LckMtx *m)
{
    charge(kLockNs);
    // Record the acquisition attempt (lockdep-style) before blocking:
    // the held-before edge of an AB/BA inversion must land in the
    // graph even when this acquire deadlocks and never succeeds.
    kernel::LockOrderGraph &g = schedRail().lockGraph();
    if (g.tracking())
        g.acquired(m, m->label);
    if (onSchedRail()) {
        railAcquireHeld(m);
    } else {
        m->mu.lock();
        m->owner.store(lockOwnerMark(), std::memory_order_relaxed);
    }
}

void
lck_mtx_unlock(LckMtx *m)
{
    charge(kUnlockNs);
    kernel::LockOrderGraph &g = schedRail().lockGraph();
    if (g.tracking())
        g.released(m);
    if (onSchedRail()) {
        railReleaseHeld(m);
    } else {
        m->owner.store(nullptr, std::memory_order_relaxed);
        m->mu.unlock();
    }
}

void
lck_mtx_free(LckMtx *m)
{
    delete m;
}

/**
 * A zalloc zone. Elements are carved out of slab chunks and recycled
 * through an intrusive singly-linked free-list (the link lives in the
 * first word of each free element), so only the refill path touches
 * the domestic heap.
 *
 * SMP decomposition (XNU's zone CPU caching): the global free-list is
 * now the *depot*; each simulated CPU owns a magazine — a private
 * free-list with its own small lock — that fills from and drains to
 * the depot in kMagazineBatch-sized transfers. A host thread bound to
 * a CPU (kernel::CpuScope) touches only its magazine lock in steady
 * state; unbound callers use the depot directly, which is the
 * original single-lock behaviour. Accounting counters are relaxed
 * atomics so the magazine fast path never takes the depot lock. The
 * mutexes are mutable so const accessors (zone_stats) can lock
 * without casting away constness.
 */
struct ZoneT
{
    std::string name;
    std::size_t elemSize = 0;
    std::size_t slotSize = 0;   ///< elemSize rounded up for the link
    std::size_t chunkElems = 0; ///< elements per slab refill

    /// @{ Accounting (relaxed atomics; exact under any interleaving).
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> live{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> magHits{0};
    std::atomic<std::uint64_t> magFills{0};
    std::atomic<std::uint64_t> magDrains{0};
    /// @}
    std::atomic<std::int64_t> failAfter{-1};
    std::atomic<bool> caching{true};

    /** Depot: the global free-list plus its backing slabs. */
    mutable std::mutex mu;
    void *freeList = nullptr;
    std::vector<void *> slabs;

    /** One magazine per simulated CPU. Lock order: magazine before
     *  depot (fill/drain take the depot lock while holding the
     *  magazine lock, never the reverse). */
    struct Magazine
    {
        std::mutex mu;
        void *freeList = nullptr;
        std::size_t depth = 0;
    };
    mutable std::array<Magazine, kernel::kMaxCpus> mags;
};

namespace {

/** Intrusive link stored in the first word of a free element. */
void *&
freeLink(void *elem)
{
    return *static_cast<void **>(elem);
}

/** Scoped lock-order note for a non-LckMtx lock (zone mutexes), so
 *  zone locks participate in the deadlock-cycle graph. Free when
 *  tracking is off: one relaxed load each way. */
class LockOrderNote
{
  public:
    LockOrderNote(const void *lock, const char *label) : lock_(lock)
    {
        kernel::LockOrderGraph &g = schedRail().lockGraph();
        noted_ = g.tracking();
        if (noted_)
            g.acquired(lock, label);
    }

    ~LockOrderNote()
    {
        if (noted_)
            schedRail().lockGraph().released(lock_);
    }

    LockOrderNote(const LockOrderNote &) = delete;
    LockOrderNote &operator=(const LockOrderNote &) = delete;

  private:
    const void *lock_;
    bool noted_;
};

} // namespace

namespace {

/** Registry of live zones for process-wide leak accounting. Leaky
 *  singletons: zones created by static-lifetime subsystems may be
 *  destroyed after any registry with normal storage duration. */
std::mutex &
zoneRegistryMu()
{
    static auto *mu = new std::mutex;
    return *mu;
}

std::vector<ZoneT *> &
zoneRegistry()
{
    static auto *r = new std::vector<ZoneT *>;
    return *r;
}

} // namespace

ZoneT *
zinit(std::size_t elem_size, const char *zone_name)
{
    auto *z = new ZoneT();
    z->name = zone_name ? zone_name : "?";
    z->elemSize = elem_size;
    // Slots must hold the free-list link and keep every element
    // max-aligned within the slab.
    std::size_t slot = std::max(elem_size, sizeof(void *));
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    z->slotSize = (slot + kAlign - 1) / kAlign * kAlign;
    // Refill roughly a page at a time, as XNU zones do.
    z->chunkElems = std::clamp<std::size_t>(4096 / z->slotSize, 8, 256);
    {
        std::lock_guard<std::mutex> lock(zoneRegistryMu());
        zoneRegistry().push_back(z);
    }
    return z;
}

void
zdestroy(ZoneT *z)
{
    {
        std::lock_guard<std::mutex> lock(zoneRegistryMu());
        auto &reg = zoneRegistry();
        reg.erase(std::remove(reg.begin(), reg.end(), z), reg.end());
    }
    for (void *slab : z->slabs)
        std::free(slab);
    delete z;
}

ZoneRegistryTotals
zone_registry_totals()
{
    ZoneRegistryTotals totals;
    std::lock_guard<std::mutex> lock(zoneRegistryMu());
    for (const ZoneT *z : zoneRegistry()) {
        ZoneStats s = zone_stats(z);
        ++totals.zones;
        totals.liveElements += s.live;
        totals.magazineCached += s.magazineCached;
    }
    return totals;
}

void
zone_registry_each(
    const std::function<void(const char *name, const ZoneStats &)> &fn)
{
    std::lock_guard<std::mutex> lock(zoneRegistryMu());
    for (const ZoneT *z : zoneRegistry())
        fn(z->name.c_str(), zone_stats(z));
}

namespace {

/** Elements moved per depot<->magazine transfer (XNU magazine size
 *  order of magnitude; small enough that depot accounting tests can
 *  exercise multiple fills). */
constexpr std::size_t kMagazineBatch = 32;

/** Pop one element from the depot free-list, carving a fresh slab
 *  when dry. Requires z->mu held. Null only on host-heap exhaustion. */
void *
depotPopLocked(ZoneT *z)
{
    if (!z->freeList) {
        void *slab = std::malloc(z->slotSize * z->chunkElems);
        if (!slab)
            return nullptr;
        z->slabs.push_back(slab);
        char *base = static_cast<char *>(slab);
        for (std::size_t i = z->chunkElems; i-- > 0;) {
            void *elem = base + i * z->slotSize;
            freeLink(elem) = z->freeList;
            z->freeList = elem;
        }
    }
    void *elem = z->freeList;
    z->freeList = freeLink(elem);
    return elem;
}

} // namespace

void *
zalloc(ZoneT *z)
{
    charge(kZallocNs);
    // Both injection paths run before the allocs increment, so the
    // logical allocation index they key on is identical whether the
    // zone is slab-cached or in legacy one-heap-call-per-element mode.
    std::int64_t fail_after = z->failAfter.load(std::memory_order_relaxed);
    if (fail_after >= 0 &&
        static_cast<std::int64_t>(
            z->allocs.load(std::memory_order_relaxed)) >= fail_after) {
        z->failed.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    if (CIDER_FAULT_POINT("zone.alloc")) {
        z->failed.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    if (!z->caching.load(std::memory_order_relaxed)) {
        void *elem = std::malloc(z->elemSize);
        if (!elem) {
            z->failed.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        z->allocs.fetch_add(1, std::memory_order_relaxed);
        z->live.fetch_add(1, std::memory_order_relaxed);
        return elem;
    }
    int cpu = kernel::PerCpu::currentCpu();
    if (cpu >= 0) {
        // CPU-bound fast path: this CPU's magazine, refilled from the
        // depot in batches.
        ZoneT::Magazine &mag = z->mags[static_cast<std::size_t>(cpu)];
        std::lock_guard<std::mutex> lock(mag.mu);
        LockOrderNote note(&mag.mu, z->name.c_str());
        if (mag.freeList) {
            z->magHits.fetch_add(1, std::memory_order_relaxed);
        } else {
            std::lock_guard<std::mutex> depot(z->mu);
            LockOrderNote depot_note(&z->mu, z->name.c_str());
            for (std::size_t i = 0; i < kMagazineBatch; ++i) {
                void *elem = depotPopLocked(z);
                if (!elem)
                    break;
                freeLink(elem) = mag.freeList;
                mag.freeList = elem;
                ++mag.depth;
            }
            if (mag.freeList)
                z->magFills.fetch_add(1, std::memory_order_relaxed);
        }
        if (!mag.freeList) {
            z->failed.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        void *elem = mag.freeList;
        mag.freeList = freeLink(elem);
        --mag.depth;
        z->allocs.fetch_add(1, std::memory_order_relaxed);
        z->live.fetch_add(1, std::memory_order_relaxed);
        return elem;
    }
    // Unbound: the depot directly (the original single-lock path).
    std::lock_guard<std::mutex> lock(z->mu);
    LockOrderNote note(&z->mu, z->name.c_str());
    void *elem = depotPopLocked(z);
    if (!elem) {
        z->failed.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    z->allocs.fetch_add(1, std::memory_order_relaxed);
    z->live.fetch_add(1, std::memory_order_relaxed);
    return elem;
}

void
zfree(ZoneT *z, void *elem)
{
    if (!elem)
        return;
    charge(kZfreeNs);
    if (z->live.load(std::memory_order_relaxed) == 0)
        // invariant-only: double-free by kernel code
        cider_panic("zfree underflow in zone ", z->name);
    z->frees.fetch_add(1, std::memory_order_relaxed);
    z->live.fetch_sub(1, std::memory_order_relaxed);
    if (!z->caching.load(std::memory_order_relaxed)) {
        std::free(elem);
        return;
    }
    int cpu = kernel::PerCpu::currentCpu();
    if (cpu >= 0) {
        ZoneT::Magazine &mag = z->mags[static_cast<std::size_t>(cpu)];
        std::lock_guard<std::mutex> lock(mag.mu);
        LockOrderNote note(&mag.mu, z->name.c_str());
        freeLink(elem) = mag.freeList;
        mag.freeList = elem;
        ++mag.depth;
        if (mag.depth >= 2 * kMagazineBatch) {
            // Overflow: drain a batch back to the depot so one CPU
            // freeing what another allocates cannot strand memory.
            std::lock_guard<std::mutex> depot(z->mu);
            LockOrderNote depot_note(&z->mu, z->name.c_str());
            for (std::size_t i = 0; i < kMagazineBatch; ++i) {
                void *e = mag.freeList;
                mag.freeList = freeLink(e);
                --mag.depth;
                freeLink(e) = z->freeList;
                z->freeList = e;
            }
            z->magDrains.fetch_add(1, std::memory_order_relaxed);
        }
        return;
    }
    std::lock_guard<std::mutex> lock(z->mu);
    LockOrderNote note(&z->mu, z->name.c_str());
    freeLink(elem) = z->freeList;
    z->freeList = elem;
}

ZoneStats
zone_stats(const ZoneT *z)
{
    ZoneStats st;
    st.allocs = z->allocs.load(std::memory_order_relaxed);
    st.frees = z->frees.load(std::memory_order_relaxed);
    st.live = z->live.load(std::memory_order_relaxed);
    st.failed = z->failed.load(std::memory_order_relaxed);
    st.elemSize = z->elemSize;
    st.magazineHits = z->magHits.load(std::memory_order_relaxed);
    st.magazineFills = z->magFills.load(std::memory_order_relaxed);
    st.magazineDrains = z->magDrains.load(std::memory_order_relaxed);
    std::uint64_t cached = 0;
    for (ZoneT::Magazine &mag : z->mags) {
        std::lock_guard<std::mutex> lock(mag.mu);
        cached += mag.depth;
    }
    st.magazineCached = cached;
    return st;
}

void
zone_set_fail_after(ZoneT *z, std::int64_t n)
{
    z->failAfter.store(n, std::memory_order_relaxed);
}

void
zone_set_caching(ZoneT *z, bool enabled)
{
    if (z->caching.load(std::memory_order_relaxed) == enabled)
        return;
    if (z->live.load(std::memory_order_relaxed) != 0)
        // invariant-only: kernel-internal misuse
        cider_panic("zone_set_caching with live elements in zone ",
                    z->name);
    // Return magazine contents to the depot so the toggle leaves no
    // cached elements behind in per-CPU state.
    zone_drain_cpu_caches(z);
    z->caching.store(enabled, std::memory_order_relaxed);
}

void
zone_drain_cpu_caches(ZoneT *z)
{
    for (ZoneT::Magazine &mag : z->mags) {
        std::lock_guard<std::mutex> lock(mag.mu);
        if (!mag.freeList)
            continue;
        LockOrderNote note(&mag.mu, z->name.c_str());
        std::lock_guard<std::mutex> depot(z->mu);
        LockOrderNote depot_note(&z->mu, z->name.c_str());
        while (mag.freeList) {
            void *e = mag.freeList;
            mag.freeList = freeLink(e);
            freeLink(e) = z->freeList;
            z->freeList = e;
        }
        mag.depth = 0;
        z->magDrains.fetch_add(1, std::memory_order_relaxed);
    }
}

namespace {

/**
 * Size-class cache behind xnu_kalloc/xnu_kfree, mirroring XNU's
 * kalloc zones: power-of-two classes from 16 bytes to 4 KiB, each
 * with an intrusive free-list of recycled blocks. Larger requests
 * fall through to the domestic heap. Per-class depth is capped so a
 * burst cannot pin unbounded memory.
 *
 * SMP decomposition: the single cache-wide mutex became one lock per
 * size class in the global tier, plus a small per-simulated-CPU front
 * cache (used when the host thread is CPU-bound via kernel::CpuScope)
 * so the steady-state kalloc/kfree cycle of concurrent host threads
 * touches no shared lock at all.
 */
class KallocCache
{
  public:
    ~KallocCache()
    {
        for (std::size_t c = 0; c < kClasses; ++c) {
            void *p = global_[c].head;
            while (p) {
                void *next = freeLink(p);
                std::free(p);
                p = next;
            }
        }
        for (CpuCache &cc : cpus_)
            for (std::size_t c = 0; c < kClasses; ++c) {
                void *p = cc.heads[c];
                while (p) {
                    void *next = freeLink(p);
                    std::free(p);
                    p = next;
                }
            }
    }

    void *
    alloc(std::size_t size)
    {
        int c = classIndex(size);
        if (c < 0)
            return std::malloc(size);
        auto uc = static_cast<std::size_t>(c);
        int cpu = kernel::PerCpu::currentCpu();
        if (cpu >= 0) {
            CpuCache &cc = cpus_[static_cast<std::size_t>(cpu)];
            std::lock_guard<std::mutex> lock(cc.mu);
            if (void *p = cc.heads[uc]) {
                cc.heads[uc] = freeLink(p);
                --cc.depth[uc];
                return p;
            }
        }
        GlobalClass &g = global_[uc];
        std::lock_guard<std::mutex> lock(g.mu);
        if (void *p = g.head) {
            g.head = freeLink(p);
            --g.depth;
            return p;
        }
        return std::malloc(classSize(c));
    }

    void
    free(void *p, std::size_t size)
    {
        int c = classIndex(size);
        if (c < 0) {
            std::free(p);
            return;
        }
        auto uc = static_cast<std::size_t>(c);
        int cpu = kernel::PerCpu::currentCpu();
        if (cpu >= 0) {
            CpuCache &cc = cpus_[static_cast<std::size_t>(cpu)];
            std::lock_guard<std::mutex> lock(cc.mu);
            if (cc.depth[uc] < kCpuDepth) {
                freeLink(p) = cc.heads[uc];
                cc.heads[uc] = p;
                ++cc.depth[uc];
                return;
            }
        }
        GlobalClass &g = global_[uc];
        std::lock_guard<std::mutex> lock(g.mu);
        if (g.depth >= kMaxDepth) {
            std::free(p);
            return;
        }
        freeLink(p) = g.head;
        g.head = p;
        ++g.depth;
    }

  private:
    static constexpr std::size_t kClasses = 9; // 16 .. 4096
    static constexpr std::size_t kMaxDepth = 1024; ///< per class, global
    static constexpr std::size_t kCpuDepth = 64;   ///< per class, per CPU

    static std::size_t classSize(int c)
    {
        return std::size_t{16} << c;
    }

    /** Smallest class covering @p size, or -1 for heap fallthrough. */
    static int classIndex(std::size_t size)
    {
        if (size == 0 || size > 4096)
            return -1;
        int c = 0;
        while (classSize(c) < size)
            ++c;
        return c;
    }

    struct GlobalClass
    {
        std::mutex mu;
        void *head = nullptr;
        std::size_t depth = 0;
    };

    struct CpuCache
    {
        std::mutex mu;
        void *heads[kClasses] = {};
        std::size_t depth[kClasses] = {};
    };

    GlobalClass global_[kClasses];
    std::array<CpuCache, kernel::kMaxCpus> cpus_;
};

KallocCache &
kallocCache()
{
    static KallocCache cache;
    return cache;
}

} // namespace

void *
xnu_kalloc(std::size_t size)
{
    charge(kKallocNs);
    if (CIDER_FAULT_POINT("kalloc.alloc"))
        return nullptr;
    return kallocCache().alloc(size);
}

void
xnu_kfree(void *p, std::size_t size)
{
    charge(kZfreeNs);
    if (!p)
        return;
    kallocCache().free(p, size);
}

struct WaitQ
{
    std::condition_variable_any cv;
    /** Wakeup epoch: bumped on every wakeup_one/all so timed waiters
     *  can tell an idle grace interval from one where wakeups flowed
     *  to other waiters (see waitq_wait_deadline). */
    std::atomic<std::uint64_t> wakeEpoch{0};
};

WaitQ *
waitq_alloc()
{
    return new WaitQ();
}

void
waitq_free(WaitQ *wq)
{
    delete wq;
}

namespace {

std::atomic<std::uint64_t> blockGraceMs{100};

/**
 * Watchdog bookkeeping for parked threads. Only waits that actually
 * block register here (the uncontended wake-up path never takes this
 * lock), and all timestamps are host-side, so the watchdog is
 * invisible to virtual time.
 */
struct BlockedEntry
{
    const char *site;
    std::uint64_t virtualNs;
    std::chrono::steady_clock::time_point since;
};

/**
 * The watchdog registry is hash-sharded (decomposed from one global
 * mutex) so N host threads parking/unparking concurrently contend
 * only within a bucket, waitq-hash style.
 */
struct BlockedShard
{
    std::mutex mu;
    std::map<const void *, BlockedEntry> map;
};

constexpr std::size_t kBlockedShards = 16;

std::array<BlockedShard, kBlockedShards> &
blockedShards()
{
    static std::array<BlockedShard, kBlockedShards> shards;
    return shards;
}

BlockedShard &
blockedShardFor(const void *key)
{
    auto h = reinterpret_cast<std::uintptr_t>(key);
    // Stack addresses share their low (alignment) and high bits; fold
    // the middle into the bucket index.
    h ^= h >> 9;
    return blockedShards()[(h >> 4) & (kBlockedShards - 1)];
}

/** RAII registration of one parked thread, keyed by stack address. */
class BlockScope
{
  public:
    explicit BlockScope(const char *who)
    {
        BlockedShard &shard = blockedShardFor(this);
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.map[this] = BlockedEntry{
            who, virtualNow(), std::chrono::steady_clock::now()};
    }

    ~BlockScope()
    {
        BlockedShard &shard = blockedShardFor(this);
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.erase(this);
    }
};

} // namespace

void
waitq_wait(WaitQ *wq, LckMtx *held, const std::function<bool()> &pred,
           const char *who)
{
    charge(kBlockNs);
    assertHeldOwned(held, who);
    if (onSchedRail()) {
        kernel::SchedRail &rail = schedRail();
        while (!pred()) {
            railReleaseHeld(held);
            rail.blockOn(wq, who ? who : "waitq");
            railAcquireHeld(held);
        }
        return;
    }
    if (pred())
        return;
    BlockScope scope(who);
    wq->cv.wait(held->mu, pred);
    // Other threads cycled the lock while we were parked; restore the
    // logical owner now that the condvar handed the mutex back.
    held->owner.store(lockOwnerMark(), std::memory_order_relaxed);
}

bool
waitq_wait_deadline(WaitQ *wq, LckMtx *held,
                    const std::function<bool()> &pred,
                    std::uint64_t deadline_ns, const char *who)
{
    charge(kBlockNs);
    assertHeldOwned(held, who);
    if (pred())
        return true;
    std::uint64_t now = virtualNow();
    if (now >= deadline_ns)
        return false;
    if (onSchedRail()) {
        // Deadline expiry is an explicit rail decision: the guest
        // stays schedulable while parked, and the scheduler choosing
        // it IS the timeout firing. A wakeup that lands first makes
        // the guest runnable without firing; a wakeup consumed by
        // another waiter just re-parks us with the deadline pending —
        // so the grace re-arm race cannot occur on the rail by
        // construction.
        kernel::SchedRail &rail = schedRail();
        for (;;) {
            railReleaseHeld(held);
            bool fired =
                rail.blockOnDeadline(wq, who ? who : "waitq");
            railAcquireHeld(held);
            if (pred())
                return true;
            if (fired) {
                charge(deadline_ns - now);
                return false;
            }
        }
    }
    BlockScope scope(who);
    // A parked thread's virtual clock cannot advance, so deadline
    // expiry is decided by host-side grace intervals: once a full
    // interval passes with no wakeup activity on this waitq, none is
    // coming, and the wait times out with the caller's clock advanced
    // exactly to the deadline — host scheduling jitter never leaks
    // into virtual time. An interval that *did* see wakeups (consumed
    // by other waiters, or merely slow to propagate on a loaded host)
    // re-arms the window, so a legitimate wakeup that precedes the
    // virtual deadline is never misreported as a timeout just because
    // the host is busy.
    auto grace = std::chrono::milliseconds(
        blockGraceMs.load(std::memory_order_relaxed));
    for (;;) {
        std::uint64_t epoch =
            wq->wakeEpoch.load(std::memory_order_relaxed);
        if (wq->cv.wait_for(held->mu, grace, pred)) {
            held->owner.store(lockOwnerMark(),
                              std::memory_order_relaxed);
            return true;
        }
        if (wq->wakeEpoch.load(std::memory_order_relaxed) == epoch)
            break; // a truly idle interval: expire
    }
    held->owner.store(lockOwnerMark(), std::memory_order_relaxed);
    charge(deadline_ns - now);
    return false;
}

void
waitq_set_block_grace_ms(std::uint64_t ms)
{
    blockGraceMs.store(ms ? ms : 1, std::memory_order_relaxed);
}

std::uint64_t
waitq_block_grace_ms()
{
    return blockGraceMs.load(std::memory_order_relaxed);
}

std::vector<BlockedWait>
waitq_blocked_waits(double min_host_ms)
{
    std::vector<BlockedWait> out;
    auto now = std::chrono::steady_clock::now();
    for (BlockedShard &shard : blockedShards()) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[key, e] : shard.map) {
            double ms = std::chrono::duration<double, std::milli>(
                            now - e.since)
                            .count();
            if (ms < min_host_ms)
                continue;
            BlockedWait w;
            w.site = e.site;
            w.virtualNs = e.virtualNs;
            w.hostBlockedMs = ms;
            out.push_back(w);
        }
    }
    return out;
}

void
waitq_wakeup_all(WaitQ *wq)
{
    charge(kWakeupNs);
    wq->wakeEpoch.fetch_add(1, std::memory_order_relaxed);
    kernel::SchedRail &rail = schedRail();
    if (rail.engaged())
        rail.wakeupChannel(wq, /*all=*/true);
    wq->cv.notify_all();
}

void
waitq_wakeup_one(WaitQ *wq)
{
    charge(kWakeupNs);
    wq->wakeEpoch.fetch_add(1, std::memory_order_relaxed);
    kernel::SchedRail &rail = schedRail();
    if (rail.engaged())
        rail.wakeupChannel(wq, /*all=*/false);
    wq->cv.notify_one();
}

std::uint64_t
mach_absolute_time()
{
    return virtualNow();
}

void
registerDuctTapeSymbols(SymbolRegistry &registry)
{
    // Domestic primitives the adaptation layer is built on.
    for (const char *sym :
         {"mutex_lock", "mutex_unlock", "kmalloc", "kfree", "wake_up",
          "schedule", "wait_event", "ktime_get", "printk"})
        registry.declare(sym, Zone::Domestic);

    // External XNU symbols the foreign code imports, each mapped onto
    // its domestic implementation through the duct-tape zone.
    registry.mapExternal("lck_mtx_lock", "mutex_lock");
    registry.mapExternal("lck_mtx_unlock", "mutex_unlock");
    registry.mapExternal("lck_mtx_alloc_init", "kmalloc");
    registry.mapExternal("lck_mtx_free", "kfree");
    registry.mapExternal("zinit", "kmalloc");
    registry.mapExternal("zalloc", "kmalloc");
    registry.mapExternal("zfree", "kfree");
    registry.mapExternal("kalloc", "kmalloc");
    registry.mapExternal("thread_block", "wait_event");
    registry.mapExternal("thread_wakeup", "wake_up");
    registry.mapExternal("assert_wait", "wait_event");
    registry.mapExternal("mach_absolute_time", "ktime_get");

    // Names both kernels define: declaring the foreign copy after the
    // domestic one forces the registry to remap it (step 3).
    registry.declare("panic", Zone::Domestic);
    registry.declare("panic", Zone::Foreign);
    registry.declare("current_thread", Zone::Domestic);
    registry.declare("current_thread", Zone::Foreign);
}

} // namespace cider::ducttape
