#include "ducttape/zones.h"

#include <sstream>

#include "base/logging.h"

namespace cider::ducttape {

const char *
zoneName(Zone z)
{
    switch (z) {
      case Zone::Domestic:
        return "domestic";
      case Zone::Foreign:
        return "foreign";
      case Zone::DuctTape:
        return "ducttape";
    }
    return "?";
}

bool
SymbolRegistry::zoneCanSee(Zone from, Zone to)
{
    if (from == to)
        return true;
    if (to == Zone::DuctTape)
        return true;               // everyone sees the duct-tape zone
    return from == Zone::DuctTape; // duct tape sees everyone
}

SymbolInfo *
SymbolRegistry::findIn(Zone zone, const std::string &name)
{
    auto zit = zones_.find(zone);
    if (zit == zones_.end())
        return nullptr;
    auto sit = zit->second.find(name);
    return sit == zit->second.end() ? nullptr : &sit->second;
}

const SymbolInfo &
SymbolRegistry::declare(const std::string &name, Zone zone)
{
    if (findIn(zone, name))
        // invariant-only: symbols are registered by in-tree setup.
        cider_panic("duplicate symbol '", name, "' in zone ",
                    zoneName(zone));

    SymbolInfo info;
    info.name = name;
    info.zone = zone;
    info.linkName = name;

    // Steps 2/3: a same-named symbol in any *other* zone is a
    // conflict; the newcomer gets a unique link name.
    for (Zone other : {Zone::Domestic, Zone::Foreign, Zone::DuctTape}) {
        if (other == zone)
            continue;
        if (findIn(other, name)) {
            std::ostringstream os;
            os << "__" << zoneName(zone) << nextUnique_++ << "_" << name;
            info.linkName = os.str();
            info.remapped = true;
            conflicts_.push_back(name);
            break;
        }
    }

    auto [it, inserted] = zones_[zone].emplace(name, std::move(info));
    (void)inserted;
    return it->second;
}

const SymbolInfo &
SymbolRegistry::mapExternal(const std::string &name,
                            const std::string &target)
{
    if (SymbolInfo *existing = findIn(Zone::DuctTape, name)) {
        existing->mappedTo = target;
        return *existing;
    }
    declare(name, Zone::DuctTape);
    SymbolInfo *created = findIn(Zone::DuctTape, name);
    created->mappedTo = target;
    return *created;
}

Access
SymbolRegistry::resolve(Zone from, const std::string &name,
                        const SymbolInfo **out)
{
    // Preference order: own zone, duct tape, then the remaining zones.
    const Zone order[] = {from, Zone::DuctTape, Zone::Domestic,
                          Zone::Foreign};
    for (Zone z : order) {
        SymbolInfo *info = findIn(z, name);
        if (!info)
            continue;
        if (!zoneCanSee(from, z)) {
            violations_.push_back({from, name, z});
            return Access::Denied;
        }
        if (out)
            *out = info;
        return Access::Ok;
    }
    return Access::NotFound;
}

std::vector<std::string>
SymbolRegistry::conflicts() const
{
    return conflicts_;
}

std::size_t
SymbolRegistry::symbolCount() const
{
    std::size_t n = 0;
    for (const auto &[zone, table] : zones_)
        n += table.size();
    return n;
}

} // namespace cider::ducttape
