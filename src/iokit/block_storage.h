/**
 * @file
 * IOBlockStorageDriver: the block-device family.
 *
 * Matches a bridged Linux device of class "block" (score 900, match
 * category "storage"). I/O requests queue up to the provider's
 * "queue-depth" property and drain in FIFO order when the queue
 * fills, on a Flush, or before a Read needs the data — the shape of
 * a real storage family's request queue, scaled to the simulation.
 * Each drained request charges storage costs from the device profile;
 * FaultRail site "blk.io" fails individual requests.
 */

#ifndef CIDER_IOKIT_BLOCK_STORAGE_H
#define CIDER_IOKIT_BLOCK_STORAGE_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>

#include "iokit/io_service.h"
#include "iokit/linux_bridge.h"

namespace cider::hw {
struct DeviceProfile;
} // namespace cider::hw

namespace cider::iokit {

/** IOBlockStorageDriver external method selectors. */
namespace blksel {

inline constexpr std::uint32_t Read = 0;     ///< in: lba; out: value
inline constexpr std::uint32_t Write = 1;    ///< in: lba, value
inline constexpr std::uint32_t Flush = 2;    ///< out: drained count
inline constexpr std::uint32_t GetStats = 3; ///< out: q,done,err,depth

} // namespace blksel

class IOBlockStorageDriver : public IOService
{
  public:
    IOBlockStorageDriver(ducttape::KernelCxxRuntime &rt,
                         const hw::DeviceProfile &profile);

    const char *className() const override
    {
        return "IOBlockStorageDriver";
    }

    bool probe(IORegistryEntry &provider) override;
    bool start(IORegistryEntry &provider) override;

    xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output) override;

    std::size_t queueDepth() const { return depth_; }
    std::size_t pending() const;
    std::uint64_t completed() const;
    std::uint64_t ioErrors() const;

    static void registerDriver(ducttape::KernelCxxRuntime &rt,
                               IOCatalogue &catalogue,
                               const hw::DeviceProfile &profile);

  private:
    struct Request
    {
        bool write = false;
        std::int64_t lba = 0;
        std::int64_t value = 0;
    };

    /** Complete every queued request in order (locked). */
    std::size_t drainLocked();

    const hw::DeviceProfile &profile_;
    std::size_t depth_ = 8;

    mutable std::mutex mu_;
    std::deque<Request> queue_;
    std::map<std::int64_t, std::int64_t> store_;
    std::uint64_t completed_ = 0;
    std::uint64_t ioErrors_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_BLOCK_STORAGE_H
