/**
 * @file
 * OSObject: the root of the I/O Kit C++ object model (foreign zone).
 *
 * I/O Kit is written in a restricted C++ subset whose objects are
 * reference counted through retain/release rather than destructors.
 * Every object accounts its storage in the kernel C++ runtime Cider
 * added to the domestic kernel (paper section 5.1).
 */

#ifndef CIDER_IOKIT_OS_OBJECT_H
#define CIDER_IOKIT_OS_OBJECT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "ducttape/cxx_runtime.h"

namespace cider::iokit {

/** Property values (OSNumber/OSString/OSBoolean stand-ins). */
using OSValue =
    std::variant<std::monostate, std::int64_t, std::string, bool>;

/** OSDictionary stand-in used for properties and matching. */
using OSDictionary = std::map<std::string, OSValue>;

/** True when every key of @p match equals the value in @p props. */
bool osDictMatches(const OSDictionary &props, const OSDictionary &match);

std::string osValueString(const OSValue &v);

class OSObject
{
  public:
    OSObject(ducttape::KernelCxxRuntime &rt, std::size_t size);
    virtual ~OSObject();

    OSObject(const OSObject &) = delete;
    OSObject &operator=(const OSObject &) = delete;

    void retain();
    /** Drop a reference; deletes the object at zero. */
    void release();
    int refCount() const { return refs_.load(); }

    virtual const char *className() const { return "OSObject"; }

  private:
    ducttape::KernelCxxRuntime *rt_;
    std::size_t size_;
    std::atomic<int> refs_{1};
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_OS_OBJECT_H
