/**
 * @file
 * AppleM2CLCD: the IOMobileFramebuffer-compatible driver class.
 *
 * iOS apps expect to find a framebuffer class named AppleM2CLCD
 * deriving from the IOMobileFramebuffer interface. The Cider
 * prototype "added a single C++ file in the Nexus 7 display driver's
 * source tree" defining this class as a thin wrapper around the Linux
 * driver (paper section 5.1); this is that file. The class registers
 * itself with the catalogue through the kernel C++ runtime's static
 * constructors and matches the bridged Linux framebuffer node.
 */

#ifndef CIDER_IOKIT_FRAMEBUFFER_H
#define CIDER_IOKIT_FRAMEBUFFER_H

#include "iokit/io_service.h"
#include "iokit/linux_bridge.h"

namespace cider::iokit {

/** IOMobileFramebuffer method selectors. */
namespace fbsel {

inline constexpr std::uint32_t GetDisplayInfo = 0; ///< out: w, h
inline constexpr std::uint32_t SwapBegin = 1;
inline constexpr std::uint32_t SwapEnd = 2;       ///< in: buffer id
inline constexpr std::uint32_t GetSwapCount = 3;
inline constexpr std::uint32_t SetFrameRate = 4;  ///< in: fps

} // namespace fbsel

/** Abstract interface class (IOMobileFramebuffer). */
class IOMobileFramebuffer : public IOService
{
  public:
    using IOService::IOService;

    const char *className() const override
    {
        return "IOMobileFramebuffer";
    }
};

/** The display driver class iOS apps look up by name. */
class AppleM2CLCD : public IOMobileFramebuffer
{
  public:
    explicit AppleM2CLCD(ducttape::KernelCxxRuntime &rt);

    const char *className() const override { return "AppleM2CLCD"; }

    bool probe(IORegistryEntry &provider) override;
    bool start(IORegistryEntry &provider) override;

    xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output) override;

    /**
     * Register the driver class with the catalogue — the "small
     * interface function called on Linux kernel boot".
     */
    static void registerDriver(ducttape::KernelCxxRuntime &rt,
                               IOCatalogue &catalogue);

  private:
    kernel::Device *linuxFb_ = nullptr;
    std::uint64_t frameRate_ = 60;
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_FRAMEBUFFER_H
