/**
 * @file
 * IONetworkController / IONetworkInterface: the simulated NIC family.
 *
 * A bridged Linux device of class "network" matches the controller
 * personality (score 1000, match category "net"). start() spawns an
 * IONetworkInterface child in the registry, links the controller onto
 * the loopback NetFabric, and attaches the interface to the kernel's
 * NetStack as its NetDevice — the paper's pattern of an I/O Kit
 * driver class wrapping a Linux device node, here wrapping the wire.
 *
 * The transmit path is where the simulation's network faults live:
 * FaultRail sites nic.drop (lose the frame), nic.dup (deliver it
 * twice) and nic.reorder (hold the frame and emit it after the next
 * one — an adjacent swap) sit between the TX ring and the fabric.
 * Each carried frame charges the sender's CostClock with the device
 * profile's link latency plus a per-byte serialisation cost, so a
 * seeded storm replays bit-identically in virtual time.
 */

#ifndef CIDER_IOKIT_NETWORK_H
#define CIDER_IOKIT_NETWORK_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "iokit/io_service.h"
#include "iokit/linux_bridge.h"
#include "kernel/net.h"

namespace cider::iokit {

class IONetworkController;

/**
 * The loopback wire: routes a frame to the controller owning the
 * destination address. Delivery is synchronous on the caller's host
 * thread; the fabric lock is never held across deliver(), so a
 * delivered frame may transmit replies that re-enter carry().
 */
class NetFabric
{
  public:
    void link(IONetworkController *controller);
    void unlink(IONetworkController *controller);

    /** Route to the controller owning frame.dstAddr (hairpin to the
     *  sender is allowed). False when no controller owns the address. */
    bool carry(const kernel::NetFrame &frame);

    std::size_t linkCount() const;

  private:
    mutable std::mutex mu_;
    std::vector<IONetworkController *> controllers_;
};

/** IONetworkController external method selectors. */
namespace nicsel {

inline constexpr std::uint32_t GetStats = 0;   ///< out: tx,rx,drops
inline constexpr std::uint32_t SetLink = 1;    ///< in: 0 down / 1 up
inline constexpr std::uint32_t GetAddress = 2; ///< out: NetAddr

} // namespace nicsel

/** Aggregate counters of one controller (tests + /proc). */
struct NicStats
{
    std::uint64_t txFrames = 0;
    std::uint64_t txBytes = 0;
    std::uint64_t rxFrames = 0;
    std::uint64_t rxBytes = 0;
    std::uint64_t faultDrops = 0;   ///< nic.drop trips
    std::uint64_t dupFrames = 0;    ///< nic.dup extra deliveries
    std::uint64_t heldFrames = 0;   ///< nic.reorder holds
    std::uint64_t ringDrops = 0;    ///< TX ring overflow (link down)
};

class IONetworkInterface;

class IONetworkController : public IOService
{
  public:
    IONetworkController(ducttape::KernelCxxRuntime &rt,
                        IORegistry &registry, kernel::NetStack &stack,
                        NetFabric &fabric);

    const char *className() const override
    {
        return "IONetworkController";
    }

    bool probe(IORegistryEntry &provider) override;
    bool start(IORegistryEntry &provider) override;
    void stop() override;

    xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output) override;

    kernel::NetAddr address() const { return addr_; }
    const std::string &linuxName() const { return linuxName_; }
    IONetworkInterface *interface() const { return iface_; }
    NicStats stats() const;
    bool linkUp() const;
    void setLink(bool up);

    /**
     * TX entry from the interface: fault sites, ring buffering while
     * the link is down, cost charging, then fabric carry.
     */
    bool enqueueTx(const kernel::NetFrame &frame);

    /** RX from the fabric: accounting, then NetStack::input(). */
    void deliver(const kernel::NetFrame &frame);

    std::string statsLine() const;

    /** Register the controller personality (score 1000, category
     *  "net") for bridged Linux "network"-class devices. */
    static void registerDriver(ducttape::KernelCxxRuntime &rt,
                               IOCatalogue &catalogue,
                               IORegistry &registry,
                               kernel::NetStack &stack,
                               NetFabric &fabric);

  private:
    /** Charge link latency + serialisation, then carry on the fabric. */
    void carryCharged(const kernel::NetFrame &frame);

    IORegistry &registry_;
    kernel::NetStack &stack_;
    NetFabric &fabric_;

    kernel::Device *linuxDev_ = nullptr;
    std::string linuxName_;
    kernel::NetAddr addr_ = 0;
    std::size_t txDepth_ = 16;
    IONetworkInterface *iface_ = nullptr;

    mutable std::mutex mu_;
    bool linkUp_ = true;
    std::deque<kernel::NetFrame> txRing_; ///< buffered while link down
    std::optional<kernel::NetFrame> held_; ///< nic.reorder swap slot
    NicStats stats_;
};

/**
 * The NetDevice face of a controller: what the kernel's NetStack
 * routes frames through. A registry child of its controller.
 */
class IONetworkInterface : public IOService, public kernel::NetDevice
{
  public:
    IONetworkInterface(ducttape::KernelCxxRuntime &rt,
                       IONetworkController &controller,
                       std::string if_name);

    const char *className() const override
    {
        return "IONetworkInterface";
    }

    const std::string &ifName() const override { return ifName_; }
    kernel::NetAddr address() const override
    {
        return controller_.address();
    }
    bool transmit(const kernel::NetFrame &frame) override
    {
        return controller_.enqueueTx(frame);
    }
    std::string statsLine() const override
    {
        return controller_.statsLine();
    }

  private:
    IONetworkController &controller_;
    std::string ifName_;
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_NETWORK_H
