#include "iokit/network.h"

#include <sstream>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "hw/device_profile.h"
#include "kernel/fault_rail.h"

namespace cider::iokit {

// ---------------------------------------------------------------- fabric

void
NetFabric::link(IONetworkController *controller)
{
    std::lock_guard<std::mutex> lk(mu_);
    controllers_.push_back(controller);
}

void
NetFabric::unlink(IONetworkController *controller)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = controllers_.begin(); it != controllers_.end(); ++it) {
        if (*it == controller) {
            controllers_.erase(it);
            return;
        }
    }
}

bool
NetFabric::carry(const kernel::NetFrame &frame)
{
    IONetworkController *target = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (IONetworkController *c : controllers_) {
            if (c->address() == frame.dstAddr) {
                target = c;
                break;
            }
        }
    }
    if (!target)
        return false;
    // Lock released: delivery may transmit replies that re-enter us.
    target->deliver(frame);
    return true;
}

std::size_t
NetFabric::linkCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return controllers_.size();
}

// ------------------------------------------------------------ controller

IONetworkController::IONetworkController(ducttape::KernelCxxRuntime &rt,
                                         IORegistry &registry,
                                         kernel::NetStack &stack,
                                         NetFabric &fabric)
    : IOService(rt, "IONetworkController"), registry_(registry),
      stack_(stack), fabric_(fabric)
{}

bool
IONetworkController::probe(IORegistryEntry &provider)
{
    if (osValueString(provider.property(kLinuxClassKey)) != "network")
        return false;
    kernel::Device *dev = linuxDeviceOf(provider);
    // A NIC without an address cannot join the fabric: fail the probe
    // so a lower-scored personality can take the provider instead.
    return dev && !dev->property("address").empty();
}

bool
IONetworkController::start(IORegistryEntry &provider)
{
    linuxDev_ = linuxDeviceOf(provider);
    if (!linuxDev_)
        return false;
    linuxName_ = linuxDev_->name();
    addr_ = static_cast<kernel::NetAddr>(
        std::stoul(linuxDev_->property("address")));
    if (const std::string depth = linuxDev_->property("tx-depth");
        !depth.empty())
        txDepth_ = std::stoul(depth);

    iface_ = new IONetworkInterface(registry_.runtime(), *this,
                                    linuxName_);
    registry_.attach(iface_, this);

    setProperty("IOClass", std::string("IONetworkController"));
    setProperty("IOProviderClass", std::string("IOLinuxDeviceNode"));
    setProperty("IONetworkAddress",
                static_cast<std::int64_t>(addr_));

    fabric_.link(this);
    stack_.attach(iface_);
    return IOService::start(provider);
}

void
IONetworkController::stop()
{
    if (iface_) {
        stack_.detach(iface_);
        iface_ = nullptr; // released with the registry subtree
    }
    fabric_.unlink(this);
    IOService::stop();
}

bool
IONetworkController::enqueueTx(const kernel::NetFrame &frame)
{
    // Decide under the lock, carry outside it: a carried frame's
    // receiver may transmit replies that re-enter enqueueTx.
    std::vector<kernel::NetFrame> carry;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!linkUp_) {
            // Ring-buffer while the link is down; overflow drops.
            if (txRing_.size() >= txDepth_) {
                ++stats_.ringDrops;
                return false;
            }
            txRing_.push_back(frame);
            return true;
        }

        ++stats_.txFrames;
        stats_.txBytes += frame.payload.size();

        if (CIDER_FAULT_POINT("nic.drop")) {
            ++stats_.faultDrops;
            return true; // the wire ate it; the sender cannot tell
        }
        if (CIDER_FAULT_POINT("nic.reorder") && !held_) {
            // Hold this frame; it rides out after the next one (an
            // adjacent swap). A retransmit pump always pushes a later
            // frame through, so a held frame cannot be stranded.
            held_ = frame;
            ++stats_.heldFrames;
            return true;
        }
        carry.push_back(frame);
        if (CIDER_FAULT_POINT("nic.dup")) {
            ++stats_.dupFrames;
            carry.push_back(frame);
        }
        if (held_) {
            carry.push_back(*held_);
            held_.reset();
        }
    }
    for (const kernel::NetFrame &f : carry)
        carryCharged(f);
    return true;
}

void
IONetworkController::carryCharged(const kernel::NetFrame &frame)
{
    const hw::DeviceProfile &profile = stack_.profile();
    charge(profile.nicLinkLatencyNs +
           frame.payload.size() * profile.nicPerBytePs / 1000);
    fabric_.carry(frame);
}

void
IONetworkController::deliver(const kernel::NetFrame &frame)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.rxFrames;
        stats_.rxBytes += frame.payload.size();
    }
    stack_.input(frame);
}

bool
IONetworkController::linkUp() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return linkUp_;
}

void
IONetworkController::setLink(bool up)
{
    std::deque<kernel::NetFrame> flush;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (linkUp_ == up)
            return;
        linkUp_ = up;
        if (up)
            flush.swap(txRing_);
    }
    // Frames buffered while down leave through the normal TX path
    // (fault sites and cost charging included).
    for (const kernel::NetFrame &f : flush)
        enqueueTx(f);
}

NicStats
IONetworkController::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::string
IONetworkController::statsLine() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    os << linuxName_ << " addr=" << addr_
       << " link=" << (linkUp_ ? "up" : "down")
       << " tx=" << stats_.txFrames << "/" << stats_.txBytes << "B"
       << " rx=" << stats_.rxFrames << "/" << stats_.rxBytes << "B"
       << " drops=" << stats_.faultDrops << " dup=" << stats_.dupFrames
       << " held=" << stats_.heldFrames
       << " ring_drops=" << stats_.ringDrops
       << " ring=" << txRing_.size() << "/" << txDepth_;
    return os.str();
}

xnu::kern_return_t
IONetworkController::externalMethod(std::uint32_t selector,
                                    const std::vector<std::int64_t> &input,
                                    std::vector<std::int64_t> &output)
{
    switch (selector) {
      case nicsel::GetStats: {
          NicStats s = stats();
          output.push_back(static_cast<std::int64_t>(s.txFrames));
          output.push_back(static_cast<std::int64_t>(s.rxFrames));
          output.push_back(static_cast<std::int64_t>(s.faultDrops +
                                                     s.ringDrops));
          return xnu::KERN_SUCCESS;
      }
      case nicsel::SetLink:
        if (input.empty())
            return xnu::KERN_INVALID_ARGUMENT;
        setLink(input[0] != 0);
        return xnu::KERN_SUCCESS;
      case nicsel::GetAddress:
        output.push_back(static_cast<std::int64_t>(addr_));
        return xnu::KERN_SUCCESS;
      default:
        return xnu::KERN_FAILURE;
    }
}

void
IONetworkController::registerDriver(ducttape::KernelCxxRuntime &rt,
                                    IOCatalogue &catalogue,
                                    IORegistry &registry,
                                    kernel::NetStack &stack,
                                    NetFabric &fabric)
{
    rt.addStaticConstructor(
        "IONetworkController", [&rt, &catalogue, &registry, &stack,
                                &fabric] {
            OSDictionary match;
            match[kLinuxClassKey] = std::string("network");
            IOCatalogue::IOPersonality personality;
            personality.className = "IONetworkController";
            personality.match = std::move(match);
            personality.probeScore = 1000;
            personality.matchCategory = "net";
            personality.factory =
                [&registry, &stack,
                 &fabric](ducttape::KernelCxxRuntime &runtime)
                -> IOService * {
                return new IONetworkController(runtime, registry,
                                               stack, fabric);
            };
            catalogue.addPersonality(std::move(personality));
        });
}

// ------------------------------------------------------------- interface

IONetworkInterface::IONetworkInterface(ducttape::KernelCxxRuntime &rt,
                                       IONetworkController &controller,
                                       std::string if_name)
    : IOService(rt, "IONetworkInterface"), controller_(controller),
      ifName_(std::move(if_name))
{
    setProperty("IOClass", std::string("IONetworkInterface"));
    setProperty("BSD Name", ifName_);
}

} // namespace cider::iokit
