#include "iokit/os_object.h"

#include "base/logging.h"

namespace cider::iokit {

bool
osDictMatches(const OSDictionary &props, const OSDictionary &match)
{
    for (const auto &[key, want] : match) {
        auto it = props.find(key);
        if (it == props.end() || !(it->second == want))
            return false;
    }
    return true;
}

std::string
osValueString(const OSValue &v)
{
    if (const auto *s = std::get_if<std::string>(&v))
        return *s;
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return std::to_string(*i);
    if (const auto *b = std::get_if<bool>(&v))
        return *b ? "true" : "false";
    return {};
}

OSObject::OSObject(ducttape::KernelCxxRuntime &rt, std::size_t size)
    : rt_(&rt), size_(size)
{
    rt_->noteConstruct(size_);
}

OSObject::~OSObject()
{
    rt_->noteDestroy(size_);
}

void
OSObject::retain()
{
    refs_.fetch_add(1, std::memory_order_relaxed);
}

void
OSObject::release()
{
    int prev = refs_.fetch_sub(1, std::memory_order_acq_rel);
    if (prev <= 0)
        // invariant-only: a refcount underflow is kernel-internal misuse.
        cider_panic("OSObject over-release of ", className());
    if (prev == 1)
        delete this;
}

} // namespace cider::iokit
