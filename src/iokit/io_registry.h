/**
 * @file
 * The I/O Kit registry: the tree of device and driver instances that
 * iOS user space queries to locate devices and their properties.
 */

#ifndef CIDER_IOKIT_IO_REGISTRY_H
#define CIDER_IOKIT_IO_REGISTRY_H

#include <functional>
#include <vector>

#include "iokit/os_object.h"

namespace cider::iokit {

class IORegistry;

class IORegistryEntry : public OSObject
{
  public:
    IORegistryEntry(ducttape::KernelCxxRuntime &rt, std::string name);

    const char *className() const override { return "IORegistryEntry"; }

    const std::string &entryName() const { return name_; }
    std::uint64_t entryId() const { return entryId_; }

    void setProperty(const std::string &key, OSValue value);
    OSValue property(const std::string &key) const;
    const OSDictionary &properties() const { return props_; }

    IORegistryEntry *parent() const { return parent_; }
    const std::vector<IORegistryEntry *> &children() const
    {
        return children_;
    }

  private:
    friend class IORegistry;

    std::string name_;
    OSDictionary props_;
    std::uint64_t entryId_ = 0;
    IORegistryEntry *parent_ = nullptr;
    std::vector<IORegistryEntry *> children_;
};

class IORegistry
{
  public:
    explicit IORegistry(ducttape::KernelCxxRuntime &rt);
    ~IORegistry();

    IORegistry(const IORegistry &) = delete;
    IORegistry &operator=(const IORegistry &) = delete;

    IORegistryEntry &root() { return *root_; }
    const IORegistryEntry &root() const { return *root_; }

    /**
     * Attach @p entry (taking ownership of one reference) under
     * @p parent (the root when null) and assign its entry id.
     */
    void attach(IORegistryEntry *entry,
                IORegistryEntry *parent = nullptr);

    /** Detach and release @p entry and its subtree. */
    void detach(IORegistryEntry *entry);

    IORegistryEntry *findByName(const std::string &name) const;
    IORegistryEntry *findById(std::uint64_t id) const;
    std::vector<IORegistryEntry *>
    matchAll(const OSDictionary &match) const;
    std::size_t entryCount() const;

    /**
     * Publication hook: fired when a freshly attached entry is
     * published for driver matching (the catalogue subscribes).
     */
    using PublishHook = std::function<void(IORegistryEntry &)>;
    void setPublishHook(PublishHook hook) { publishHook_ = hook; }
    void publish(IORegistryEntry &entry);

    ducttape::KernelCxxRuntime &runtime() { return rt_; }

  private:
    void collect(IORegistryEntry *entry,
                 std::vector<IORegistryEntry *> &out) const;

    ducttape::KernelCxxRuntime &rt_;
    IORegistryEntry *root_;
    std::uint64_t nextId_ = 1;
    PublishHook publishHook_;
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_IO_REGISTRY_H
