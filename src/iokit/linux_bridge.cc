#include "iokit/linux_bridge.h"

namespace cider::iokit {

void
installLinuxBridge(kernel::DeviceRegistry &devices, IORegistry &registry)
{
    IORegistry *reg = &registry;
    devices.setAddHook([reg](kernel::Device &dev) {
        // One device class instance per Linux device node.
        auto *entry =
            new IORegistryEntry(reg->runtime(), dev.name());
        entry->setProperty(kLinuxClassKey, dev.deviceClass());
        entry->setProperty(
            kLinuxDeviceKey,
            static_cast<std::int64_t>(
                reinterpret_cast<std::uintptr_t>(&dev)));
        for (const auto &[key, value] : dev.properties())
            entry->setProperty(key, value);
        reg->attach(entry);
        // Publication triggers catalogue driver matching.
        reg->publish(*entry);
    });
}

kernel::Device *
linuxDeviceOf(IORegistryEntry &entry)
{
    OSValue v = entry.property(kLinuxDeviceKey);
    if (const auto *p = std::get_if<std::int64_t>(&v))
        return reinterpret_cast<kernel::Device *>(
            static_cast<std::uintptr_t>(*p));
    return nullptr;
}

} // namespace cider::iokit
