/**
 * @file
 * IOSurfaceRoot: the kernel half of the IOSurface zero-copy graphics
 * memory abstraction.
 *
 * "An IOSurface object can be used to render 2D graphics via
 * CPU-bound drawing routines, efficiently passed to other processes
 * or apps via Mach IPC, and even used as the backing memory for
 * OpenGL ES textures" (paper section 5.3). Surfaces here are
 * gpu::GraphicsBuffer objects shared with Android's gralloc, so a
 * diplomat-allocated surface is literally the same memory the
 * domestic GL stack renders into — the zero-copy property Cider's
 * graphics path depends on.
 */

#ifndef CIDER_IOKIT_IO_SURFACE_H
#define CIDER_IOKIT_IO_SURFACE_H

#include "gpu/sim_gpu.h"
#include "iokit/io_service.h"

namespace cider::iokit {

/** IOSurfaceRoot method selectors. */
namespace surfsel {

inline constexpr std::uint32_t Create = 0;  ///< in: w, h; out: id
inline constexpr std::uint32_t GetInfo = 1; ///< in: id; out: w, h
inline constexpr std::uint32_t Release = 2; ///< in: id
inline constexpr std::uint32_t Count = 3;   ///< out: live surfaces

} // namespace surfsel

class IOSurfaceRoot : public IOService
{
  public:
    IOSurfaceRoot(ducttape::KernelCxxRuntime &rt,
                  gpu::BufferManager &buffers);

    const char *className() const override { return "IOSurfaceRoot"; }

    xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output) override;

    gpu::BufferManager &buffers() { return buffers_; }

  private:
    gpu::BufferManager &buffers_;
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_IO_SURFACE_H
