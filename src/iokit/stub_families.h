/**
 * @file
 * Stub audio and graphics-accelerator families.
 *
 * Thin driver classes completing the catalogue's family coverage:
 * IOHDACodec claims "audio"-class providers, IOAccelerator claims
 * "gpu"-class providers under its own "accel" match category (so it
 * coexists with other services on the same provider). Both answer a
 * couple of external methods; neither models hardware beyond that —
 * they exist so matching, category independence and /proc reporting
 * are exercised across more than one family.
 */

#ifndef CIDER_IOKIT_STUB_FAMILIES_H
#define CIDER_IOKIT_STUB_FAMILIES_H

#include "iokit/io_service.h"
#include "iokit/linux_bridge.h"

namespace cider::iokit {

/** IOHDACodec external method selectors. */
namespace hdasel {

inline constexpr std::uint32_t GetSampleRate = 0; ///< out: Hz

} // namespace hdasel

class IOHDACodec : public IOService
{
  public:
    explicit IOHDACodec(ducttape::KernelCxxRuntime &rt)
        : IOService(rt, "IOHDACodec")
    {}

    const char *className() const override { return "IOHDACodec"; }

    bool probe(IORegistryEntry &provider) override;
    bool start(IORegistryEntry &provider) override;

    xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output) override;

    static void registerDriver(ducttape::KernelCxxRuntime &rt,
                               IOCatalogue &catalogue);
};

/** IOAccelerator external method selectors. */
namespace accelsel {

inline constexpr std::uint32_t GetDeviceUnits = 0; ///< out: core count

} // namespace accelsel

class IOAccelerator : public IOService
{
  public:
    explicit IOAccelerator(ducttape::KernelCxxRuntime &rt)
        : IOService(rt, "IOAccelerator")
    {}

    const char *className() const override { return "IOAccelerator"; }

    bool probe(IORegistryEntry &provider) override;
    bool start(IORegistryEntry &provider) override;

    xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output) override;

    static void registerDriver(ducttape::KernelCxxRuntime &rt,
                               IOCatalogue &catalogue);
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_STUB_FAMILIES_H
