#include "iokit/block_storage.h"

#include "base/cost_clock.h"
#include "hw/device_profile.h"
#include "kernel/fault_rail.h"

namespace cider::iokit {

namespace {

/** Simulated sector size: what one queued request moves. */
constexpr std::uint64_t kBlockBytes = 512;

} // namespace

IOBlockStorageDriver::IOBlockStorageDriver(
    ducttape::KernelCxxRuntime &rt, const hw::DeviceProfile &profile)
    : IOService(rt, "IOBlockStorageDriver"), profile_(profile)
{}

bool
IOBlockStorageDriver::probe(IORegistryEntry &provider)
{
    return osValueString(provider.property(kLinuxClassKey)) == "block" &&
           linuxDeviceOf(provider) != nullptr;
}

bool
IOBlockStorageDriver::start(IORegistryEntry &provider)
{
    kernel::Device *dev = linuxDeviceOf(provider);
    if (!dev)
        return false;
    if (const std::string depth = dev->property("queue-depth");
        !depth.empty())
        depth_ = std::stoul(depth);
    setProperty("IOClass", std::string("IOBlockStorageDriver"));
    setProperty("QueueDepth", static_cast<std::int64_t>(depth_));
    return IOService::start(provider);
}

std::size_t
IOBlockStorageDriver::drainLocked()
{
    std::size_t drained = 0;
    while (!queue_.empty()) {
        Request req = queue_.front();
        queue_.pop_front();
        charge(profile_.storageOpenNs +
               kBlockBytes * (req.write ? profile_.storageWriteBytePs
                                        : profile_.storageReadBytePs) /
                   1000);
        if (CIDER_FAULT_POINT("blk.io")) {
            ++ioErrors_;
            continue;
        }
        if (req.write)
            store_[req.lba] = req.value;
        ++completed_;
        ++drained;
    }
    return drained;
}

xnu::kern_return_t
IOBlockStorageDriver::externalMethod(
    std::uint32_t selector, const std::vector<std::int64_t> &input,
    std::vector<std::int64_t> &output)
{
    std::lock_guard<std::mutex> lk(mu_);
    switch (selector) {
      case blksel::Read: {
          if (input.empty())
              return xnu::KERN_INVALID_ARGUMENT;
          // Reads see every prior write: drain the queue first.
          drainLocked();
          charge(profile_.storageOpenNs +
                 kBlockBytes * profile_.storageReadBytePs / 1000);
          auto it = store_.find(input[0]);
          output.push_back(it == store_.end() ? 0 : it->second);
          return xnu::KERN_SUCCESS;
      }
      case blksel::Write:
        if (input.size() < 2)
            return xnu::KERN_INVALID_ARGUMENT;
        queue_.push_back({true, input[0], input[1]});
        // The queue auto-drains when it reaches the device depth.
        if (queue_.size() >= depth_)
            drainLocked();
        return xnu::KERN_SUCCESS;
      case blksel::Flush:
        ++flushes_;
        output.push_back(
            static_cast<std::int64_t>(drainLocked()));
        return xnu::KERN_SUCCESS;
      case blksel::GetStats:
        output.push_back(static_cast<std::int64_t>(queue_.size()));
        output.push_back(static_cast<std::int64_t>(completed_));
        output.push_back(static_cast<std::int64_t>(ioErrors_));
        output.push_back(static_cast<std::int64_t>(depth_));
        return xnu::KERN_SUCCESS;
      default:
        return xnu::KERN_FAILURE;
    }
}

std::size_t
IOBlockStorageDriver::pending() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
}

std::uint64_t
IOBlockStorageDriver::completed() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return completed_;
}

std::uint64_t
IOBlockStorageDriver::ioErrors() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return ioErrors_;
}

void
IOBlockStorageDriver::registerDriver(ducttape::KernelCxxRuntime &rt,
                                     IOCatalogue &catalogue,
                                     const hw::DeviceProfile &profile)
{
    rt.addStaticConstructor(
        "IOBlockStorageDriver", [&rt, &catalogue, &profile] {
            OSDictionary match;
            match[kLinuxClassKey] = std::string("block");
            IOCatalogue::IOPersonality personality;
            personality.className = "IOBlockStorageDriver";
            personality.match = std::move(match);
            personality.probeScore = 900;
            personality.matchCategory = "storage";
            personality.factory =
                [&profile](ducttape::KernelCxxRuntime &runtime)
                -> IOService * {
                return new IOBlockStorageDriver(runtime, profile);
            };
            catalogue.addPersonality(std::move(personality));
        });
}

} // namespace cider::iokit
