/**
 * @file
 * IOService, the driver catalogue, and the Mach traps that expose
 * I/O Kit to iOS user space.
 *
 * The flow mirrors section 5.1 of the paper: Linux devices become
 * *device class instances* in the registry; driver classes register
 * with the catalogue; the duct-taped matching code pairs driver and
 * device, instantiates the driver, and starts it; iOS user space then
 * locates and drives the service through Mach calls.
 */

#ifndef CIDER_IOKIT_IO_SERVICE_H
#define CIDER_IOKIT_IO_SERVICE_H

#include <functional>
#include <memory>
#include <vector>

#include "iokit/io_registry.h"
#include "xnu/kern_return.h"

namespace cider::kernel {
class SyscallTable;
} // namespace cider::kernel

namespace cider::iokit {

class IOService : public IORegistryEntry
{
  public:
    IOService(ducttape::KernelCxxRuntime &rt, std::string name);

    const char *className() const override { return "IOService"; }

    /** Probe whether this driver can handle @p provider. */
    virtual bool probe(IORegistryEntry &provider);

    /** Begin driving @p provider. */
    virtual bool start(IORegistryEntry &provider);
    virtual void stop();
    bool started() const { return started_; }
    IORegistryEntry *provider() const { return provider_; }

    /**
     * The user-client entry point: iOS libraries call selectors with
     * scalar arguments, exactly the shape of IOConnectCallMethod.
     */
    virtual xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output);

  private:
    bool started_ = false;
    IORegistryEntry *provider_ = nullptr;
};

/**
 * The driver catalogue: registered driver classes plus the matching
 * logic run at device publication.
 */
class IOCatalogue
{
  public:
    using Factory =
        std::function<IOService *(ducttape::KernelCxxRuntime &)>;

    explicit IOCatalogue(IORegistry &registry);

    /**
     * Register a driver class: instances are created for every
     * published registry entry whose properties match @p match.
     * Already-published entries are re-matched immediately.
     */
    void addDriver(const std::string &class_name, OSDictionary match,
                   Factory factory);

    /** Find a started service by driver class name. */
    IOService *findService(const std::string &class_name) const;

    const std::vector<IOService *> &services() const
    {
        return services_;
    }

  private:
    struct DriverInfo
    {
        std::string className;
        OSDictionary match;
        Factory factory;
    };

    void matchEntry(IORegistryEntry &entry);

    IORegistry &registry_;
    std::vector<DriverInfo> drivers_;
    std::vector<IOService *> services_; ///< borrowed from registry
};

/** IOKit Mach trap numbers (Cider extension range). */
namespace iokitno {

inline constexpr int GET_MATCHING_SERVICE = -60;
inline constexpr int GET_PROPERTY = -61;
inline constexpr int CONNECT_CALL_METHOD = -62;

} // namespace iokitno

/** Argument block for CONNECT_CALL_METHOD. */
struct IoConnectArgs
{
    std::vector<std::int64_t> input;
    std::vector<std::int64_t> output;
};

/** Expose the registry/catalogue through Mach traps. */
void registerIoKitTraps(kernel::SyscallTable &mach_table,
                        IORegistry &registry, IOCatalogue &catalogue);

} // namespace cider::iokit

#endif // CIDER_IOKIT_IO_SERVICE_H
