/**
 * @file
 * IOService, the driver catalogue, and the Mach traps that expose
 * I/O Kit to iOS user space.
 *
 * The flow mirrors section 5.1 of the paper: Linux devices become
 * *device class instances* in the registry; driver classes register
 * with the catalogue; the duct-taped matching code pairs driver and
 * device, instantiates the driver, and starts it; iOS user space then
 * locates and drives the service through Mach calls.
 */

#ifndef CIDER_IOKIT_IO_SERVICE_H
#define CIDER_IOKIT_IO_SERVICE_H

#include <functional>
#include <memory>
#include <vector>

#include "iokit/io_registry.h"
#include "kernel/device.h"
#include "xnu/kern_return.h"

namespace cider::kernel {
class SyscallTable;
} // namespace cider::kernel

namespace cider::iokit {

class IOService : public IORegistryEntry
{
  public:
    IOService(ducttape::KernelCxxRuntime &rt, std::string name);

    const char *className() const override { return "IOService"; }

    /** Probe whether this driver can handle @p provider. */
    virtual bool probe(IORegistryEntry &provider);

    /** Begin driving @p provider. */
    virtual bool start(IORegistryEntry &provider);
    virtual void stop();
    bool started() const { return started_; }
    IORegistryEntry *provider() const { return provider_; }

    /** Matching metadata stamped by the catalogue at instantiation. */
    std::int32_t probeScore() const { return probeScore_; }
    const std::string &matchCategory() const { return category_; }
    void setMatchMeta(std::int32_t score, std::string category)
    {
        probeScore_ = score;
        category_ = std::move(category);
    }

    /**
     * The user-client entry point: iOS libraries call selectors with
     * scalar arguments, exactly the shape of IOConnectCallMethod.
     */
    virtual xnu::kern_return_t
    externalMethod(std::uint32_t selector,
                   const std::vector<std::int64_t> &input,
                   std::vector<std::int64_t> &output);

  private:
    bool started_ = false;
    IORegistryEntry *provider_ = nullptr;
    std::int32_t probeScore_ = 0;
    std::string category_;
};

/**
 * The driver catalogue: registered driver classes plus the matching
 * logic run at device publication.
 */
class IOCatalogue
{
  public:
    using Factory =
        std::function<IOService *(ducttape::KernelCxxRuntime &)>;

    /**
     * One driver personality, the unit of matching: a property
     * dictionary plus a probe score. When several personalities of
     * the same match category match one provider, candidates probe
     * in descending score order and the first successful
     * probe+start wins the category; a failed probe or start falls
     * through to the next candidate. Personalities with different
     * categories attach independently (e.g. a storage driver and a
     * diagnostics driver on the same device).
     */
    struct IOPersonality
    {
        std::string className;
        OSDictionary match;
        std::int32_t probeScore = 0;
        std::string matchCategory; // "" = the default category
        Factory factory;
        // Matching statistics (for /proc/cider/iokit and tests).
        std::uint64_t probes = 0;
        std::uint64_t probeFailures = 0;
        std::uint64_t startFailures = 0;
        std::uint64_t wins = 0;
    };

    explicit IOCatalogue(IORegistry &registry);

    /**
     * Register a personality: instances are created for published
     * registry entries whose properties match. Already-published
     * entries are re-matched immediately (kernel modules can load
     * after boot).
     */
    void addPersonality(IOPersonality personality);

    /** Back-compat shorthand: score 0, default match category. */
    void addDriver(const std::string &class_name, OSDictionary match,
                   Factory factory);

    /** Find a started service by driver class name. */
    IOService *findService(const std::string &class_name) const;

    /**
     * Stop a started service and unwind its registry attachment
     * (subtree detach + release). Returns false when the service is
     * not one of ours. The provider is NOT re-matched; call
     * rematch() to let the next-best personality take over.
     */
    bool terminate(IOService *service);

    /** Re-run matching for one published provider entry. */
    void rematch(IORegistryEntry &entry) { matchEntry(entry); }

    const std::vector<IOService *> &services() const
    {
        return services_;
    }
    const std::vector<IOPersonality> &personalities() const
    {
        return personalities_;
    }

  private:
    void matchEntry(IORegistryEntry &entry);

    IORegistry &registry_;
    std::vector<IOPersonality> personalities_;
    std::vector<IOService *> services_; ///< borrowed from registry
};

/** IOKit Mach trap numbers (Cider extension range). */
namespace iokitno {

inline constexpr int GET_MATCHING_SERVICE = -60;
inline constexpr int GET_PROPERTY = -61;
inline constexpr int CONNECT_CALL_METHOD = -62;

} // namespace iokitno

/** Argument block for CONNECT_CALL_METHOD. */
struct IoConnectArgs
{
    std::vector<std::int64_t> input;
    std::vector<std::int64_t> output;
};

/** Expose the registry/catalogue through Mach traps. */
void registerIoKitTraps(kernel::SyscallTable &mach_table,
                        IORegistry &registry, IOCatalogue &catalogue);

/** /proc/cider/iokit: registry tree, services, personality stats. */
class IoKitStatsDevice : public kernel::Device
{
  public:
    IoKitStatsDevice(const IORegistry &registry,
                     const IOCatalogue &catalogue)
        : Device("iokit", "proc"), registry_(registry),
          catalogue_(catalogue)
    {}

    kernel::SyscallResult read(kernel::Thread &t, Bytes &out,
                               std::size_t n) override;

  private:
    const IORegistry &registry_;
    const IOCatalogue &catalogue_;
};

} // namespace cider::iokit

#endif // CIDER_IOKIT_IO_SERVICE_H
