#include "iokit/stub_families.h"

namespace cider::iokit {

// ------------------------------------------------------------ IOHDACodec

bool
IOHDACodec::probe(IORegistryEntry &provider)
{
    return osValueString(provider.property(kLinuxClassKey)) == "audio";
}

bool
IOHDACodec::start(IORegistryEntry &provider)
{
    setProperty("IOClass", std::string("IOHDACodec"));
    return IOService::start(provider);
}

xnu::kern_return_t
IOHDACodec::externalMethod(std::uint32_t selector,
                           const std::vector<std::int64_t> &,
                           std::vector<std::int64_t> &output)
{
    if (selector != hdasel::GetSampleRate)
        return xnu::KERN_FAILURE;
    output.push_back(44100);
    return xnu::KERN_SUCCESS;
}

void
IOHDACodec::registerDriver(ducttape::KernelCxxRuntime &rt,
                           IOCatalogue &catalogue)
{
    rt.addStaticConstructor("IOHDACodec", [&rt, &catalogue] {
        OSDictionary match;
        match[kLinuxClassKey] = std::string("audio");
        IOCatalogue::IOPersonality personality;
        personality.className = "IOHDACodec";
        personality.match = std::move(match);
        personality.probeScore = 500;
        personality.matchCategory = "audio";
        personality.factory =
            [](ducttape::KernelCxxRuntime &runtime) -> IOService * {
            return new IOHDACodec(runtime);
        };
        catalogue.addPersonality(std::move(personality));
    });
}

// ---------------------------------------------------------- IOAccelerator

bool
IOAccelerator::probe(IORegistryEntry &provider)
{
    return osValueString(provider.property(kLinuxClassKey)) == "gpu";
}

bool
IOAccelerator::start(IORegistryEntry &provider)
{
    setProperty("IOClass", std::string("IOAccelerator"));
    return IOService::start(provider);
}

xnu::kern_return_t
IOAccelerator::externalMethod(std::uint32_t selector,
                              const std::vector<std::int64_t> &,
                              std::vector<std::int64_t> &output)
{
    if (selector != accelsel::GetDeviceUnits)
        return xnu::KERN_FAILURE;
    output.push_back(4);
    return xnu::KERN_SUCCESS;
}

void
IOAccelerator::registerDriver(ducttape::KernelCxxRuntime &rt,
                              IOCatalogue &catalogue)
{
    rt.addStaticConstructor("IOAccelerator", [&rt, &catalogue] {
        OSDictionary match;
        match[kLinuxClassKey] = std::string("gpu");
        IOCatalogue::IOPersonality personality;
        personality.className = "IOAccelerator";
        personality.match = std::move(match);
        personality.probeScore = 400;
        // Its own category: coexists with other services that claim
        // the same provider under theirs.
        personality.matchCategory = "accel";
        personality.factory =
            [](ducttape::KernelCxxRuntime &runtime) -> IOService * {
            return new IOAccelerator(runtime);
        };
        catalogue.addPersonality(std::move(personality));
    });
}

} // namespace cider::iokit
