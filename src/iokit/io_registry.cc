#include "iokit/io_registry.h"

#include <algorithm>

#include "base/logging.h"

namespace cider::iokit {

IORegistryEntry::IORegistryEntry(ducttape::KernelCxxRuntime &rt,
                                 std::string name)
    : OSObject(rt, sizeof(IORegistryEntry)), name_(std::move(name))
{}

void
IORegistryEntry::setProperty(const std::string &key, OSValue value)
{
    props_[key] = std::move(value);
}

OSValue
IORegistryEntry::property(const std::string &key) const
{
    auto it = props_.find(key);
    return it == props_.end() ? OSValue{} : it->second;
}

IORegistry::IORegistry(ducttape::KernelCxxRuntime &rt) : rt_(rt)
{
    root_ = new IORegistryEntry(rt_, "Root");
    root_->entryId_ = nextId_++;
}

IORegistry::~IORegistry()
{
    // Release the whole tree bottom-up.
    std::vector<IORegistryEntry *> all;
    collect(root_, all);
    for (auto it = all.rbegin(); it != all.rend(); ++it)
        (*it)->release();
}

void
IORegistry::collect(IORegistryEntry *entry,
                    std::vector<IORegistryEntry *> &out) const
{
    out.push_back(entry);
    for (IORegistryEntry *child : entry->children_)
        collect(child, out);
}

void
IORegistry::attach(IORegistryEntry *entry, IORegistryEntry *parent)
{
    if (!entry)
        // invariant-only: drivers attach statically built entries.
        cider_panic("attach of null registry entry");
    if (!parent)
        parent = root_;
    entry->parent_ = parent;
    entry->entryId_ = nextId_++;
    parent->children_.push_back(entry);
}

void
IORegistry::detach(IORegistryEntry *entry)
{
    if (!entry || entry == root_)
        return;
    std::vector<IORegistryEntry *> subtree;
    collect(entry, subtree);
    if (entry->parent_) {
        auto &siblings = entry->parent_->children_;
        siblings.erase(
            std::remove(siblings.begin(), siblings.end(), entry),
            siblings.end());
    }
    for (auto it = subtree.rbegin(); it != subtree.rend(); ++it)
        (*it)->release();
}

IORegistryEntry *
IORegistry::findByName(const std::string &name) const
{
    std::vector<IORegistryEntry *> all;
    collect(root_, all);
    for (IORegistryEntry *entry : all)
        if (entry->entryName() == name)
            return entry;
    return nullptr;
}

IORegistryEntry *
IORegistry::findById(std::uint64_t id) const
{
    std::vector<IORegistryEntry *> all;
    collect(root_, all);
    for (IORegistryEntry *entry : all)
        if (entry->entryId() == id)
            return entry;
    return nullptr;
}

std::vector<IORegistryEntry *>
IORegistry::matchAll(const OSDictionary &match) const
{
    std::vector<IORegistryEntry *> all, out;
    collect(root_, all);
    for (IORegistryEntry *entry : all)
        if (osDictMatches(entry->properties(), match))
            out.push_back(entry);
    return out;
}

std::size_t
IORegistry::entryCount() const
{
    std::vector<IORegistryEntry *> all;
    collect(root_, all);
    return all.size();
}

void
IORegistry::publish(IORegistryEntry &entry)
{
    if (publishHook_)
        publishHook_(entry);
}

} // namespace cider::iokit
