#include "iokit/io_surface.h"

namespace cider::iokit {

IOSurfaceRoot::IOSurfaceRoot(ducttape::KernelCxxRuntime &rt,
                             gpu::BufferManager &buffers)
    : IOService(rt, "IOSurfaceRoot"), buffers_(buffers)
{}

xnu::kern_return_t
IOSurfaceRoot::externalMethod(std::uint32_t selector,
                              const std::vector<std::int64_t> &input,
                              std::vector<std::int64_t> &output)
{
    switch (selector) {
      case surfsel::Create: {
          if (input.size() < 2)
              return xnu::KERN_INVALID_ARGUMENT;
          gpu::BufferPtr buf = buffers_.create(
              static_cast<std::uint32_t>(input[0]),
              static_cast<std::uint32_t>(input[1]));
          output.push_back(buf->id);
          return xnu::KERN_SUCCESS;
      }
      case surfsel::GetInfo: {
          if (input.empty())
              return xnu::KERN_INVALID_ARGUMENT;
          gpu::BufferPtr buf = buffers_.find(
              static_cast<std::uint32_t>(input[0]));
          if (!buf)
              return xnu::KERN_INVALID_NAME;
          output.push_back(buf->width);
          output.push_back(buf->height);
          return xnu::KERN_SUCCESS;
      }
      case surfsel::Release: {
          if (input.empty())
              return xnu::KERN_INVALID_ARGUMENT;
          bool ok = buffers_.destroy(
              static_cast<std::uint32_t>(input[0]));
          return ok ? xnu::KERN_SUCCESS : xnu::KERN_INVALID_NAME;
      }
      case surfsel::Count:
        output.push_back(
            static_cast<std::int64_t>(buffers_.liveCount()));
        return xnu::KERN_SUCCESS;
      default:
        return xnu::KERN_FAILURE;
    }
}

} // namespace cider::iokit
