#include "iokit/framebuffer.h"

#include "base/logging.h"
#include "gpu/sim_gpu.h"
#include "kernel/thread.h"

namespace cider::iokit {

AppleM2CLCD::AppleM2CLCD(ducttape::KernelCxxRuntime &rt)
    : IOMobileFramebuffer(rt, "AppleM2CLCD")
{}

bool
AppleM2CLCD::probe(IORegistryEntry &provider)
{
    return osValueString(provider.property(kLinuxClassKey)) ==
           "framebuffer";
}

bool
AppleM2CLCD::start(IORegistryEntry &provider)
{
    linuxFb_ = linuxDeviceOf(provider);
    if (!linuxFb_)
        return false;
    setProperty("IOClass", std::string("AppleM2CLCD"));
    setProperty("IOProviderClass", std::string("IOLinuxDeviceNode"));
    return IOService::start(provider);
}

xnu::kern_return_t
AppleM2CLCD::externalMethod(std::uint32_t selector,
                            const std::vector<std::int64_t> &input,
                            std::vector<std::int64_t> &output)
{
    kernel::Thread *t = kernel::Thread::current();
    if (!t || !linuxFb_)
        return xnu::KERN_FAILURE;
    auto *fb = dynamic_cast<gpu::FramebufferDevice *>(linuxFb_);
    if (!fb)
        return xnu::KERN_FAILURE;

    switch (selector) {
      case fbsel::GetDisplayInfo: {
          gpu::FbInfo info;
          kernel::SyscallResult r = fb->ioctl(
              *t, gpu::FramebufferDevice::kIoctlGetInfo, &info);
          if (!r.ok())
              return xnu::KERN_FAILURE;
          output.push_back(info.width);
          output.push_back(info.height);
          return xnu::KERN_SUCCESS;
      }
      case fbsel::SwapBegin:
        return xnu::KERN_SUCCESS;
      case fbsel::SwapEnd: {
          if (input.empty())
              return xnu::KERN_INVALID_ARGUMENT;
          void *arg = reinterpret_cast<void *>(
              static_cast<std::uintptr_t>(input[0]));
          kernel::SyscallResult r = fb->ioctl(
              *t, gpu::FramebufferDevice::kIoctlPresent, arg);
          return r.ok() ? xnu::KERN_SUCCESS : xnu::KERN_INVALID_ARGUMENT;
      }
      case fbsel::GetSwapCount:
        output.push_back(
            static_cast<std::int64_t>(fb->presentCount()));
        return xnu::KERN_SUCCESS;
      case fbsel::SetFrameRate:
        if (input.empty())
            return xnu::KERN_INVALID_ARGUMENT;
        frameRate_ = static_cast<std::uint64_t>(input[0]);
        return xnu::KERN_SUCCESS;
      default:
        return xnu::KERN_FAILURE;
    }
}

void
AppleM2CLCD::registerDriver(ducttape::KernelCxxRuntime &rt,
                            IOCatalogue &catalogue)
{
    rt.addStaticConstructor("AppleM2CLCD", [&rt, &catalogue] {
        OSDictionary match;
        match[kLinuxClassKey] = std::string("framebuffer");
        catalogue.addDriver(
            "AppleM2CLCD", match,
            [](ducttape::KernelCxxRuntime &runtime) -> IOService * {
                return new AppleM2CLCD(runtime);
            });
    });
}

} // namespace cider::iokit
