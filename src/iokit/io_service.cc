#include "iokit/io_service.h"

#include "base/logging.h"
#include "kernel/kernel.h"
#include "kernel/trap_context.h"

namespace cider::iokit {

IOService::IOService(ducttape::KernelCxxRuntime &rt, std::string name)
    : IORegistryEntry(rt, std::move(name))
{}

bool
IOService::probe(IORegistryEntry &)
{
    return true;
}

bool
IOService::start(IORegistryEntry &provider)
{
    provider_ = &provider;
    started_ = true;
    return true;
}

void
IOService::stop()
{
    started_ = false;
    provider_ = nullptr;
}

xnu::kern_return_t
IOService::externalMethod(std::uint32_t, const std::vector<std::int64_t> &,
                          std::vector<std::int64_t> &)
{
    return xnu::KERN_FAILURE;
}

IOCatalogue::IOCatalogue(IORegistry &registry) : registry_(registry)
{
    registry_.setPublishHook(
        [this](IORegistryEntry &entry) { matchEntry(entry); });
}

void
IOCatalogue::addDriver(const std::string &class_name, OSDictionary match,
                       Factory factory)
{
    drivers_.push_back({class_name, std::move(match), std::move(factory)});
    // Late driver registration re-matches everything already
    // published (kernel modules can load after boot).
    for (IORegistryEntry *entry : registry_.matchAll(OSDictionary{}))
        if (entry != &registry_.root())
            matchEntry(*entry);
}

void
IOCatalogue::matchEntry(IORegistryEntry &entry)
{
    for (const DriverInfo &driver : drivers_) {
        if (!osDictMatches(entry.properties(), driver.match))
            continue;
        // Don't double-attach the same driver class to one provider.
        bool already = false;
        for (IORegistryEntry *child : entry.children()) {
            if (child->entryName() == driver.className) {
                already = true;
                break;
            }
        }
        if (already)
            continue;

        IOService *service = driver.factory(registry_.runtime());
        if (!service)
            continue;
        if (!service->probe(entry)) {
            service->release();
            continue;
        }
        registry_.attach(service, &entry);
        if (service->start(entry)) {
            services_.push_back(service);
        } else {
            registry_.detach(service);
        }
    }
}

IOService *
IOCatalogue::findService(const std::string &class_name) const
{
    for (IOService *service : services_)
        if (service->entryName() == class_name && service->started())
            return service;
    return nullptr;
}

void
registerIoKitTraps(kernel::SyscallTable &mach_table, IORegistry &registry,
                   IOCatalogue &catalogue)
{
    // These capture two subsystem references, which does not fit the
    // one-word fast path; they register via the std::function fallback.
    mach_table.set(
        iokitno::GET_MATCHING_SERVICE, "io_service_get_matching_service",
        kernel::SyscallHandler(
            [&catalogue, &registry](kernel::TrapContext &c) {
                const std::string &class_name = c.args.str(0);
                if (IOService *service =
                        catalogue.findService(class_name))
                    return kernel::SyscallResult::success(
                        static_cast<std::int64_t>(service->entryId()));
                if (IORegistryEntry *entry =
                        registry.findByName(class_name))
                    return kernel::SyscallResult::success(
                        static_cast<std::int64_t>(entry->entryId()));
                return kernel::SyscallResult::success(0);
            }));

    mach_table.set(
        iokitno::GET_PROPERTY, "io_registry_entry_get_property",
        kernel::SyscallHandler([&registry](kernel::TrapContext &c) {
            IORegistryEntry *entry = registry.findById(c.args.u64(0));
            auto *out = static_cast<std::string *>(c.args.ptr(2));
            if (!entry || !out)
                return kernel::SyscallResult::success(
                    xnu::KERN_INVALID_NAME);
            *out = osValueString(entry->property(c.args.str(1)));
            return kernel::SyscallResult::success(xnu::KERN_SUCCESS);
        }));

    mach_table.set(
        iokitno::CONNECT_CALL_METHOD, "io_connect_call_method",
        kernel::SyscallHandler([&registry](kernel::TrapContext &c) {
            IORegistryEntry *entry = registry.findById(c.args.u64(0));
            auto *io = static_cast<IoConnectArgs *>(c.args.ptr(2));
            auto *service = dynamic_cast<IOService *>(entry);
            if (!service || !io)
                return kernel::SyscallResult::success(
                    xnu::KERN_INVALID_NAME);
            xnu::kern_return_t kr = service->externalMethod(
                static_cast<std::uint32_t>(c.args.u64(1)), io->input,
                io->output);
            return kernel::SyscallResult::success(kr);
        }));
}

} // namespace cider::iokit
