#include "iokit/io_service.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/logging.h"
#include "kernel/kernel.h"
#include "kernel/trap_context.h"

namespace cider::iokit {

IOService::IOService(ducttape::KernelCxxRuntime &rt, std::string name)
    : IORegistryEntry(rt, std::move(name))
{}

bool
IOService::probe(IORegistryEntry &)
{
    return true;
}

bool
IOService::start(IORegistryEntry &provider)
{
    provider_ = &provider;
    started_ = true;
    return true;
}

void
IOService::stop()
{
    started_ = false;
    provider_ = nullptr;
}

xnu::kern_return_t
IOService::externalMethod(std::uint32_t, const std::vector<std::int64_t> &,
                          std::vector<std::int64_t> &)
{
    return xnu::KERN_FAILURE;
}

IOCatalogue::IOCatalogue(IORegistry &registry) : registry_(registry)
{
    registry_.setPublishHook(
        [this](IORegistryEntry &entry) { matchEntry(entry); });
}

void
IOCatalogue::addPersonality(IOPersonality personality)
{
    personalities_.push_back(std::move(personality));
    // Late driver registration re-matches everything already
    // published (kernel modules can load after boot).
    for (IORegistryEntry *entry : registry_.matchAll(OSDictionary{}))
        if (entry != &registry_.root())
            matchEntry(*entry);
}

void
IOCatalogue::addDriver(const std::string &class_name, OSDictionary match,
                       Factory factory)
{
    addPersonality(
        {class_name, std::move(match), 0, "", std::move(factory)});
}

void
IOCatalogue::matchEntry(IORegistryEntry &entry)
{
    // Gather the matching personalities, then probe them in descending
    // score order (stable, so equal scores keep registration order).
    std::vector<IOPersonality *> candidates;
    for (IOPersonality &p : personalities_)
        if (osDictMatches(entry.properties(), p.match))
            candidates.push_back(&p);
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const IOPersonality *a, const IOPersonality *b) {
                         return a->probeScore > b->probeScore;
                     });

    // Each match category admits one winner per provider. Categories
    // already occupied by a started service keep their incumbent.
    std::set<std::string> done;
    for (IORegistryEntry *child : entry.children())
        if (auto *svc = dynamic_cast<IOService *>(child);
            svc && svc->started())
            done.insert(svc->matchCategory());

    for (IOPersonality *p : candidates) {
        if (done.count(p->matchCategory))
            continue;
        // Don't double-attach the same driver class to one provider.
        bool already = false;
        for (IORegistryEntry *child : entry.children()) {
            if (child->entryName() == p->className) {
                already = true;
                break;
            }
        }
        if (already) {
            done.insert(p->matchCategory);
            continue;
        }

        ++p->probes;
        IOService *service = p->factory(registry_.runtime());
        if (!service)
            continue;
        service->setMatchMeta(p->probeScore, p->matchCategory);
        if (!service->probe(entry)) {
            // A failed probe falls through to the next-best candidate.
            service->release();
            ++p->probeFailures;
            continue;
        }
        registry_.attach(service, &entry);
        if (service->start(entry)) {
            services_.push_back(service);
            done.insert(p->matchCategory);
            ++p->wins;
        } else {
            registry_.detach(service);
            ++p->startFailures;
        }
    }
}

IOService *
IOCatalogue::findService(const std::string &class_name) const
{
    for (IOService *service : services_)
        if (service->entryName() == class_name && service->started())
            return service;
    return nullptr;
}

bool
IOCatalogue::terminate(IOService *service)
{
    auto it = std::find(services_.begin(), services_.end(), service);
    if (it == services_.end())
        return false;
    services_.erase(it);
    service->stop();
    registry_.detach(service);
    return true;
}

void
registerIoKitTraps(kernel::SyscallTable &mach_table, IORegistry &registry,
                   IOCatalogue &catalogue)
{
    // These capture two subsystem references, which does not fit the
    // one-word fast path; they register via the std::function fallback.
    mach_table.set(
        iokitno::GET_MATCHING_SERVICE, "io_service_get_matching_service",
        kernel::SyscallHandler(
            [&catalogue, &registry](kernel::TrapContext &c) {
                const std::string &class_name = c.args.str(0);
                if (IOService *service =
                        catalogue.findService(class_name))
                    return kernel::SyscallResult::success(
                        static_cast<std::int64_t>(service->entryId()));
                if (IORegistryEntry *entry =
                        registry.findByName(class_name))
                    return kernel::SyscallResult::success(
                        static_cast<std::int64_t>(entry->entryId()));
                return kernel::SyscallResult::success(0);
            }));

    mach_table.set(
        iokitno::GET_PROPERTY, "io_registry_entry_get_property",
        kernel::SyscallHandler([&registry](kernel::TrapContext &c) {
            IORegistryEntry *entry = registry.findById(c.args.u64(0));
            auto *out = static_cast<std::string *>(c.args.ptr(2));
            if (!entry || !out)
                return kernel::SyscallResult::success(
                    xnu::KERN_INVALID_NAME);
            *out = osValueString(entry->property(c.args.str(1)));
            return kernel::SyscallResult::success(xnu::KERN_SUCCESS);
        }));

    mach_table.set(
        iokitno::CONNECT_CALL_METHOD, "io_connect_call_method",
        kernel::SyscallHandler([&registry](kernel::TrapContext &c) {
            IORegistryEntry *entry = registry.findById(c.args.u64(0));
            auto *io = static_cast<IoConnectArgs *>(c.args.ptr(2));
            auto *service = dynamic_cast<IOService *>(entry);
            if (!service || !io)
                return kernel::SyscallResult::success(
                    xnu::KERN_INVALID_NAME);
            xnu::kern_return_t kr = service->externalMethod(
                static_cast<std::uint32_t>(c.args.u64(1)), io->input,
                io->output);
            return kernel::SyscallResult::success(kr);
        }));
}

namespace {

void
dumpEntry(const IORegistryEntry &entry, int depth, std::ostringstream &os)
{
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "+ "
       << entry.entryName() << " <" << entry.className() << "> id="
       << entry.entryId();
    if (const auto *svc = dynamic_cast<const IOService *>(&entry)) {
        os << " started=" << (svc->started() ? 1 : 0)
           << " score=" << svc->probeScore();
        if (!svc->matchCategory().empty())
            os << " category=" << svc->matchCategory();
    }
    os << "\n";
    for (const IORegistryEntry *child : entry.children())
        dumpEntry(*child, depth + 1, os);
}

} // namespace

kernel::SyscallResult
IoKitStatsDevice::read(kernel::Thread &t, Bytes &out, std::size_t n)
{
    (void)t;
    std::ostringstream os;
    os << "iokit registry (" << registry_.entryCount() << " entries)\n";
    dumpEntry(registry_.root(), 0, os);
    os << "services " << catalogue_.services().size() << "\n";
    for (const IOService *svc : catalogue_.services())
        os << "  service " << svc->entryName() << " provider="
           << (svc->provider() ? svc->provider()->entryName() : "-")
           << " score=" << svc->probeScore() << "\n";
    os << "personalities " << catalogue_.personalities().size() << "\n";
    for (const auto &p : catalogue_.personalities())
        os << "  personality " << p.className << " score=" << p.probeScore
           << " probes=" << p.probes
           << " probe_failures=" << p.probeFailures
           << " start_failures=" << p.startFailures << " wins=" << p.wins
           << "\n";
    std::string text = os.str();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(), text.begin() + static_cast<long>(take));
    return kernel::SyscallResult::success(
        static_cast<std::int64_t>(take));
}

} // namespace cider::iokit
