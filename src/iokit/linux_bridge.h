/**
 * @file
 * The Linux-device -> I/O Kit bridge.
 *
 * "Using a small hook in the Linux device add function, Cider
 * creates a Linux device node I/O Kit registry entry (a device class
 * instance) for every registered Linux device" (paper section 5.1).
 * This module is that hook: it subscribes to the domestic kernel's
 * DeviceRegistry and mirrors each device into the I/O Kit registry,
 * carrying the Linux driver's properties so catalogue matching can
 * pair an I/O Kit driver class with the node.
 */

#ifndef CIDER_IOKIT_LINUX_BRIDGE_H
#define CIDER_IOKIT_LINUX_BRIDGE_H

#include "iokit/io_registry.h"
#include "kernel/device.h"

namespace cider::iokit {

/** Property key carrying the Linux device pointer across the bridge. */
inline constexpr const char *kLinuxDeviceKey = "IOLinuxDevice";
/** Property key naming the Linux device class. */
inline constexpr const char *kLinuxClassKey = "IOLinuxClass";

/**
 * Install the device_add hook. Devices registered before the call
 * are bridged too (DeviceRegistry replays its contents).
 */
void installLinuxBridge(kernel::DeviceRegistry &devices,
                        IORegistry &registry);

/** Resolve the Linux device behind a bridged registry entry. */
kernel::Device *linuxDeviceOf(IORegistryEntry &entry);

} // namespace cider::iokit

#endif // CIDER_IOKIT_LINUX_BRIDGE_H
