#include "base/bytes.h"

#include "base/logging.h"

namespace cider {

void
ByteWriter::u16(std::uint16_t v)
{
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void
ByteWriter::u32(std::uint32_t v)
{
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void
ByteWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
ByteWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
ByteWriter::raw(const Bytes &data)
{
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void
ByteWriter::patchU32(std::size_t offset, std::uint32_t v)
{
    if (offset + 4 > buf_.size())
        // invariant-only: patch offsets come from the writer itself.
        cider_panic("patchU32 out of range: offset ", offset,
                    " size ", buf_.size());
    buf_[offset + 0] = static_cast<std::uint8_t>(v);
    buf_[offset + 1] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 2] = static_cast<std::uint8_t>(v >> 16);
    buf_[offset + 3] = static_cast<std::uint8_t>(v >> 24);
}

bool
ByteReader::ensure(std::size_t n)
{
    if (!ok_ || pos_ + n > data_->size()) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint8_t
ByteReader::u8()
{
    if (!ensure(1))
        return 0;
    return (*data_)[pos_++];
}

std::uint16_t
ByteReader::u16()
{
    if (!ensure(2))
        return 0;
    std::uint16_t lo = u8();
    std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t
ByteReader::u32()
{
    if (!ensure(4))
        return 0;
    std::uint32_t lo = u16();
    std::uint32_t hi = u16();
    return lo | (hi << 16);
}

std::uint64_t
ByteReader::u64()
{
    if (!ensure(8))
        return 0;
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | (hi << 32);
}

std::string
ByteReader::str()
{
    std::uint32_t n = u32();
    if (!ensure(n))
        return {};
    std::string s(data_->begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_->begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
}

Bytes
ByteReader::raw(std::size_t n)
{
    if (!ensure(n))
        return {};
    Bytes out(data_->begin() + static_cast<std::ptrdiff_t>(pos_),
              data_->begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
}

void
ByteReader::seek(std::size_t offset)
{
    if (offset > data_->size()) {
        ok_ = false;
        pos_ = data_->size();
        return;
    }
    pos_ = offset;
}

std::size_t
ByteReader::remaining() const
{
    return ok_ ? data_->size() - pos_ : 0;
}

} // namespace cider
