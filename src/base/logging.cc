#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cider {

namespace {

std::atomic<bool> g_quiet{false};

} // namespace

void
setLogQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return g_quiet.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!logQuiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!logQuiet())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace cider
