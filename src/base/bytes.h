/**
 * @file
 * Little-endian byte stream serialisation used by the binary formats.
 *
 * Mach-O and ELF images in the simulator are genuine byte blobs: the
 * builders serialise structures through ByteWriter and the kernel
 * loaders parse them back through ByteReader, so malformed-image
 * handling is exercised on real bytes rather than on in-memory objects.
 */

#ifndef CIDER_BASE_BYTES_H
#define CIDER_BASE_BYTES_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cider {

using Bytes = std::vector<std::uint8_t>;

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** Length-prefixed (u32) string. */
    void str(const std::string &s);

    /** Raw byte run without a length prefix. */
    void raw(const Bytes &data);

    /** Current encoded size in bytes. */
    std::size_t size() const { return buf_.size(); }

    /** Patch a previously written u32 at @p offset. */
    void patchU32(std::size_t offset, std::uint32_t v);

    const Bytes &bytes() const { return buf_; }
    Bytes take() { return std::move(buf_); }

  private:
    Bytes buf_;
};

/**
 * Cursor-based little-endian decoder. Reads past the end mark the
 * reader bad and return zero values instead of throwing, mirroring how
 * a kernel loader must survive truncated binaries.
 */
class ByteReader
{
  public:
    explicit ByteReader(const Bytes &data) : data_(&data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::string str();
    Bytes raw(std::size_t n);

    /** Move the cursor to an absolute offset. */
    void seek(std::size_t offset);
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const;

    /** True when every read so far stayed in bounds. */
    bool ok() const { return ok_; }

  private:
    bool ensure(std::size_t n);

    const Bytes *data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace cider

#endif // CIDER_BASE_BYTES_H
