/**
 * @file
 * Deterministic virtual-time accounting.
 *
 * Every simulated hardware or kernel operation charges a cost, in
 * virtual nanoseconds, to the CostClock of the simulated thread that
 * performs it. Benchmarks read clock deltas instead of wall time, which
 * makes all reported latencies deterministic and independent of host
 * scheduling.
 *
 * A real (host) thread enters a simulated context by installing a clock
 * with CostScope; free function charge() bills the innermost installed
 * clock and is a no-op when no context is active.
 */

#ifndef CIDER_BASE_COST_CLOCK_H
#define CIDER_BASE_COST_CLOCK_H

#include <cstdint>

namespace cider {

/** Accumulator of virtual nanoseconds for one simulated thread. */
class CostClock
{
  public:
    /** Advance this clock by @p ns virtual nanoseconds. */
    void charge(std::uint64_t ns) { ns_ += ns; }

    /** Current virtual time of this clock in nanoseconds. */
    std::uint64_t now() const { return ns_; }

    /** Reset virtual time to zero. */
    void reset() { ns_ = 0; }

    /** The clock installed on the calling host thread, if any. */
    static CostClock *current();

  private:
    std::uint64_t ns_ = 0;

    friend class CostScope;
};

/**
 * RAII guard installing a CostClock as the calling host thread's
 * active virtual clock. Scopes nest; the innermost wins.
 */
class CostScope
{
  public:
    explicit CostScope(CostClock &clock);
    ~CostScope();

    CostScope(const CostScope &) = delete;
    CostScope &operator=(const CostScope &) = delete;

  private:
    CostClock *prev_;
};

/** Charge @p ns to the active clock; no-op without an active clock. */
void charge(std::uint64_t ns);

/** Virtual time of the active clock, or 0 without one. */
std::uint64_t virtualNow();

/**
 * Measure the virtual time consumed by a callable run under the
 * currently active clock.
 */
template <typename Fn>
std::uint64_t
measureVirtual(Fn &&fn)
{
    CostClock *clock = CostClock::current();
    std::uint64_t begin = clock ? clock->now() : 0;
    fn();
    std::uint64_t end = clock ? clock->now() : 0;
    return end - begin;
}

} // namespace cider

#endif // CIDER_BASE_COST_CLOCK_H
