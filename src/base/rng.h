/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * Workload generators and property tests need reproducible randomness
 * that is independent of the host libc, so the whole simulator shares
 * this one tiny generator.
 */

#ifndef CIDER_BASE_RNG_H
#define CIDER_BASE_RNG_H

#include <cstdint>

namespace cider {

/** SplitMix64 generator; tiny, fast, and fully deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

} // namespace cider

#endif // CIDER_BASE_RNG_H
