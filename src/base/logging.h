/**
 * @file
 * Status and error reporting for the Cider simulator.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a simulator bug), fatal() is for unrecoverable user error,
 * warn() flags questionable-but-survivable conditions, and inform()
 * prints plain status. panic() aborts; fatal() exits with status 1.
 */

#ifndef CIDER_BASE_LOGGING_H
#define CIDER_BASE_LOGGING_H

#include <sstream>
#include <string>

namespace cider {

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort the simulator: an internal invariant was violated. */
#define cider_panic(...)                                                    \
    ::cider::detail::panicImpl(__FILE__, __LINE__,                          \
                               ::cider::detail::concat(__VA_ARGS__))

/** Exit the simulator: the user asked for something unsupportable. */
#define cider_fatal(...)                                                    \
    ::cider::detail::fatalImpl(__FILE__, __LINE__,                          \
                               ::cider::detail::concat(__VA_ARGS__))

/** Print a warning about questionable but survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Global switch for warn()/inform() output so tests exercising failure
 * paths stay quiet. panic()/fatal() always print.
 */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace cider

#endif // CIDER_BASE_LOGGING_H
