#include "base/rng.h"

#include "base/logging.h"

namespace cider {

std::uint64_t
Rng::next()
{
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        // invariant-only: misuse by the calling in-tree code.
        cider_panic("Rng::below with zero bound");
    return next() % bound;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        // invariant-only: misuse by the calling in-tree code.
        cider_panic("Rng::range with lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace cider
