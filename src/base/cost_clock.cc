#include "base/cost_clock.h"

namespace cider {

namespace {

thread_local CostClock *t_active = nullptr;

} // namespace

CostClock *
CostClock::current()
{
    return t_active;
}

CostScope::CostScope(CostClock &clock) : prev_(t_active)
{
    t_active = &clock;
}

CostScope::~CostScope()
{
    t_active = prev_;
}

void
charge(std::uint64_t ns)
{
    if (t_active)
        t_active->charge(ns);
}

std::uint64_t
virtualNow()
{
    return t_active ? t_active->now() : 0;
}

} // namespace cider
