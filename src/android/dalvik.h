/**
 * @file
 * The Dalvik-style bytecode interpreter.
 *
 * Android apps run as interpreted DexLite bytecode inside this VM;
 * iOS apps run native text. Every interpreted instruction pays the
 * profile's dispatch cost on top of the operation itself, which is
 * the mechanism behind the paper's Figure 6 finding that the *same
 * benchmark* runs faster as an iOS binary under Cider than as the
 * Java/Dalvik Android app on identical hardware.
 */

#ifndef CIDER_ANDROID_DALVIK_H
#define CIDER_ANDROID_DALVIK_H

#include <functional>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "binfmt/dex.h"
#include "hw/device_profile.h"

namespace cider::android {

/** A Dalvik runtime value. */
using DexVal = std::variant<std::int64_t, double,
                            std::shared_ptr<std::vector<std::int64_t>>>;

std::int64_t dexI(const DexVal &v);
double dexF(const DexVal &v);

/** VM execution statistics. */
struct DalvikStats
{
    std::uint64_t instructions = 0;
    std::uint64_t nativeCalls = 0;
    std::uint64_t methodCalls = 0;
};

class TranslationCache;
struct MethodEntry;
class DexJit;

class DalvikVm
{
  public:
    using NativeFn = std::function<DexVal(std::vector<DexVal> &)>;

    explicit DalvikVm(const hw::DeviceProfile &profile)
        : profile_(profile)
    {}

    /**
     * Register a JNI-style native bridge function. Rebinding (or
     * first-binding) a name bumps the native-table generation, which
     * invalidates every cached decode/translation of this VM's
     * methods at their next invocation.
     */
    void registerNative(const std::string &name, NativeFn fn);

    /**
     * Run @p method of @p file with @p args in the first locals.
     * Returns the Ret value (0 when the method falls off the end).
     * With a translation cache attached, hot methods execute as
     * DexJit threaded code; without one (or during warm-up) they are
     * interpreted. Virtual time, stats, and SchedRail traces are
     * identical either way.
     */
    DexVal run(const binfmt::DexFile &file, const std::string &method,
               std::vector<DexVal> args = {});

    const DalvikStats &stats() const { return stats_; }

    /** Attach the system-wide translation cache (null detaches). */
    void setTranslationCache(TranslationCache *cache) { cache_ = cache; }
    TranslationCache *translationCache() const { return cache_; }

    /** Master JIT switch; off means always interpret (A/B harness). */
    void setJitEnabled(bool on) { jitEnabled_ = on; }
    bool jitEnabled() const { return jitEnabled_; }

    /** Invocations to interpret before translating a method. */
    void setJitWarmup(std::uint32_t runs) { jitWarmup_ = runs; }
    std::uint32_t jitWarmup() const { return jitWarmup_; }

    /** Generation stamp of the native table (bumped per rebind). */
    std::uint64_t nativesGeneration() const { return nativesGen_; }

    /** Registered native for @p name, or null. Pointers stay valid
     *  for the VM's lifetime (std::map nodes are stable). */
    const NativeFn *findNative(const std::string &name) const;

    const hw::DeviceProfile &profile() const { return profile_; }

  private:
    friend class DexJit;

    /**
     * Central call path for both engines: depth check, SchedRail
     * yield point, cache acquire / warm-up accounting, then dispatch
     * to DexJit::execute or the interpreter.
     */
    DexVal invoke(const binfmt::DexFile &file,
                  const binfmt::DexMethod &method,
                  std::vector<DexVal> &args, int depth);

    DexVal execute(const binfmt::DexFile &file,
                   const binfmt::DexMethod &method,
                   std::vector<DexVal> &args, int depth,
                   const MethodEntry *entry);

    const hw::DeviceProfile &profile_;
    std::map<std::string, NativeFn> natives_;
    DalvikStats stats_;
    TranslationCache *cache_ = nullptr;
    bool jitEnabled_ = true;
    std::uint32_t jitWarmup_ = 2;
    std::uint64_t nativesGen_ = 1;
};

} // namespace cider::android

#endif // CIDER_ANDROID_DALVIK_H
