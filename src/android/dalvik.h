/**
 * @file
 * The Dalvik-style bytecode interpreter.
 *
 * Android apps run as interpreted DexLite bytecode inside this VM;
 * iOS apps run native text. Every interpreted instruction pays the
 * profile's dispatch cost on top of the operation itself, which is
 * the mechanism behind the paper's Figure 6 finding that the *same
 * benchmark* runs faster as an iOS binary under Cider than as the
 * Java/Dalvik Android app on identical hardware.
 */

#ifndef CIDER_ANDROID_DALVIK_H
#define CIDER_ANDROID_DALVIK_H

#include <functional>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "binfmt/dex.h"
#include "hw/device_profile.h"

namespace cider::android {

/** A Dalvik runtime value. */
using DexVal = std::variant<std::int64_t, double,
                            std::shared_ptr<std::vector<std::int64_t>>>;

std::int64_t dexI(const DexVal &v);
double dexF(const DexVal &v);

/** VM execution statistics. */
struct DalvikStats
{
    std::uint64_t instructions = 0;
    std::uint64_t nativeCalls = 0;
    std::uint64_t methodCalls = 0;
};

class DalvikVm
{
  public:
    using NativeFn = std::function<DexVal(std::vector<DexVal> &)>;

    explicit DalvikVm(const hw::DeviceProfile &profile)
        : profile_(profile)
    {}

    /** Register a JNI-style native bridge function. */
    void registerNative(const std::string &name, NativeFn fn);

    /**
     * Interpret @p method of @p file with @p args in the first
     * locals. Returns the Ret value (0 when the method falls off the
     * end).
     */
    DexVal run(const binfmt::DexFile &file, const std::string &method,
               std::vector<DexVal> args = {});

    const DalvikStats &stats() const { return stats_; }

  private:
    DexVal execute(const binfmt::DexFile &file,
                   const binfmt::DexMethod &method,
                   std::vector<DexVal> &args, int depth);

    const hw::DeviceProfile &profile_;
    std::map<std::string, NativeFn> natives_;
    DalvikStats stats_;
};

} // namespace cider::android

#endif // CIDER_ANDROID_DALVIK_H
