/**
 * @file
 * The Android input subsystem.
 *
 * Kernel input drivers feed events here; the framework routes them to
 * the foreground app. CiderPress subscribes for the iOS app it
 * proxies and forwards events over a UNIX socket to the app's
 * eventpump thread (paper section 5.2). MotionEvents serialise to
 * bytes because they genuinely travel through socket buffers.
 */

#ifndef CIDER_ANDROID_INPUT_H
#define CIDER_ANDROID_INPUT_H

#include <functional>
#include <mutex>
#include <vector>

#include "base/bytes.h"

namespace cider::android {

/** Touch event types. */
enum class MotionAction : std::uint8_t
{
    Down = 0,
    Move = 1,
    Up = 2,
    PointerDown = 3,
    PointerUp = 4,
};

struct MotionEvent
{
    MotionAction action = MotionAction::Down;
    std::int32_t pointerId = 0;
    float x = 0;
    float y = 0;
    std::uint64_t timeNs = 0;
    std::int32_t pointerCount = 1;

    bool operator==(const MotionEvent &) const = default;
};

Bytes serializeMotionEvent(const MotionEvent &ev);
bool parseMotionEvent(const Bytes &data, MotionEvent *out);
/** Wire size of one serialised event. */
std::size_t motionEventWireSize();

/** The framework-side event router. */
class InputSubsystem
{
  public:
    using Listener = std::function<void(const MotionEvent &)>;

    /** Register the foreground listener; returns a subscription id. */
    int subscribe(Listener listener);
    void unsubscribe(int id);

    /** Inject an event from the (simulated) touchscreen driver. */
    void inject(const MotionEvent &ev);

    std::uint64_t eventsDelivered() const { return delivered_; }

  private:
    mutable std::mutex mu_;
    std::vector<std::pair<int, Listener>> listeners_;
    int nextId_ = 1;
    std::uint64_t delivered_ = 0;
};

} // namespace cider::android

#endif // CIDER_ANDROID_INPUT_H
