#include "android/gralloc.h"

#include "base/cost_clock.h"
#include "kernel/kernel.h"

namespace cider::android {

binfmt::LibraryImage
makeGrallocLibrary(gpu::BufferManager &buffers)
{
    binfmt::LibraryImage lib;
    lib.name = "libgralloc.so";
    lib.format = kernel::BinaryFormat::Elf;
    lib.pages = 48;

    gpu::BufferManager *mgr = &buffers;

    lib.exports.add(kGrallocAlloc,
                    [mgr](binfmt::UserEnv &env,
                          std::vector<binfmt::Value> &args) {
                        charge(env.kernel.profile().cyclesToNs(900));
                        auto w = static_cast<std::uint32_t>(
                            binfmt::valueI64(args.at(0)));
                        auto h = static_cast<std::uint32_t>(
                            binfmt::valueI64(args.at(1)));
                        if (w == 0 || h == 0)
                            return binfmt::Value{std::int64_t{0}};
                        gpu::BufferPtr buf = mgr->create(w, h);
                        return binfmt::Value{
                            static_cast<std::int64_t>(buf->id)};
                    });

    lib.exports.add(kGrallocFree,
                    [mgr](binfmt::UserEnv &,
                          std::vector<binfmt::Value> &args) {
                        bool ok = mgr->destroy(static_cast<std::uint32_t>(
                            binfmt::valueI64(args.at(0))));
                        return binfmt::Value{
                            std::int64_t{ok ? 0 : -1}};
                    });

    lib.exports.add(kGrallocWidth,
                    [mgr](binfmt::UserEnv &,
                          std::vector<binfmt::Value> &args) {
                        gpu::BufferPtr buf =
                            mgr->find(static_cast<std::uint32_t>(
                                binfmt::valueI64(args.at(0))));
                        return binfmt::Value{static_cast<std::int64_t>(
                            buf ? buf->width : 0)};
                    });

    lib.exports.add(kGrallocHeight,
                    [mgr](binfmt::UserEnv &,
                          std::vector<binfmt::Value> &args) {
                        gpu::BufferPtr buf =
                            mgr->find(static_cast<std::uint32_t>(
                                binfmt::valueI64(args.at(0))));
                        return binfmt::Value{static_cast<std::int64_t>(
                            buf ? buf->height : 0)};
                    });

    return lib;
}

} // namespace cider::android
