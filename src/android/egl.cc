#include "android/egl.h"

#include "android/gles.h"
#include "base/cost_clock.h"
#include "kernel/kernel.h"
#include "base/logging.h"

namespace cider::android {

namespace {

constexpr double kEglCallCycles = 240;

binfmt::Value
I(std::int64_t v)
{
    return binfmt::Value{v};
}

EglState::Surface *
surfaceOf(binfmt::UserEnv &env, std::int64_t id)
{
    EglState &st = eglState(env);
    auto it = st.surfaces.find(static_cast<int>(id));
    return it == st.surfaces.end() ? nullptr : &it->second;
}

} // namespace

EglState &
eglState(binfmt::UserEnv &env)
{
    return env.process().ext().get<EglState>("egl.state");
}

binfmt::LibraryImage
makeEglLibrary(SurfaceFlinger &flinger)
{
    binfmt::LibraryImage lib;
    lib.name = "libEGL.so";
    lib.format = kernel::BinaryFormat::Elf;
    lib.pages = 96;
    lib.deps = {"libGLESv2.so", "libgralloc.so"};

    SurfaceFlinger *sf = &flinger;
    using Args = std::vector<binfmt::Value>;

    lib.exports.add("eglGetDisplay", [](binfmt::UserEnv &env, Args &) {
        charge(env.kernel.profile().cyclesToNs(kEglCallCycles));
        return I(1);
    });

    lib.exports.add("eglInitialize", [](binfmt::UserEnv &env, Args &) {
        charge(env.kernel.profile().cyclesToNs(kEglCallCycles));
        eglState(env).initialised = true;
        return I(1);
    });

    lib.exports.add(
        "eglCreateWindowSurface",
        [sf](binfmt::UserEnv &env, Args &args) {
            charge(env.kernel.profile().cyclesToNs(4 * kEglCallCycles));
            EglState &st = eglState(env);
            auto w = static_cast<std::uint32_t>(
                binfmt::valueI64(args.at(0)));
            auto h = static_cast<std::uint32_t>(
                binfmt::valueI64(args.at(1)));
            int layer = sf->createLayer(env.process().name(), w, h);
            gpu::BufferPtr buf = sf->layerBuffer(layer);
            EglState::Surface surf;
            surf.surfaceId = st.nextSurfaceId++;
            surf.layerId = layer;
            surf.bufferId = buf ? buf->id : 0;
            st.surfaces[surf.surfaceId] = surf;
            return I(surf.surfaceId);
        });

    lib.exports.add("eglCreateContext",
                    [](binfmt::UserEnv &env, Args &) {
                        charge(env.kernel.profile().cyclesToNs(
                            2 * kEglCallCycles));
                        return I(eglState(env).nextContextId++);
                    });

    lib.exports.add(
        "eglMakeCurrent", [](binfmt::UserEnv &env, Args &args) {
            charge(env.kernel.profile().cyclesToNs(kEglCallCycles));
            EglState::Surface *surf =
                surfaceOf(env, binfmt::valueI64(args.at(0)));
            if (!surf)
                return I(0);
            eglState(env).currentSurface = surf->surfaceId;
            glSetRenderTarget(env, surf->bufferId);
            return I(1);
        });

    lib.exports.add(
        "eglSwapBuffers", [sf](binfmt::UserEnv &env, Args &args) {
            charge(env.kernel.profile().cyclesToNs(2 * kEglCallCycles));
            EglState::Surface *surf =
                surfaceOf(env, binfmt::valueI64(args.at(0)));
            if (!surf)
                return I(0);
            glFlushPending(env);
            sf->queueBuffer(surf->layerId);
            sf->composeFrame(env);
            return I(1);
        });

    lib.exports.add(
        "eglDestroySurface", [sf](binfmt::UserEnv &env, Args &args) {
            charge(env.kernel.profile().cyclesToNs(kEglCallCycles));
            EglState &st = eglState(env);
            EglState::Surface *surf =
                surfaceOf(env, binfmt::valueI64(args.at(0)));
            if (!surf)
                return I(0);
            sf->removeLayer(surf->layerId);
            st.surfaces.erase(surf->surfaceId);
            return I(1);
        });

    return lib;
}

binfmt::LibraryImage
makeEglBridgeLibrary(SurfaceFlinger &flinger)
{
    binfmt::LibraryImage lib;
    lib.name = "libEGLbridge.so";
    lib.format = kernel::BinaryFormat::Elf;
    lib.pages = 32;
    lib.deps = {"libEGL.so"};

    SurfaceFlinger *sf = &flinger;
    using Args = std::vector<binfmt::Value>;

    lib.exports.add(
        "EGLBridge_createContext",
        [sf](binfmt::UserEnv &env, Args &args) {
            charge(env.kernel.profile().cyclesToNs(5 * kEglCallCycles));
            EglState &st = eglState(env);
            st.initialised = true;
            auto w = static_cast<std::uint32_t>(
                binfmt::valueI64(args.at(0)));
            auto h = static_cast<std::uint32_t>(
                binfmt::valueI64(args.at(1)));
            int layer =
                sf->createLayer(env.process().name() + ":eagl", w, h);
            gpu::BufferPtr buf = sf->layerBuffer(layer);
            EglState::Surface surf;
            surf.surfaceId = st.nextSurfaceId++;
            surf.layerId = layer;
            surf.bufferId = buf ? buf->id : 0;
            st.surfaces[surf.surfaceId] = surf;
            return I(surf.surfaceId);
        });

    lib.exports.add(
        "EGLBridge_setCurrent", [](binfmt::UserEnv &env, Args &args) {
            charge(env.kernel.profile().cyclesToNs(kEglCallCycles));
            EglState::Surface *surf =
                surfaceOf(env, binfmt::valueI64(args.at(0)));
            if (!surf)
                return I(0);
            eglState(env).currentSurface = surf->surfaceId;
            glSetRenderTarget(env, surf->bufferId);
            return I(1);
        });

    lib.exports.add(
        "EGLBridge_present", [sf](binfmt::UserEnv &env, Args &args) {
            charge(env.kernel.profile().cyclesToNs(2 * kEglCallCycles));
            EglState::Surface *surf =
                surfaceOf(env, binfmt::valueI64(args.at(0)));
            if (!surf)
                return I(0);
            glFlushPending(env);
            sf->queueBuffer(surf->layerId);
            sf->composeFrame(env);
            return I(1);
        });

    lib.exports.add(
        "EGLBridge_surfaceBuffer",
        [](binfmt::UserEnv &env, Args &args) {
            EglState::Surface *surf =
                surfaceOf(env, binfmt::valueI64(args.at(0)));
            return I(surf ? surf->bufferId : 0);
        });

    return lib;
}

} // namespace cider::android
