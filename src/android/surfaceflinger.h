/**
 * @file
 * SurfaceFlinger: the Android composition service.
 *
 * Apps (and, through CiderPress, proxied iOS apps) render into layer
 * buffers; SurfaceFlinger composites every visible layer into its
 * scanout buffer with the GPU and presents it through the Linux
 * framebuffer driver. Allocating iOS window memory through this
 * service is what lets "Cider manage the iOS display in the same
 * manner that all Android app windows are managed" (paper
 * section 5.3).
 */

#ifndef CIDER_ANDROID_SURFACEFLINGER_H
#define CIDER_ANDROID_SURFACEFLINGER_H

#include <map>
#include <mutex>
#include <string>

#include "binfmt/program.h"
#include "gpu/sim_gpu.h"

namespace cider::android {

class SurfaceFlinger
{
  public:
    struct Layer
    {
        int id = 0;
        std::string owner;
        std::uint32_t bufferId = 0;
        int z = 0;
        bool visible = true;
        bool dirty = false;
    };

    SurfaceFlinger(gpu::SimGpu &gpu, gpu::FramebufferDevice &fb);

    /** Create a layer with freshly allocated window memory. */
    int createLayer(const std::string &owner, std::uint32_t width,
                    std::uint32_t height, int z = 0);

    /** Attach client-allocated memory (an IOSurface) to a layer. */
    bool setLayerBuffer(int layer_id, std::uint32_t buffer_id);

    void removeLayer(int layer_id);
    void setVisible(int layer_id, bool visible);

    /** Mark a layer's buffer ready for the next composition. */
    void queueBuffer(int layer_id);

    gpu::BufferPtr layerBuffer(int layer_id) const;
    const Layer *layer(int layer_id) const;
    std::size_t layerCount() const;

    /** Layers whose owner name starts with @p owner_prefix. */
    std::vector<Layer>
    layersOwnedBy(const std::string &owner_prefix) const;

    /**
     * Compose all visible layers into the scanout buffer and present
     * it to the framebuffer. Runs on the calling simulated thread.
     * @return number of layers composed.
     */
    int composeFrame(binfmt::UserEnv &env);

    /** Copy of a layer's pixels (recents-list screenshots). */
    gpu::GraphicsBuffer screenshot(int layer_id) const;

    std::uint64_t framesComposed() const { return frames_; }

  private:
    gpu::SimGpu &gpu_;
    gpu::FramebufferDevice &fb_;
    gpu::BufferPtr scanout_;
    mutable std::mutex mu_;
    std::map<int, Layer> layers_;
    int nextLayerId_ = 1;
    std::uint64_t frames_ = 0;
};

} // namespace cider::android

#endif // CIDER_ANDROID_SURFACEFLINGER_H
