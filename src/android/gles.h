/**
 * @file
 * libGLESv2: Android's OpenGL ES client library.
 *
 * The app-facing API is the standardised one; the *implementation*
 * talks to the GPU through device-specific ioctls on /dev/nvhost —
 * the proprietary interface the paper says cannot be reimplemented
 * for a foreign stack, which is why iOS apps reach this exact library
 * through diplomats (paper section 5.3). Calls buffer commands in
 * user space and flush on glFlush/glFinish/swap, so an individual GL
 * call is cheap — making the per-call diplomat overhead the dominant
 * foreign-path cost, as in Figure 6's 3D results.
 */

#ifndef CIDER_ANDROID_GLES_H
#define CIDER_ANDROID_GLES_H

#include <vector>

#include "binfmt/program.h"
#include "gpu/sim_gpu.h"

namespace cider::android {

/** Per-process GL client state (extension key "gles.state"). */
struct GlState
{
    int gpuFd = -1;
    std::uint32_t boundTarget = 0; ///< current render-target buffer id
    std::uint32_t boundTexture = 0;
    std::uint32_t program = 0;
    std::uint64_t nextFence = 1;
    std::uint64_t nextName = 1; ///< gen'd texture/buffer names
    std::vector<gpu::GpuCommand> pending;
    std::uint64_t callCount = 0;
    int lastError = 0;
};

/** Fetch (creating) the calling process's GL state. */
GlState &glState(binfmt::UserEnv &env);

/** Flush pending commands to the GPU via the driver ioctl. */
void glFlushPending(binfmt::UserEnv &env);

/** Set the render target (wired by EGL's MakeCurrent). */
void glSetRenderTarget(binfmt::UserEnv &env, std::uint32_t buffer_id);

/**
 * Build the libGLESv2.so image: the standard GL ES 2.0 entry points
 * (35 symbols), each a NativeFn over the per-process GlState.
 */
binfmt::LibraryImage makeGlesLibrary();

/** The export list (used by tests and the diplomat generator). */
std::vector<std::string> glesExportNames();

} // namespace cider::android

#endif // CIDER_ANDROID_GLES_H
