#include "android/bionic.h"

#include "base/cost_clock.h"
#include "persona/tls.h"

namespace cider::android {

using kernel::SyscallArgs;
using kernel::SyscallResult;
using kernel::TrapClass;
namespace nr = kernel::sysno;

SyscallResult
Bionic::trap(int nr, SyscallArgs args)
{
    return env_.kernel.trap(env_.thread, TrapClass::LinuxSyscall, nr,
                            std::move(args));
}

std::int64_t
Bionic::ret(const SyscallResult &r)
{
    if (!r.ok()) {
        persona::ThreadTls::of(env_.thread)
            .area(kernel::Persona::Android)
            .setErrno(r.err);
        return -1;
    }
    return r.value;
}

LibcState &
Bionic::state()
{
    return env_.process().ext().get<LibcState>("bionic.state");
}

int
Bionic::open(const std::string &path, int flags)
{
    return static_cast<int>(
        ret(trap(nr::OPEN, kernel::makeArgs(path,
                                            static_cast<std::int64_t>(
                                                flags)))));
}

int
Bionic::close(int fd)
{
    return static_cast<int>(
        ret(trap(nr::CLOSE,
                 kernel::makeArgs(static_cast<std::int64_t>(fd)))));
}

std::int64_t
Bionic::read(int fd, Bytes &out, std::size_t n)
{
    return ret(trap(nr::READ,
                    kernel::makeArgs(static_cast<std::int64_t>(fd), &out,
                                     static_cast<std::uint64_t>(n))));
}

std::int64_t
Bionic::write(int fd, const Bytes &data)
{
    const Bytes *p = &data;
    return ret(trap(
        nr::WRITE, kernel::makeArgs(static_cast<std::int64_t>(fd), p)));
}

int
Bionic::dup(int fd)
{
    return static_cast<int>(ret(
        trap(nr::DUP, kernel::makeArgs(static_cast<std::int64_t>(fd)))));
}

int
Bionic::pipe(int fds[2])
{
    return static_cast<int>(
        ret(trap(nr::PIPE, kernel::makeArgs(static_cast<void *>(fds)))));
}

int
Bionic::mkdir(const std::string &path)
{
    return static_cast<int>(ret(trap(nr::MKDIR, kernel::makeArgs(path))));
}

int
Bionic::unlink(const std::string &path)
{
    return static_cast<int>(
        ret(trap(nr::UNLINK, kernel::makeArgs(path))));
}

int
Bionic::rmdir(const std::string &path)
{
    return static_cast<int>(ret(trap(nr::RMDIR, kernel::makeArgs(path))));
}

int
Bionic::ioctl(int fd, std::uint64_t req, void *arg)
{
    return static_cast<int>(
        ret(trap(nr::IOCTL, kernel::makeArgs(static_cast<std::int64_t>(fd),
                                             req, arg))));
}

std::int64_t
Bionic::lseek(int fd, std::int64_t offset, int whence)
{
    return ret(trap(nr::LSEEK,
                    kernel::makeArgs(static_cast<std::int64_t>(fd),
                                     offset,
                                     static_cast<std::int64_t>(
                                         whence))));
}

int
Bionic::stat(const std::string &path, kernel::StatBuf *out)
{
    return static_cast<int>(ret(trap(
        nr::STAT, kernel::makeArgs(path, static_cast<void *>(out)))));
}

int
Bionic::rename(const std::string &from, const std::string &to)
{
    return static_cast<int>(
        ret(trap(nr::RENAME, kernel::makeArgs(from, to))));
}

int
Bionic::dup2(int fd, int new_fd)
{
    return static_cast<int>(
        ret(trap(nr::DUP2,
                 kernel::makeArgs(static_cast<std::int64_t>(fd),
                                  static_cast<std::int64_t>(new_fd)))));
}

int
Bionic::getppid()
{
    return static_cast<int>(ret(trap(nr::GETPPID, kernel::makeArgs())));
}

int
Bionic::select(std::vector<int> &rd, std::vector<int> &wr,
               std::vector<int> &ready)
{
    return static_cast<int>(ret(trap(
        nr::SELECT,
        kernel::makeArgs(static_cast<void *>(&rd),
                         static_cast<void *>(&wr),
                         static_cast<void *>(&ready)))));
}

int
Bionic::socket()
{
    return static_cast<int>(ret(trap(nr::SOCKET, kernel::makeArgs())));
}

int
Bionic::bind(int fd, const std::string &path)
{
    return static_cast<int>(ret(trap(
        nr::BIND, kernel::makeArgs(static_cast<std::int64_t>(fd), path))));
}

int
Bionic::listen(int fd, int backlog)
{
    return static_cast<int>(
        ret(trap(nr::LISTEN,
                 kernel::makeArgs(static_cast<std::int64_t>(fd),
                                  static_cast<std::int64_t>(backlog)))));
}

int
Bionic::accept(int fd)
{
    return static_cast<int>(ret(trap(
        nr::ACCEPT, kernel::makeArgs(static_cast<std::int64_t>(fd)))));
}

int
Bionic::connect(int fd, const std::string &path)
{
    return static_cast<int>(ret(trap(
        nr::CONNECT,
        kernel::makeArgs(static_cast<std::int64_t>(fd), path))));
}

int
Bionic::socketpair(int fds[2])
{
    return static_cast<int>(ret(trap(
        nr::SOCKETPAIR, kernel::makeArgs(static_cast<void *>(fds)))));
}

int
Bionic::getpid()
{
    return static_cast<int>(ret(trap(nr::GETPID, kernel::makeArgs())));
}

int
Bionic::fork(kernel::EntryFn child_body)
{
    LibcState &st = state();
    // pthread_atfork: prepare in the parent, then parent/child halves.
    for (const auto &h : st.atforkHandlers)
        if (h.prepare)
            h.prepare();

    kernel::EntryFn wrapped =
        [child_body, handlers = st.atforkHandlers](
            kernel::Thread &t) -> int {
        for (const auto &h : handlers)
            if (h.child)
                h.child();
        return child_body ? child_body(t) : 0;
    };
    std::int64_t pid = ret(trap(
        nr::FORK, kernel::makeArgs(static_cast<void *>(&wrapped))));

    for (const auto &h : st.atforkHandlers)
        if (h.parent)
            h.parent();
    return static_cast<int>(pid);
}

int
Bionic::execve(const std::string &path,
               const std::vector<std::string> &argv)
{
    std::vector<std::string> args_copy = argv;
    return static_cast<int>(ret(trap(
        nr::EXECVE,
        kernel::makeArgs(path, static_cast<void *>(&args_copy)))));
}

void
Bionic::exit(int code)
{
    LibcState &st = state();
    // Run atexit handlers most-recent-first, as the C runtime does.
    for (auto it = st.atexitHandlers.rbegin();
         it != st.atexitHandlers.rend(); ++it)
        (*it)();
    trap(nr::EXIT, kernel::makeArgs(static_cast<std::int64_t>(code)));
    // The exit syscall unwinds via ProcessExit; reaching here means
    // the kernel refused, which cannot happen.
    throw kernel::ProcessExit{code};
}

int
Bionic::waitpid(int pid, int *status)
{
    return static_cast<int>(
        ret(trap(nr::WAITPID,
                 kernel::makeArgs(static_cast<std::int64_t>(pid),
                                  static_cast<void *>(status)))));
}

int
Bionic::kill(int pid, int linux_signo)
{
    return static_cast<int>(
        ret(trap(nr::KILL,
                 kernel::makeArgs(static_cast<std::int64_t>(pid),
                                  static_cast<std::int64_t>(
                                      linux_signo)))));
}

int
Bionic::sigaction(int linux_signo, kernel::SignalHandlerFn handler)
{
    kernel::SignalAction act;
    if (handler) {
        act.kind = kernel::SignalAction::Kind::Handler;
        act.fn = std::move(handler);
    } else {
        act.kind = kernel::SignalAction::Kind::Ignore;
    }
    return static_cast<int>(
        ret(trap(nr::SIGACTION,
                 kernel::makeArgs(static_cast<std::int64_t>(linux_signo),
                                  static_cast<void *>(&act)))));
}

int
Bionic::nullSyscall()
{
    return static_cast<int>(
        ret(trap(nr::NULL_SYSCALL, kernel::makeArgs())));
}

void
Bionic::atexit(std::function<void()> fn)
{
    state().atexitHandlers.push_back(std::move(fn));
}

void
Bionic::pthreadAtfork(std::function<void()> prepare,
                      std::function<void()> parent,
                      std::function<void()> child)
{
    state().atforkHandlers.push_back(
        {std::move(prepare), std::move(parent), std::move(child)});
}

int
Bionic::errno_() const
{
    return persona::ThreadTls::of(env_.thread)
        .area(kernel::Persona::Android)
        .errnoValue();
}

} // namespace cider::android
