#include "android/input.h"

#include <cstring>

namespace cider::android {

namespace {

constexpr std::size_t kWireSize = 1 + 4 + 4 + 4 + 8 + 4;

} // namespace

std::size_t
motionEventWireSize()
{
    return kWireSize;
}

Bytes
serializeMotionEvent(const MotionEvent &ev)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(ev.action));
    w.u32(static_cast<std::uint32_t>(ev.pointerId));
    std::uint32_t xbits, ybits;
    std::memcpy(&xbits, &ev.x, 4);
    std::memcpy(&ybits, &ev.y, 4);
    w.u32(xbits);
    w.u32(ybits);
    w.u64(ev.timeNs);
    w.u32(static_cast<std::uint32_t>(ev.pointerCount));
    return w.take();
}

bool
parseMotionEvent(const Bytes &data, MotionEvent *out)
{
    if (data.size() < kWireSize || !out)
        return false;
    ByteReader r(data);
    out->action = static_cast<MotionAction>(r.u8());
    out->pointerId = static_cast<std::int32_t>(r.u32());
    std::uint32_t xbits = r.u32();
    std::uint32_t ybits = r.u32();
    std::memcpy(&out->x, &xbits, 4);
    std::memcpy(&out->y, &ybits, 4);
    out->timeNs = r.u64();
    out->pointerCount = static_cast<std::int32_t>(r.u32());
    return r.ok();
}

int
InputSubsystem::subscribe(Listener listener)
{
    std::lock_guard<std::mutex> lock(mu_);
    int id = nextId_++;
    listeners_.emplace_back(id, std::move(listener));
    return id;
}

void
InputSubsystem::unsubscribe(int id)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(listeners_,
                  [id](const auto &pair) { return pair.first == id; });
}

void
InputSubsystem::inject(const MotionEvent &ev)
{
    std::vector<Listener> snapshot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[id, fn] : listeners_)
            snapshot.push_back(fn);
        delivered_ += snapshot.size();
    }
    for (const Listener &fn : snapshot)
        fn(ev);
}

} // namespace cider::android
