/**
 * @file
 * GPS device and the domestic location library.
 *
 * The paper's device-support recipe (section 6.4): "Devices with a
 * simple interface, such as GPS, can be supported with I/O Kit
 * drivers ... and diplomatic functions." This module provides the
 * Android half: a Linux GPS driver node (automatically bridged into
 * the I/O Kit registry) and liblocation.so, the domestic library the
 * diplomatic CoreLocation entry points call into.
 */

#ifndef CIDER_ANDROID_LOCATION_H
#define CIDER_ANDROID_LOCATION_H

#include "binfmt/program.h"
#include "kernel/device.h"

namespace cider::android {

/** Fix block returned by the GPS driver ioctl. */
struct GpsFix
{
    std::int32_t latE6 = 0; ///< latitude  * 1e6
    std::int32_t lonE6 = 0; ///< longitude * 1e6
    bool valid = false;
};

/** The Linux GPS driver (/dev/gps0). */
class GpsDevice : public kernel::Device
{
  public:
    static constexpr std::uint64_t kIoctlGetFix = 0x67505301;

    GpsDevice(double latitude, double longitude);

    kernel::SyscallResult ioctl(kernel::Thread &t, std::uint64_t req,
                                void *arg) override;

    void setFix(double latitude, double longitude);
    std::uint64_t fixCount() const { return fixes_; }

  private:
    std::int32_t latE6_;
    std::int32_t lonE6_;
    std::uint64_t fixes_ = 0;
};

/** liblocation.so exported symbol. */
inline constexpr const char *kLocationGetFix = "Location_getFix";

/**
 * Build liblocation.so. Location_getFix() returns the fix packed as
 * (latE6 << 32) | (lonE6 & 0xffffffff), or 0 with errno ENODEV when
 * no GPS hardware is present.
 */
binfmt::LibraryImage makeLocationLibrary();

/** Unpack a Location_getFix result. */
GpsFix unpackFix(std::int64_t packed);

} // namespace cider::android

#endif // CIDER_ANDROID_LOCATION_H
