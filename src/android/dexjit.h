/**
 * @file
 * DexJit: method-granularity translation of hot DexLite methods.
 *
 * The interpreter in android/dalvik.cc pays a real host-side tax on
 * every instruction: a switch dispatch, operand re-decode, `locals`
 * vector indexing through DexVal variants, and `std::map` lookups for
 * every native and method call. That tax is the *simulated* story of
 * the paper's Figure 6 — but we only want to pay it in virtual time,
 * not in host time. DexJit translates a method once it has been
 * interpreted a configurable number of times (warm-up) into
 * pre-decoded threaded code:
 *
 *  - operands resolved to register slots (locals and a statically
 *    computed operand-stack layout share one flat frame),
 *  - branch targets resolved to direct instruction indices,
 *  - natives and callee methods resolved to cached pointers,
 *  - stack traffic collapsed by a block-local peephole: pushes fold
 *    into consumer operand slots, constant pushes into immediate
 *    (K-form) binaries, and stores into the producing instruction's
 *    destination,
 *  - per-instruction dispatch cost folded into per-basic-block
 *    pre-charge records,
 *
 * executed by a computed-goto dispatch loop.
 *
 * Determinism contract (DESIGN.md §12): a translated method charges
 * the *same virtual-time cost model* and crosses the *same SchedRail
 * yield points* as the interpreter. The interpreter accumulates
 * dispatch/ALU cost in local variables and flushes to the thread
 * clock only before a CallMethod recursion and at method exit; those
 * accumulators are invisible to virtualNow() until the flush, so the
 * JIT may total them per basic block instead of per instruction and
 * flush identical sums at identical points. Array instructions charge
 * the clock directly and mid-instruction in the interpreter, so the
 * JIT emits them inline in original order (including the original
 * exception ordering around those charges). Virtual time, DalvikStats
 * and SchedRail traces are bit-identical with the JIT on or off.
 *
 * The TranslationCache is system-wide and keyed by (file identity,
 * file version, owning VM, persona, method name). Entries pin a
 * snapshot copy of their DexFile so resolved method pointers can
 * never dangle, and are invalidated on exec/unload (CiderSystem wires
 * kernel hooks to invalidateAll) and on registerNative rebinding
 * (generation stamp). A persona mismatch is a key mismatch: entries
 * are never shared across personas.
 */

#ifndef CIDER_ANDROID_DEXJIT_H
#define CIDER_ANDROID_DEXJIT_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "android/dalvik.h"
#include "binfmt/dex.h"
#include "kernel/device.h"
#include "kernel/types.h"

namespace cider::android {

/**
 * The JIT frame value: a tagged union mirroring DexVal without the
 * variant machinery on the hot path. `arr` is engaged only when
 * tag == Arr; the scalar members live in a plain union.
 */
struct JitVal
{
    enum class Tag : std::uint8_t { I, F, Arr };

    Tag tag = Tag::I;
    union {
        std::int64_t i;
        double f;
    };
    std::shared_ptr<std::vector<std::int64_t>> arr;

    JitVal() : i(0) {}
};

/** Threaded-code opcodes. Order matters: it indexes the label table. */
enum class JOp : std::uint8_t
{
    Block, ///< pre-charge: dst = insn count, imm = ps sum
    MoveI, ///< frame[dst] = imm
    MoveF, ///< frame[dst] = fimm
    Move,  ///< frame[dst] = frame[a]
    SwapSlots, ///< swap(frame[a], frame[b])
    AddI,  ///< frame[dst] = I(frame[a]) + I(frame[b]) — and so on
    SubI,
    MulI,
    DivI,
    ModI,
    AddF,
    SubF,
    MulF,
    DivF,
    LtI,
    LeI,
    EqI,
    AddIK, ///< frame[dst] = I(frame[a]) + imm — K-forms fold a MoveI
    SubIK, ///< (or MoveF) producer into the consuming binary, which
    MulIK, ///< is exact: the producer's slot always carried the
    DivIK, ///< matching tag, so the interpreter's coercion is identity
    ModIK,
    LtIK,
    LeIK,
    EqIK,
    AddFK, ///< frame[dst] = F(frame[a]) + fimm
    SubFK,
    MulFK,
    DivFK,
    JNltI, ///< fused CmpLt+Jz: ip = I(a) < I(b) ? ip+1 : dst
    JNleI,
    JNeqI,
    JNltIK, ///< fused with immediate: ip = I(a) < imm ? ip+1 : dst
    JNleIK,
    JNeqIK,
    Jump,  ///< ip = dst
    JumpZ, ///< if I(frame[a]) == 0 then ip = dst
    CallNat,  ///< dst = arg base slot, a = argc, b = original pc
    CallMeth, ///< dst = arg base slot, a = argc, b = original pc
    RetSlot,  ///< result = frame[a]; ip = end
    RetZero,  ///< result = 0; ip = end
    ArrNewOp, ///< frame[dst] = new array of I(frame[dst]) zeros
    ArrGetOp, ///< frame[dst] = Arr(frame[a])[I(frame[b])]
    ArrSetOp, ///< Arr(frame[a])[I(frame[b])] = I(frame[dst])
    ArrLenOp, ///< frame[dst] = len(Arr(frame[a]))
    End,      ///< flush accumulators, account instructions, return
};

/** One threaded-code instruction, fully pre-decoded. */
struct JitInsn
{
    JOp op = JOp::End;
    std::uint32_t dst = 0; ///< destination slot / jump target / count
    std::uint32_t a = 0;   ///< source slot / argc
    std::uint32_t b = 0;   ///< source slot / original pc
    std::int64_t imm = 0;  ///< integer immediate / block ps sum
    double fimm = 0.0;     ///< float immediate
};

/**
 * Call targets resolved once per decoded method, indexed by original
 * pc. Shared by the interpreter (which otherwise re-resolves through
 * std::map on every call instruction) and by translated code. Null
 * slots mean "unresolved": executing one reproduces the interpreter's
 * unknown-native / unknown-method panic.
 */
struct DecodedMethod
{
    std::vector<const DalvikVm::NativeFn *> natives;
    std::vector<const binfmt::DexMethod *> callees;
};

/** A translated method body. */
struct JitMethod
{
    std::uint32_t nlocals = 0;
    std::uint32_t nslots = 0; ///< nlocals + max operand-stack depth
    std::vector<JitInsn> code;
};

/**
 * One cache entry: warm-up counter, decoded call targets, and (after
 * warm-up) the translated body. The snapshot pins the DexFile content
 * the entry was decoded against, so `DecodedMethod::callees` and
 * `method` stay valid even if the caller's DexFile object dies; a
 * matching (identity, version) key guarantees identical content.
 */
struct MethodEntry
{
    std::shared_ptr<const binfmt::DexFile> snapshot;
    const binfmt::DexMethod *method = nullptr; ///< into snapshot
    DecodedMethod decoded;
    std::unique_ptr<JitMethod> code; ///< null until translated
    bool translationFailed = false;  ///< fall back to interpretation
    std::uint64_t nativesGen = 0;    ///< VM native-table generation
    std::uint64_t runs = 0;          ///< invocations seen (warm-up)
    std::uint64_t interpRuns = 0;
    std::uint64_t jitRuns = 0;
};

/**
 * System-wide translation cache. Thread-safe for lookup/invalidation
 * (entries returned as shared_ptr stay alive across invalidateAll);
 * entry mutation follows the owning VM's single-threaded execution,
 * like the VM's own stats.
 */
class TranslationCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t translations = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t fallbacks = 0; ///< translation failures
    };

    /**
     * Find or create the entry for (@p file, @p method) under
     * @p persona as seen by @p vm. Re-decodes (and drops any
     * translation) when the VM's native table generation moved.
     */
    std::shared_ptr<MethodEntry> acquire(DalvikVm &vm,
                                         const binfmt::DexFile &file,
                                         const binfmt::DexMethod &method,
                                         kernel::Persona persona);

    /** Drop every entry and snapshot (exec / image unload). */
    void invalidateAll(const char *reason);

    void noteTranslation();
    void noteFallback();

    Stats statsSnapshot() const;
    std::size_t entryCount() const;
    std::size_t translatedCount() const;

    /** The /proc/cider/jit text. */
    std::string dump() const;

  private:
    using Key = std::tuple<std::uint64_t, std::uint64_t, const void *,
                           int, std::string>;

    mutable std::mutex mu_;
    std::map<Key, std::shared_ptr<MethodEntry>> entries_;
    /** One pinned content snapshot per (identity, version). */
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<const binfmt::DexFile>>
        snapshots_;
    Stats stats_;
    std::string lastInvalidation_;
};

/** The translator and threaded-code executor. */
class DexJit
{
  public:
    /**
     * Translate @p method (resolved against @p decoded). Returns null
     * when the method defeats static stack-depth analysis — e.g. a
     * path-dependent operand-stack depth or a statically reachable
     * underflow — in which case the caller falls back to the
     * interpreter permanently (which reproduces the original runtime
     * behaviour, panics included, when such code actually runs).
     * Carries the FaultRail site "dexjit.translate" on its allocation
     * path: an injected fault also returns null.
     */
    static std::unique_ptr<JitMethod>
    translate(const binfmt::DexMethod &method,
              const hw::DeviceProfile &profile);

    /** Run a translated method. Mirrors DalvikVm::execute exactly in
     *  virtual time, stats, and exception behaviour. */
    static DexVal execute(DalvikVm &vm, const binfmt::DexFile &file,
                          MethodEntry &entry, std::vector<DexVal> &args,
                          int depth);
};

/**
 * Kernel device node exposing translation-cache statistics at
 * /proc/cider/jit. Reads are single-shot, like the other /proc/cider
 * nodes.
 */
class JitStatsDevice : public kernel::Device
{
  public:
    explicit JitStatsDevice(const TranslationCache &cache)
        : kernel::Device("jit", "proc"), cache_(cache)
    {}

    kernel::SyscallResult read(kernel::Thread &t, Bytes &out,
                               std::size_t n) override;

  private:
    const TranslationCache &cache_;
};

} // namespace cider::android

#endif // CIDER_ANDROID_DEXJIT_H
