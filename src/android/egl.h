/**
 * @file
 * libEGL and libEGLbridge.
 *
 * libEGL is Android's native platform glue: surfaces bind window
 * memory from SurfaceFlinger to the GL render target. libEGLbridge is
 * the custom domestic library the paper adds for Cider: Apple's EAGL
 * extensions replace EGL on iOS, so diplomatic EAGL functions call
 * into this bridge, which implements the missing functionality over
 * libEGL and SurfaceFlinger (paper section 5.3).
 */

#ifndef CIDER_ANDROID_EGL_H
#define CIDER_ANDROID_EGL_H

#include <map>

#include "android/surfaceflinger.h"
#include "binfmt/program.h"

namespace cider::android {

/** Per-process EGL state (extension key "egl.state"). */
struct EglState
{
    bool initialised = false;
    struct Surface
    {
        int surfaceId = 0;
        int layerId = 0;
        std::uint32_t bufferId = 0;
    };
    std::map<int, Surface> surfaces;
    int nextSurfaceId = 1;
    int currentSurface = 0;
    int nextContextId = 1;
};

EglState &eglState(binfmt::UserEnv &env);

/**
 * Build libEGL.so. Exports:
 *  - eglGetDisplay() -> 1, eglInitialize() -> 1
 *  - eglCreateWindowSurface(width, height) -> surface id
 *    (allocates a SurfaceFlinger layer for window memory)
 *  - eglCreateContext() -> context id
 *  - eglMakeCurrent(surface) -> 1 (binds the GL render target)
 *  - eglSwapBuffers(surface) -> 1 (flush + queue + compose)
 *  - eglDestroySurface(surface) -> 1
 */
binfmt::LibraryImage makeEglLibrary(SurfaceFlinger &flinger);

/**
 * Build libEGLbridge.so, the EAGL support bridge. Exports:
 *  - EGLBridge_createContext(width, height) -> surface id
 *  - EGLBridge_setCurrent(surface) -> 1
 *  - EGLBridge_present(surface) -> 1
 *  - EGLBridge_surfaceBuffer(surface) -> gralloc buffer id
 */
binfmt::LibraryImage makeEglBridgeLibrary(SurfaceFlinger &flinger);

} // namespace cider::android

#endif // CIDER_ANDROID_EGL_H
