/**
 * @file
 * bionic: the domestic libc wrapper layer.
 *
 * Android (Linux) binaries reach the kernel through these wrappers,
 * which trap with Linux syscall numbers, follow the Linux calling
 * convention (negative-errno folded to -1 + errno in the bionic TLS
 * area), and keep the process's atexit/atfork registries.
 */

#ifndef CIDER_ANDROID_BIONIC_H
#define CIDER_ANDROID_BIONIC_H

#include <functional>
#include <string>
#include <vector>

#include "binfmt/program.h"
#include "kernel/kernel.h"
#include "kernel/linux_syscalls.h"

namespace cider::android {

/** Per-process libc runtime state (extension key "bionic.state"). */
struct LibcState
{
    std::vector<std::function<void()>> atexitHandlers;
    struct Atfork
    {
        std::function<void()> prepare;
        std::function<void()> parent;
        std::function<void()> child;
    };
    std::vector<Atfork> atforkHandlers;
};

/** Thin, stateless libc facade bound to one running thread. */
class Bionic
{
  public:
    explicit Bionic(binfmt::UserEnv &env) : env_(env) {}

    /// @{ File and descriptor calls.
    int open(const std::string &path, int flags);
    int close(int fd);
    std::int64_t read(int fd, Bytes &out, std::size_t n);
    std::int64_t write(int fd, const Bytes &data);
    int dup(int fd);
    int pipe(int fds[2]);
    int mkdir(const std::string &path);
    int unlink(const std::string &path);
    int rmdir(const std::string &path);
    int ioctl(int fd, std::uint64_t req, void *arg);
    std::int64_t lseek(int fd, std::int64_t offset, int whence);
    int stat(const std::string &path, kernel::StatBuf *out);
    int rename(const std::string &from, const std::string &to);
    int dup2(int fd, int new_fd);
    int getppid();
    int select(std::vector<int> &rd, std::vector<int> &wr,
               std::vector<int> &ready);
    /// @}

    /// @{ Sockets.
    int socket();
    int bind(int fd, const std::string &path);
    int listen(int fd, int backlog);
    int accept(int fd);
    int connect(int fd, const std::string &path);
    int socketpair(int fds[2]);
    /// @}

    /// @{ Process control.
    int getpid();
    int fork(kernel::EntryFn child_body);
    int execve(const std::string &path,
               const std::vector<std::string> &argv);
    [[noreturn]] void exit(int code);
    int waitpid(int pid, int *status);
    int kill(int pid, int linux_signo);
    int sigaction(int linux_signo, kernel::SignalHandlerFn handler);
    /// @}

    /** lmbench's null syscall probe. */
    int nullSyscall();

    /// @{ Runtime registries.
    void atexit(std::function<void()> fn);
    void pthreadAtfork(std::function<void()> prepare,
                       std::function<void()> parent,
                       std::function<void()> child);
    /// @}

    /** errno of the calling thread's *android* TLS area. */
    int errno_() const;

    binfmt::UserEnv &env() { return env_; }

  private:
    /** Linux user-side convention: -1 + errno on failure. */
    std::int64_t ret(const kernel::SyscallResult &r);
    kernel::SyscallResult trap(int nr, kernel::SyscallArgs args);
    LibcState &state();

    binfmt::UserEnv &env_;
};

} // namespace cider::android

#endif // CIDER_ANDROID_BIONIC_H
