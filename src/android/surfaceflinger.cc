#include "android/surfaceflinger.h"

#include "base/logging.h"
#include "kernel/kernel.h"

namespace cider::android {

SurfaceFlinger::SurfaceFlinger(gpu::SimGpu &gpu,
                               gpu::FramebufferDevice &fb)
    : gpu_(gpu), fb_(fb)
{
    scanout_ = gpu_.buffers().create(fb.width(), fb.height());
}

int
SurfaceFlinger::createLayer(const std::string &owner, std::uint32_t width,
                            std::uint32_t height, int z)
{
    gpu::BufferPtr buf = gpu_.buffers().create(width, height);
    std::lock_guard<std::mutex> lock(mu_);
    Layer layer;
    layer.id = nextLayerId_++;
    layer.owner = owner;
    layer.bufferId = buf->id;
    layer.z = z;
    layers_[layer.id] = layer;
    return layer.id;
}

bool
SurfaceFlinger::setLayerBuffer(int layer_id, std::uint32_t buffer_id)
{
    if (!gpu_.buffers().find(buffer_id))
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = layers_.find(layer_id);
    if (it == layers_.end())
        return false;
    it->second.bufferId = buffer_id;
    return true;
}

void
SurfaceFlinger::removeLayer(int layer_id)
{
    std::lock_guard<std::mutex> lock(mu_);
    layers_.erase(layer_id);
}

void
SurfaceFlinger::setVisible(int layer_id, bool visible)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = layers_.find(layer_id);
    if (it != layers_.end())
        it->second.visible = visible;
}

void
SurfaceFlinger::queueBuffer(int layer_id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = layers_.find(layer_id);
    if (it != layers_.end())
        it->second.dirty = true;
}

gpu::BufferPtr
SurfaceFlinger::layerBuffer(int layer_id) const
{
    std::uint32_t buffer_id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = layers_.find(layer_id);
        if (it == layers_.end())
            return nullptr;
        buffer_id = it->second.bufferId;
    }
    return gpu_.buffers().find(buffer_id);
}

const SurfaceFlinger::Layer *
SurfaceFlinger::layer(int layer_id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = layers_.find(layer_id);
    return it == layers_.end() ? nullptr : &it->second;
}

std::size_t
SurfaceFlinger::layerCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return layers_.size();
}

std::vector<SurfaceFlinger::Layer>
SurfaceFlinger::layersOwnedBy(const std::string &owner_prefix) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Layer> out;
    for (const auto &[id, layer] : layers_)
        if (layer.owner.rfind(owner_prefix, 0) == 0)
            out.push_back(layer);
    return out;
}

int
SurfaceFlinger::composeFrame(binfmt::UserEnv &env)
{
    // Build one composition pass: sample each visible layer as a
    // textured quad into the scanout target.
    std::vector<gpu::GpuCommand> cmds;
    int composed = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        gpu::GpuCommand clear;
        clear.op = gpu::GpuOp::Clear;
        clear.target = scanout_->id;
        cmds.push_back(clear);
        for (auto &[id, layer] : layers_) {
            if (!layer.visible)
                continue;
            gpu::GpuCommand bind;
            bind.op = gpu::GpuOp::BindTexture;
            bind.a = layer.bufferId;
            cmds.push_back(bind);
            gpu::GpuCommand draw;
            draw.op = gpu::GpuOp::DrawArrays;
            draw.a = 6; // two triangles
            draw.target = scanout_->id;
            cmds.push_back(draw);
            layer.dirty = false;
            ++composed;
        }
    }
    gpu_.submit(cmds);

    // Present the scanout buffer through the Linux display driver.
    kernel::SyscallResult r = fb_.ioctl(
        env.thread, gpu::FramebufferDevice::kIoctlPresent,
        reinterpret_cast<void *>(
            static_cast<std::uintptr_t>(scanout_->id)));
    if (!r.ok())
        warn("surfaceflinger: present failed with errno ", r.err);
    std::lock_guard<std::mutex> lock(mu_);
    ++frames_;
    return composed;
}

gpu::GraphicsBuffer
SurfaceFlinger::screenshot(int layer_id) const
{
    gpu::BufferPtr buf = layerBuffer(layer_id);
    if (!buf)
        return {};
    return *buf;
}

} // namespace cider::android
