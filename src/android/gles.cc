#include "android/gles.h"

#include "android/bionic.h"
#include "base/cost_clock.h"
#include "base/logging.h"
#include "xnu/bsd_syscalls.h"

namespace cider::android {

namespace {

// User-space driver work per GL call (validation, command encode).
constexpr double kGlCallCycles = 100;

void
chargeCall(binfmt::UserEnv &env)
{
    charge(env.kernel.profile().cyclesToNs(kGlCallCycles));
    ++glState(env).callCount;
}

} // namespace

GlState &
glState(binfmt::UserEnv &env)
{
    return env.process().ext().get<GlState>("gles.state");
}

void
glFlushPending(binfmt::UserEnv &env)
{
    GlState &st = glState(env);
    if (st.pending.empty())
        return;

    // The GL client library is built per platform: the Android build
    // traps with Linux syscalls, the Apple build (running natively on
    // the iPad) with XNU ones. Either way the driver interface stays
    // opaque to the other ecosystem.
    bool ios_native = env.thread.persona() == kernel::Persona::Ios;
    kernel::TrapClass cls = ios_native ? kernel::TrapClass::XnuBsd
                                       : kernel::TrapClass::LinuxSyscall;
    int open_nr =
        ios_native ? xnu::xnuno::OPEN : kernel::sysno::OPEN;
    int ioctl_nr =
        ios_native ? xnu::xnuno::IOCTL : kernel::sysno::IOCTL;

    if (st.gpuFd < 0) {
        kernel::SyscallResult r = env.kernel.trap(
            env.thread, cls, open_nr,
            kernel::makeArgs(std::string("/dev/nvhost"),
                             static_cast<std::int64_t>(
                                 kernel::oflag::RDWR)));
        if (!r.ok()) {
            warn("libGLESv2: cannot open GPU device");
            st.pending.clear();
            return;
        }
        st.gpuFd = static_cast<int>(r.value);
    }
    std::vector<gpu::GpuCommand> batch;
    batch.swap(st.pending);
    env.kernel.trap(env.thread, cls, ioctl_nr,
                    kernel::makeArgs(
                        static_cast<std::int64_t>(st.gpuFd),
                        static_cast<std::uint64_t>(
                            gpu::GpuDevice::kIoctlSubmit),
                        static_cast<void *>(&batch)));
}

void
glSetRenderTarget(binfmt::UserEnv &env, std::uint32_t buffer_id)
{
    glState(env).boundTarget = buffer_id;
}

std::vector<std::string>
glesExportNames()
{
    return {
        "glActiveTexture", "glAttachShader", "glBindBuffer",
        "glBindFramebuffer", "glBindTexture", "glBlendFunc",
        "glBufferData", "glClear", "glClearColor", "glCompileShader",
        "glCreateProgram", "glCreateShader", "glDeleteTextures",
        "glDepthFunc", "glDisable", "glDrawArrays", "glDrawElements",
        "glEnable", "glEnableVertexAttribArray", "glFinish", "glFlush",
        "glGenBuffers", "glGenTextures", "glGetError",
        "glGetUniformLocation", "glLinkProgram", "glShaderSource",
        "glTexImage2D", "glTexParameteri", "glUniform1f", "glUniform1i",
        "glUniformMatrix4fv", "glUseProgram", "glVertexAttribPointer",
        "glViewport",
    };
}

binfmt::LibraryImage
makeGlesLibrary()
{
    binfmt::LibraryImage lib;
    lib.name = "libGLESv2.so";
    lib.format = kernel::BinaryFormat::Elf;
    lib.pages = 420;
    lib.deps = {"libgralloc.so"};

    using Args = std::vector<binfmt::Value>;
    auto I = [](std::int64_t v) { return binfmt::Value{v}; };

    // State-change calls: validation cost, queued command.
    auto queue_cmd = [](gpu::GpuOp op) {
        return [op](binfmt::UserEnv &env, Args &args) {
            chargeCall(env);
            GlState &st = glState(env);
            gpu::GpuCommand cmd;
            cmd.op = op;
            cmd.target = st.boundTarget;
            if (!args.empty())
                cmd.a = static_cast<std::uint64_t>(
                    binfmt::valueI64(args[0]));
            if (args.size() > 1)
                cmd.b = static_cast<std::uint64_t>(
                    binfmt::valueI64(args[1]));
            st.pending.push_back(cmd);
            return binfmt::Value{};
        };
    };

    // Pure client-side calls: validation cost only.
    auto client_only = [](binfmt::UserEnv &env, Args &) {
        chargeCall(env);
        return binfmt::Value{};
    };

    for (const char *sym :
         {"glActiveTexture", "glAttachShader", "glBindBuffer",
          "glBindFramebuffer", "glBlendFunc", "glBufferData",
          "glCompileShader", "glDepthFunc", "glDisable", "glEnable",
          "glEnableVertexAttribArray", "glLinkProgram",
          "glShaderSource", "glTexParameteri", "glUniform1f",
          "glUniform1i", "glUniformMatrix4fv",
          "glVertexAttribPointer", "glViewport"})
        lib.exports.add(sym, client_only);

    lib.exports.add("glClearColor",
                    [](binfmt::UserEnv &env, Args &args) {
                        chargeCall(env);
                        GlState &st = glState(env);
                        gpu::GpuCommand cmd;
                        cmd.op = gpu::GpuOp::ClearColor;
                        cmd.f0 = binfmt::valueF64(args.at(0));
                        cmd.f1 = binfmt::valueF64(args.at(1));
                        cmd.f2 = binfmt::valueF64(args.at(2));
                        cmd.f3 = binfmt::valueF64(args.at(3));
                        st.pending.push_back(cmd);
                        return binfmt::Value{};
                    });

    lib.exports.add("glClear", queue_cmd(gpu::GpuOp::Clear));

    lib.exports.add("glBindTexture",
                    [](binfmt::UserEnv &env, Args &args) {
                        chargeCall(env);
                        GlState &st = glState(env);
                        st.boundTexture = static_cast<std::uint32_t>(
                            binfmt::valueI64(args.at(1)));
                        gpu::GpuCommand cmd;
                        cmd.op = gpu::GpuOp::BindTexture;
                        cmd.a = st.boundTexture;
                        st.pending.push_back(cmd);
                        return binfmt::Value{};
                    });

    lib.exports.add("glDrawArrays",
                    [](binfmt::UserEnv &env, Args &args) {
                        chargeCall(env);
                        GlState &st = glState(env);
                        gpu::GpuCommand cmd;
                        cmd.op = gpu::GpuOp::DrawArrays;
                        cmd.a = static_cast<std::uint64_t>(
                            binfmt::valueI64(args.at(2))); // count
                        cmd.target = st.boundTarget;
                        st.pending.push_back(cmd);
                        return binfmt::Value{};
                    });

    lib.exports.add("glDrawElements",
                    [](binfmt::UserEnv &env, Args &args) {
                        chargeCall(env);
                        GlState &st = glState(env);
                        gpu::GpuCommand cmd;
                        cmd.op = gpu::GpuOp::DrawArrays;
                        cmd.a = static_cast<std::uint64_t>(
                            binfmt::valueI64(args.at(1)));
                        cmd.target = st.boundTarget;
                        st.pending.push_back(cmd);
                        return binfmt::Value{};
                    });

    lib.exports.add("glTexImage2D",
                    [](binfmt::UserEnv &env, Args &args) {
                        chargeCall(env);
                        GlState &st = glState(env);
                        gpu::GpuCommand cmd;
                        cmd.op = gpu::GpuOp::TexImage2D;
                        cmd.a = static_cast<std::uint64_t>(
                            binfmt::valueI64(args.at(0)));
                        cmd.b = static_cast<std::uint64_t>(
                            binfmt::valueI64(args.at(1)));
                        st.pending.push_back(cmd);
                        return binfmt::Value{};
                    });

    auto gen_names = [I](binfmt::UserEnv &env, Args &args) {
        chargeCall(env);
        GlState &st = glState(env);
        std::int64_t n = args.empty() ? 1 : binfmt::valueI64(args[0]);
        std::int64_t first = static_cast<std::int64_t>(st.nextName);
        st.nextName += static_cast<std::uint64_t>(n);
        return I(first);
    };
    lib.exports.add("glGenTextures", gen_names);
    lib.exports.add("glGenBuffers", gen_names);

    lib.exports.add("glDeleteTextures", client_only);

    lib.exports.add("glCreateProgram", [I](binfmt::UserEnv &env, Args &) {
        chargeCall(env);
        return I(static_cast<std::int64_t>(glState(env).nextName++));
    });
    lib.exports.add("glCreateShader", [I](binfmt::UserEnv &env, Args &) {
        chargeCall(env);
        return I(static_cast<std::int64_t>(glState(env).nextName++));
    });
    lib.exports.add("glGetUniformLocation",
                    [I](binfmt::UserEnv &env, Args &) {
                        chargeCall(env);
                        return I(1);
                    });
    lib.exports.add("glGetError", [I](binfmt::UserEnv &env, Args &) {
        chargeCall(env);
        return I(glState(env).lastError);
    });

    lib.exports.add("glUseProgram",
                    [](binfmt::UserEnv &env, Args &args) {
                        chargeCall(env);
                        GlState &st = glState(env);
                        st.program = static_cast<std::uint32_t>(
                            binfmt::valueI64(args.at(0)));
                        gpu::GpuCommand cmd;
                        cmd.op = gpu::GpuOp::UseProgram;
                        cmd.a = st.program;
                        st.pending.push_back(cmd);
                        return binfmt::Value{};
                    });

    lib.exports.add("glFlush", [](binfmt::UserEnv &env, Args &) {
        chargeCall(env);
        glFlushPending(env);
        return binfmt::Value{};
    });

    lib.exports.add("glFinish", [](binfmt::UserEnv &env, Args &) {
        chargeCall(env);
        GlState &st = glState(env);
        gpu::GpuCommand ins;
        ins.op = gpu::GpuOp::FenceInsert;
        ins.a = st.nextFence;
        gpu::GpuCommand wait;
        wait.op = gpu::GpuOp::FenceWait;
        wait.a = st.nextFence;
        ++st.nextFence;
        st.pending.push_back(ins);
        st.pending.push_back(wait);
        glFlushPending(env);
        return binfmt::Value{};
    });

    return lib;
}

} // namespace cider::android
