#include "android/launcher.h"

#include "base/logging.h"

namespace cider::android {

void
Launcher::addShortcut(Shortcut s)
{
    entries_.push_back(std::move(s));
}

const Shortcut *
Launcher::find(const std::string &label) const
{
    for (const Shortcut &s : entries_)
        if (s.label == label)
            return &s;
    return nullptr;
}

int
Launcher::launch(const std::string &label)
{
    const Shortcut *s = find(label);
    if (!s) {
        warn("launcher: no shortcut named ", label);
        return -1;
    }
    if (!launchFn_) {
        warn("launcher: no launch handler installed");
        return -1;
    }
    return launchFn_(*s);
}

} // namespace cider::android
