#include "android/ciderpress.h"

#include "android/bionic.h"
#include "base/logging.h"

namespace cider::android {

namespace cpmsg {

Bytes
frame(std::uint8_t kind, const Bytes &payload)
{
    ByteWriter w;
    w.u8(kind);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.raw(payload);
    return w.take();
}

} // namespace cpmsg

CiderPress::CiderPress(kernel::Kernel &k, InputSubsystem &input,
                       SurfaceFlinger &flinger)
    : kernel_(k), input_(input), flinger_(flinger)
{
    // CiderPress is itself a standard Android app process.
    self_ = &kernel_.createProcess("ciderpress", kernel::Persona::Android);
}

CiderPress::~CiderPress()
{
    for (auto &[id, session] : sessions_) {
        if (session->appHost.joinable()) {
            stop(id);
            session->appHost.join();
        }
        if (session->inputSubscription >= 0)
            input_.unsubscribe(session->inputSubscription);
    }
}

int
CiderPress::launchIosApp(const std::string &macho_path,
                         std::vector<std::string> extra_argv)
{
    auto session = std::make_unique<Session>();
    session->id = nextSession_++;
    session->socketPath =
        "/dev/socket/ciderpress." + std::to_string(session->id);

    kernel::Thread &self_thread = self_->mainThread();
    kernel::ThreadScope scope(self_thread);
    binfmt::UserEnv env{kernel_, self_thread, {}};
    Bionic libc(env);

    // Bridge endpoint the app's eventpump will connect back to.
    int listen_fd = libc.socket();
    if (listen_fd < 0 || libc.bind(listen_fd, session->socketPath) < 0 ||
        libc.listen(listen_fd, 4) < 0) {
        warn("ciderpress: cannot create bridge socket");
        return -1;
    }

    // Launch the foreign binary in a fresh process on its own host
    // thread; the Mach-O loader will flip its persona to iOS.
    kernel::Process &app = kernel_.createProcess(
        "ios-app." + std::to_string(session->id),
        kernel::Persona::Android, self_);
    session->proc = &app;

    std::vector<std::string> argv{macho_path, session->socketPath};
    argv.insert(argv.end(), extra_argv.begin(), extra_argv.end());

    kernel::Kernel *k = &kernel_;
    Session *raw = session.get();
    std::string bridge_path = session->socketPath;
    session->appHost = std::thread([k, &app, macho_path, argv, raw,
                                    bridge_path] {
        kernel::Thread &main = app.mainThread();
        kernel::ThreadScope thread_scope(main);
        int rc = 0;
        try {
            kernel::SyscallResult r =
                k->sysExecve(main, macho_path, argv);
            if (!r.ok()) {
                warn("ciderpress: exec of ", macho_path,
                     " failed with errno ", r.err);
                rc = 127;
                app.terminate(rc, main.clock().now());
                // The eventpump never got to connect; do it on the
                // dead app's behalf so CiderPress's accept returns.
                binfmt::UserEnv env{*k, main, {}};
                Bionic libc(env);
                int fd = libc.socket();
                if (fd >= 0)
                    libc.connect(fd, bridge_path);
            }
        } catch (const kernel::ProcessExit &e) {
            rc = e.code;
        }
        raw->appExitCode = rc;
        raw->appDone = true;
    });

    // Wait for the eventpump to connect, then retire the listener.
    int conn_fd = libc.accept(listen_fd);
    libc.close(listen_fd);
    kernel_.unixSockets().unbind(session->socketPath);
    session->serverFd = conn_fd;

    // Receive input on behalf of the app, like any foreground
    // Android activity, and forward it through the bridge.
    int sid = session->id;
    session->inputSubscription =
        input_.subscribe([this, sid](const MotionEvent &ev) {
            sendEvent(sid, ev);
        });

    int id = session->id;
    sessions_[id] = std::move(session);
    return id;
}

CiderPress::Session *
CiderPress::session(int id)
{
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
}

void
CiderPress::sendControl(Session &s, std::uint8_t kind,
                        const Bytes &payload)
{
    if (s.serverFd < 0)
        return;
    kernel::Thread &self_thread = self_->mainThread();
    kernel::ThreadScope scope(self_thread);
    binfmt::UserEnv env{kernel_, self_thread, {}};
    Bionic libc(env);
    Bytes framed = cpmsg::frame(kind, payload);
    if (libc.write(s.serverFd, framed) < 0)
        warn("ciderpress: bridge write failed");
}

void
CiderPress::sendEvent(int id, const MotionEvent &ev)
{
    Session *s = session(id);
    if (!s)
        return;
    sendControl(*s, cpmsg::Motion, serializeMotionEvent(ev));
}

void
CiderPress::pause(int id)
{
    if (Session *s = session(id))
        sendControl(*s, cpmsg::Pause);
}

void
CiderPress::resume(int id)
{
    if (Session *s = session(id))
        sendControl(*s, cpmsg::Resume);
}

void
CiderPress::stop(int id)
{
    if (Session *s = session(id))
        sendControl(*s, cpmsg::Stop);
}

int
CiderPress::join(int id)
{
    Session *s = session(id);
    if (!s)
        return -1;
    if (s->appHost.joinable())
        s->appHost.join();
    if (s->serverFd >= 0) {
        kernel::Thread &self_thread = self_->mainThread();
        kernel::ThreadScope scope(self_thread);
        binfmt::UserEnv env{kernel_, self_thread, {}};
        Bionic libc(env);
        libc.close(s->serverFd);
        s->serverFd = -1;
    }
    if (s->inputSubscription >= 0) {
        input_.unsubscribe(s->inputSubscription);
        s->inputSubscription = -1;
    }
    return s->appExitCode;
}

gpu::GraphicsBuffer
CiderPress::screenshot(int id)
{
    Session *s = session(id);
    if (!s || !s->proc)
        return {};
    auto layers = flinger_.layersOwnedBy(s->proc->name());
    if (layers.empty())
        return {};
    return flinger_.screenshot(layers.front().id);
}

} // namespace cider::android
