#include "android/dexjit.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <variant>

#include "base/cost_clock.h"
#include "base/logging.h"
#include "kernel/fault_rail.h"

namespace cider::android {

using binfmt::DexFile;
using binfmt::DexInsn;
using binfmt::DexMethod;
using binfmt::DexOp;

namespace {

JitVal
fromDex(const DexVal &v)
{
    JitVal out;
    if (const auto *i = std::get_if<std::int64_t>(&v)) {
        out.tag = JitVal::Tag::I;
        out.i = *i;
    } else if (const auto *f = std::get_if<double>(&v)) {
        out.tag = JitVal::Tag::F;
        out.f = *f;
    } else {
        out.tag = JitVal::Tag::Arr;
        out.arr = std::get<
            std::shared_ptr<std::vector<std::int64_t>>>(v);
    }
    return out;
}

DexVal
toDex(const JitVal &v)
{
    switch (v.tag) {
      case JitVal::Tag::I:
        return DexVal{v.i};
      case JitVal::Tag::F:
        return DexVal{v.f};
      case JitVal::Tag::Arr:
        return DexVal{v.arr};
    }
    return DexVal{std::int64_t{0}};
}

/** Mirror of dexI: doubles truncate, arrays coerce to 0. */
std::int64_t
jitI(const JitVal &v)
{
    if (v.tag == JitVal::Tag::I)
        return v.i;
    if (v.tag == JitVal::Tag::F)
        return static_cast<std::int64_t>(v.f);
    return 0;
}

/** Mirror of dexF. */
double
jitF(const JitVal &v)
{
    if (v.tag == JitVal::Tag::F)
        return v.f;
    if (v.tag == JitVal::Tag::I)
        return static_cast<double>(v.i);
    return 0.0;
}

void
setI(JitVal &slot, std::int64_t v)
{
    slot.tag = JitVal::Tag::I;
    slot.i = v;
    if (slot.arr)
        slot.arr.reset();
}

void
setF(JitVal &slot, double v)
{
    slot.tag = JitVal::Tag::F;
    slot.f = v;
    if (slot.arr)
        slot.arr.reset();
}

/**
 * The interpreter reaches its array payload with std::get on a
 * DexVal, which throws std::bad_variant_access for non-arrays. The
 * JIT frame is untyped storage, so reproduce the exact exception by
 * rebuilding the DexVal and performing the same std::get.
 */
void
requireArr(const JitVal &v)
{
    if (v.tag == JitVal::Tag::Arr)
        return;
    DexVal tmp = toDex(v);
    (void)std::get<std::shared_ptr<std::vector<std::int64_t>>>(tmp);
}

/** Virtual picoseconds the interpreter adds for one instruction. */
std::uint64_t
opPs(DexOp op, const hw::DeviceProfile &profile)
{
    const hw::Codegen cg = hw::Codegen::LinuxGcc;
    switch (op) {
      case DexOp::Add:
      case DexOp::Sub:
      case DexOp::CmpLt:
      case DexOp::CmpLe:
      case DexOp::CmpEq:
        return profile.cpuOpPs(hw::CpuOp::IntAdd, cg);
      case DexOp::Mul:
        return profile.cpuOpPs(hw::CpuOp::IntMul, cg);
      case DexOp::Div:
      case DexOp::Mod:
        return profile.cpuOpPs(hw::CpuOp::IntDiv, cg);
      case DexOp::FAdd:
      case DexOp::FSub:
        return profile.cpuOpPs(hw::CpuOp::DoubleAdd, cg);
      case DexOp::FMul:
      case DexOp::FDiv:
        return profile.cpuOpPs(hw::CpuOp::DoubleMul, cg);
      default:
        return 0;
    }
}

/** Stack slots consumed / produced by one instruction. */
struct StackEffect
{
    int need = 0;  ///< minimum operand-stack depth on entry
    int delta = 0; ///< depth change after execution
    bool ok = true;
};

StackEffect
stackEffect(const DexInsn &insn, std::uint32_t nlocals)
{
    StackEffect e;
    switch (insn.op) {
      case DexOp::Nop:
        break;
      case DexOp::ConstI:
      case DexOp::ConstF:
        e.delta = 1;
        break;
      case DexOp::Load:
        if (insn.a < 0 ||
            static_cast<std::uint64_t>(insn.a) >= nlocals)
            e.ok = false;
        e.delta = 1;
        break;
      case DexOp::Store:
        if (insn.a < 0 ||
            static_cast<std::uint64_t>(insn.a) >= nlocals)
            e.ok = false;
        e.need = 1;
        e.delta = -1;
        break;
      case DexOp::Add:
      case DexOp::Sub:
      case DexOp::Mul:
      case DexOp::Div:
      case DexOp::Mod:
      case DexOp::FAdd:
      case DexOp::FSub:
      case DexOp::FMul:
      case DexOp::FDiv:
      case DexOp::CmpLt:
      case DexOp::CmpLe:
      case DexOp::CmpEq:
        e.need = 2;
        e.delta = -1;
        break;
      case DexOp::Jmp:
        break;
      case DexOp::Jz:
        e.need = 1;
        e.delta = -1;
        break;
      case DexOp::Dup:
        e.need = 1;
        e.delta = 1;
        break;
      case DexOp::Drop:
        e.need = 1;
        e.delta = -1;
        break;
      case DexOp::Swap:
        e.need = 2;
        break;
      case DexOp::CallNative:
      case DexOp::CallMethod: {
          int argc = insn.a > 0 ? static_cast<int>(insn.a) : 0;
          e.need = argc;
          e.delta = 1 - argc;
          break;
      }
      case DexOp::Ret:
        // Consumes the top value when present; either way control
        // leaves the method, so no successor sees the depth.
        break;
      case DexOp::ArrNew:
        e.need = 1;
        break;
      case DexOp::ArrGet:
        e.need = 2;
        e.delta = -1;
        break;
      case DexOp::ArrSet:
        e.need = 3;
        e.delta = -3;
        break;
      case DexOp::ArrLen:
        e.need = 1;
        break;
      default:
        // Unknown opcode: the interpreter's switch executes no case —
        // the instruction is counted and dispatch-charged but has no
        // stack effect. Model it the same way.
        break;
    }
    return e;
}

bool
endsBlock(DexOp op)
{
    return op == DexOp::Jmp || op == DexOp::Jz || op == DexOp::Ret ||
           op == DexOp::CallMethod;
}

} // namespace

std::unique_ptr<JitMethod>
DexJit::translate(const DexMethod &method,
                  const hw::DeviceProfile &profile)
{
    // The chaos job arms this site: an injected allocation failure
    // here means the method simply stays interpreted.
    if (CIDER_FAULT_POINT("dexjit.translate"))
        return nullptr;

    const std::vector<DexInsn> &code = method.code;
    const std::size_t n = code.size();
    const std::uint32_t nlocals = method.nlocals;

    // Jump targets resolve exactly as the interpreter's
    // `pc = (size_t)insn.a`: anything outside [0, n) leaves the loop.
    auto target = [n](std::int64_t a) -> std::size_t {
        return (a < 0 || static_cast<std::uint64_t>(a) >= n)
                   ? n
                   : static_cast<std::size_t>(a);
    };

    // Pass 1: abstract interpretation of the operand-stack depth.
    // Every reachable pc must have one consistent entry depth; a
    // merge conflict or statically reachable underflow defeats the
    // register-slot mapping and fails the translation.
    std::vector<int> depth(n, -1);
    std::vector<std::size_t> work;
    int maxDepth = 0;
    if (n > 0) {
        depth[0] = 0;
        work.push_back(0);
    }
    auto flow = [&](std::size_t to, int d) -> bool {
        if (to >= n)
            return true; // exit pseudo-node: any depth
        if (depth[to] == -1) {
            depth[to] = d;
            work.push_back(to);
            return true;
        }
        return depth[to] == d;
    };
    while (!work.empty()) {
        std::size_t pc = work.back();
        work.pop_back();
        const DexInsn &insn = code[pc];
        int d = depth[pc];
        StackEffect e = stackEffect(insn, nlocals);
        if (!e.ok || d < e.need)
            return nullptr;
        int after = d + e.delta;
        if (d > maxDepth)
            maxDepth = d;
        if (after > maxDepth)
            maxDepth = after;
        switch (insn.op) {
          case DexOp::Jmp:
            if (!flow(target(insn.a), after))
                return nullptr;
            break;
          case DexOp::Jz:
            if (!flow(target(insn.a), after) || !flow(pc + 1, after))
                return nullptr;
            break;
          case DexOp::Ret:
            break;
          default:
            if (!flow(pc + 1, after))
                return nullptr;
            break;
        }
    }

    // Pass 2: mark block leaders (jump targets and fall-throughs of
    // block-ending instructions).
    std::vector<char> leader(n + 1, 0);
    if (n > 0)
        leader[0] = 1;
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (depth[pc] < 0)
            continue;
        const DexInsn &insn = code[pc];
        if (insn.op == DexOp::Jmp || insn.op == DexOp::Jz)
            leader[target(insn.a)] = 1;
        if (endsBlock(insn.op) && pc + 1 <= n)
            leader[pc + 1] = 1;
    }

    auto jm = std::make_unique<JitMethod>();
    jm->nlocals = nlocals;
    jm->nslots = nlocals + static_cast<std::uint32_t>(maxDepth);

    // Pass 3: emit threaded code. Each block opens with a Block
    // record accumulating the interpreter's per-instruction dispatch
    // count and ALU picoseconds for every instruction in the block;
    // the executor totals those in local accumulators and flushes
    // them at exactly the interpreter's flush points.
    //
    // A block-local peephole collapses the stack traffic as it goes:
    // a pure push (Move/MoveI/MoveF) is a "producer" whose value a
    // later consumer in the same block can absorb — the consumer
    // reads the push's source slot (or carries the constant as a
    // K-form immediate) and the push is deleted in the compaction
    // pass below. A Store whose value was computed by the immediately
    // preceding instruction instead rewrites that instruction's
    // destination to the local. None of this touches the Block
    // records, so instruction counts and virtual-time charges are
    // exactly the unoptimised ones.
    std::vector<std::uint32_t> indexOfPc(n + 1, 0);
    std::vector<std::pair<std::size_t, std::size_t>> patches;
    std::size_t blockAt = SIZE_MAX;
    auto slot = [nlocals](int d) {
        return nlocals + static_cast<std::uint32_t>(d);
    };

    struct Prod
    {
        std::size_t idx = SIZE_MAX; ///< emission index of the push
        enum Kind : std::uint8_t { Mv, Ki, Kf } kind = Mv;
        std::uint32_t src = 0;
        std::int64_t imm = 0;
        double fimm = 0.0;
    };
    const std::uint32_t nslots = jm->nslots;
    std::vector<Prod> prod(nslots);
    std::vector<std::int64_t> lastRead(nslots, -1);
    std::vector<std::int64_t> lastWrite(nslots, -1);
    std::vector<char> dead;

    auto emit = [&jm, &dead](JOp op) -> JitInsn & {
        jm->code.emplace_back();
        dead.push_back(0);
        jm->code.back().op = op;
        return jm->code.back();
    };
    auto here = [&jm]() -> std::int64_t {
        return static_cast<std::int64_t>(jm->code.size()) - 1;
    };
    auto noteRead = [&](std::uint32_t s) { lastRead[s] = here(); };
    auto noteWrite = [&](std::uint32_t s) {
        lastWrite[s] = here();
        prod[s].idx = SIZE_MAX;
    };
    auto resetBlockState = [&]() {
        for (std::uint32_t s = 0; s < nslots; ++s) {
            prod[s].idx = SIZE_MAX;
            lastRead[s] = -1;
            lastWrite[s] = -1;
        }
    };
    // The live producer of slot y, if its value can be absorbed: the
    // push is the slot's last write, nothing has read the slot since,
    // and (for a copy) the copy's source is unchanged since the push.
    auto foldable = [&](std::uint32_t y) -> Prod * {
        Prod &p = prod[y];
        if (p.idx == SIZE_MAX || blockAt == SIZE_MAX ||
            p.idx <= blockAt || dead[p.idx])
            return nullptr;
        std::int64_t at = static_cast<std::int64_t>(p.idx);
        if (lastWrite[y] != at || lastRead[y] > at)
            return nullptr;
        if (p.kind == Prod::Mv && lastWrite[p.src] > at)
            return nullptr;
        return &p;
    };
    // Absorb slot y's pure-copy producer: the caller reads the
    // returned slot instead, and the copy dies.
    auto foldSlot = [&](std::uint32_t y) -> std::uint32_t {
        Prod *p = foldable(y);
        if (p && p->kind == Prod::Mv) {
            dead[p->idx] = 1;
            std::uint32_t src = p->src;
            p->idx = SIZE_MAX;
            return src;
        }
        return y;
    };
    // Instructions whose destination a Store may redirect into a
    // local: pure value producers that read all sources before
    // writing. Excludes ArrNewOp (dst doubles as the length source)
    // and the calls (dst doubles as the argument base).
    auto dstRewritable = [](JOp op) {
        switch (op) {
          case JOp::MoveI:
          case JOp::MoveF:
          case JOp::Move:
          case JOp::AddI:
          case JOp::SubI:
          case JOp::MulI:
          case JOp::DivI:
          case JOp::ModI:
          case JOp::AddF:
          case JOp::SubF:
          case JOp::MulF:
          case JOp::DivF:
          case JOp::LtI:
          case JOp::LeI:
          case JOp::EqI:
          case JOp::AddIK:
          case JOp::SubIK:
          case JOp::MulIK:
          case JOp::DivIK:
          case JOp::ModIK:
          case JOp::LtIK:
          case JOp::LeIK:
          case JOp::EqIK:
          case JOp::AddFK:
          case JOp::SubFK:
          case JOp::MulFK:
          case JOp::DivFK:
          case JOp::ArrGetOp:
          case JOp::ArrLenOp:
            return true;
          default:
            return false;
        }
    };

    for (std::size_t pc = 0; pc < n; ++pc) {
        if (depth[pc] < 0)
            continue; // unreachable: never executed, never counted
        if (blockAt == SIZE_MAX || leader[pc]) {
            indexOfPc[pc] = static_cast<std::uint32_t>(jm->code.size());
            emit(JOp::Block);
            blockAt = jm->code.size() - 1;
            resetBlockState();
        }
        const DexInsn &insn = code[pc];
        const int d = depth[pc];
        {
            JitInsn &block = jm->code[blockAt];
            block.dst += 1;
            block.imm +=
                static_cast<std::int64_t>(opPs(insn.op, profile));
        }
        switch (insn.op) {
          case DexOp::Nop:
            break;
          case DexOp::ConstI: {
              JitInsn &j = emit(JOp::MoveI);
              j.dst = slot(d);
              j.imm = insn.a;
              noteWrite(j.dst);
              Prod &p = prod[j.dst];
              p.idx = static_cast<std::size_t>(here());
              p.kind = Prod::Ki;
              p.imm = insn.a;
              break;
          }
          case DexOp::ConstF: {
              JitInsn &j = emit(JOp::MoveF);
              j.dst = slot(d);
              j.fimm = insn.f;
              noteWrite(j.dst);
              Prod &p = prod[j.dst];
              p.idx = static_cast<std::size_t>(here());
              p.kind = Prod::Kf;
              p.fimm = insn.f;
              break;
          }
          case DexOp::Load: {
              JitInsn &j = emit(JOp::Move);
              j.dst = slot(d);
              j.a = static_cast<std::uint32_t>(insn.a);
              noteRead(j.a);
              noteWrite(j.dst);
              Prod &p = prod[j.dst];
              p.idx = static_cast<std::size_t>(here());
              p.kind = Prod::Mv;
              p.src = j.a;
              break;
          }
          case DexOp::Store: {
              const std::uint32_t y = slot(d - 1);
              const std::uint32_t L =
                  static_cast<std::uint32_t>(insn.a);
              std::int64_t tail = here();
              if (blockAt != SIZE_MAX &&
                  tail > static_cast<std::int64_t>(blockAt) &&
                  !dead[tail] && jm->code[tail].dst == y &&
                  dstRewritable(jm->code[tail].op)) {
                  jm->code[tail].dst = L;
                  lastWrite[L] = tail;
                  prod[L].idx = SIZE_MAX;
                  prod[y].idx = SIZE_MAX;
              } else if (Prod *p = foldable(y)) {
                  JitInsn &j = emit(p->kind == Prod::Ki   ? JOp::MoveI
                                    : p->kind == Prod::Kf ? JOp::MoveF
                                                          : JOp::Move);
                  j.dst = L;
                  if (p->kind == Prod::Ki) {
                      j.imm = p->imm;
                  } else if (p->kind == Prod::Kf) {
                      j.fimm = p->fimm;
                  } else {
                      j.a = p->src;
                      noteRead(j.a);
                  }
                  dead[p->idx] = 1;
                  p->idx = SIZE_MAX;
                  noteWrite(L);
              } else {
                  JitInsn &j = emit(JOp::Move);
                  j.dst = L;
                  j.a = y;
                  noteRead(y);
                  noteWrite(L);
              }
              break;
          }
          case DexOp::Add:
          case DexOp::Sub:
          case DexOp::Mul:
          case DexOp::Div:
          case DexOp::Mod:
          case DexOp::FAdd:
          case DexOp::FSub:
          case DexOp::FMul:
          case DexOp::FDiv:
          case DexOp::CmpLt:
          case DexOp::CmpLe:
          case DexOp::CmpEq: {
              static const std::map<DexOp, JOp> kBinOp = {
                  {DexOp::Add, JOp::AddI},   {DexOp::Sub, JOp::SubI},
                  {DexOp::Mul, JOp::MulI},   {DexOp::Div, JOp::DivI},
                  {DexOp::Mod, JOp::ModI},   {DexOp::FAdd, JOp::AddF},
                  {DexOp::FSub, JOp::SubF},  {DexOp::FMul, JOp::MulF},
                  {DexOp::FDiv, JOp::DivF},  {DexOp::CmpLt, JOp::LtI},
                  {DexOp::CmpLe, JOp::LeI},  {DexOp::CmpEq, JOp::EqI},
              };
              static const std::map<JOp, JOp> kToK = {
                  {JOp::AddI, JOp::AddIK}, {JOp::SubI, JOp::SubIK},
                  {JOp::MulI, JOp::MulIK}, {JOp::DivI, JOp::DivIK},
                  {JOp::ModI, JOp::ModIK}, {JOp::LtI, JOp::LtIK},
                  {JOp::LeI, JOp::LeIK},   {JOp::EqI, JOp::EqIK},
                  {JOp::AddF, JOp::AddFK}, {JOp::SubF, JOp::SubFK},
                  {JOp::MulF, JOp::MulFK}, {JOp::DivF, JOp::DivFK},
              };
              const JOp base = kBinOp.at(insn.op);
              const bool isFloat =
                  base == JOp::AddF || base == JOp::SubF ||
                  base == JOp::MulF || base == JOp::DivF;
              const std::uint32_t xa = slot(d - 2);
              std::uint32_t bSrc = slot(d - 1);
              bool useK = false;
              std::int64_t kImm = 0;
              double kFimm = 0.0;
              // A constant operand folds into a K-form only when its
              // tag matches the op family (the coercion is identity);
              // a copy operand folds unconditionally.
              if (Prod *p = foldable(bSrc)) {
                  if (!isFloat && p->kind == Prod::Ki) {
                      useK = true;
                      kImm = p->imm;
                      dead[p->idx] = 1;
                      p->idx = SIZE_MAX;
                  } else if (isFloat && p->kind == Prod::Kf) {
                      useK = true;
                      kFimm = p->fimm;
                      dead[p->idx] = 1;
                      p->idx = SIZE_MAX;
                  } else if (p->kind == Prod::Mv) {
                      bSrc = p->src;
                      dead[p->idx] = 1;
                      p->idx = SIZE_MAX;
                  }
              }
              const std::uint32_t aSrc = foldSlot(xa);
              JitInsn &j = emit(useK ? kToK.at(base) : base);
              j.dst = xa;
              j.a = aSrc;
              if (useK) {
                  j.imm = kImm;
                  j.fimm = kFimm;
              } else {
                  j.b = bSrc;
              }
              noteRead(aSrc);
              if (!useK)
                  noteRead(bSrc);
              noteWrite(xa);
              break;
          }
          case DexOp::Jmp: {
              emit(JOp::Jump);
              patches.emplace_back(jm->code.size() - 1,
                                   target(insn.a));
              break;
          }
          case DexOp::Jz: {
              // Fuse a compare feeding straight into the branch: the
              // comparison result slot is popped here and dead after,
              // so the pair becomes one jump-unless instruction.
              const std::uint32_t y = slot(d - 1);
              const std::int64_t tail = here();
              auto fused = [](JOp op) {
                  switch (op) {
                    case JOp::LtI:  return JOp::JNltI;
                    case JOp::LeI:  return JOp::JNleI;
                    case JOp::EqI:  return JOp::JNeqI;
                    case JOp::LtIK: return JOp::JNltIK;
                    case JOp::LeIK: return JOp::JNleIK;
                    case JOp::EqIK: return JOp::JNeqIK;
                    default:        return JOp::End;
                  }
              };
              if (blockAt != SIZE_MAX &&
                  tail > static_cast<std::int64_t>(blockAt) &&
                  !dead[tail] && jm->code[tail].dst == y &&
                  fused(jm->code[tail].op) != JOp::End) {
                  JitInsn &t = jm->code[tail];
                  t.op = fused(t.op);
                  t.dst = 0;
                  prod[y].idx = SIZE_MAX;
                  patches.emplace_back(static_cast<std::size_t>(tail),
                                       target(insn.a));
                  break;
              }
              const std::uint32_t ySrc = foldSlot(y);
              JitInsn &j = emit(JOp::JumpZ);
              j.a = ySrc;
              noteRead(ySrc);
              patches.emplace_back(jm->code.size() - 1,
                                   target(insn.a));
              break;
          }
          case DexOp::Dup: {
              JitInsn &j = emit(JOp::Move);
              j.dst = slot(d);
              j.a = slot(d - 1);
              noteRead(j.a);
              noteWrite(j.dst);
              Prod &p = prod[j.dst];
              p.idx = static_cast<std::size_t>(here());
              p.kind = Prod::Mv;
              p.src = j.a;
              break;
          }
          case DexOp::Drop:
            break;
          case DexOp::Swap: {
              JitInsn &j = emit(JOp::SwapSlots);
              j.a = slot(d - 1);
              j.b = slot(d - 2);
              noteRead(j.a);
              noteRead(j.b);
              noteWrite(j.a);
              noteWrite(j.b);
              break;
          }
          case DexOp::CallNative:
          case DexOp::CallMethod: {
              int argc = insn.a > 0 ? static_cast<int>(insn.a) : 0;
              JitInsn &j = emit(insn.op == DexOp::CallNative
                                    ? JOp::CallNat
                                    : JOp::CallMeth);
              j.dst = slot(d - argc);
              j.a = static_cast<std::uint32_t>(argc);
              j.b = static_cast<std::uint32_t>(pc);
              j.imm = static_cast<std::int64_t>(insn.sidx);
              for (int k = 0; k < argc; ++k)
                  noteRead(j.dst + static_cast<std::uint32_t>(k));
              noteWrite(j.dst);
              break;
          }
          case DexOp::Ret: {
              if (d > 0) {
                  const std::uint32_t ySrc = foldSlot(slot(d - 1));
                  JitInsn &j = emit(JOp::RetSlot);
                  j.a = ySrc;
                  noteRead(ySrc);
              } else {
                  emit(JOp::RetZero);
              }
              break;
          }
          case DexOp::ArrNew: {
              JitInsn &j = emit(JOp::ArrNewOp);
              j.dst = slot(d - 1);
              noteRead(j.dst);
              noteWrite(j.dst);
              break;
          }
          case DexOp::ArrGet: {
              const std::uint32_t bSrc = foldSlot(slot(d - 1));
              const std::uint32_t aSrc = foldSlot(slot(d - 2));
              JitInsn &j = emit(JOp::ArrGetOp);
              j.dst = slot(d - 2);
              j.a = aSrc;
              j.b = bSrc;
              noteRead(aSrc);
              noteRead(bSrc);
              noteWrite(j.dst);
              break;
          }
          case DexOp::ArrSet: {
              const std::uint32_t vSrc = foldSlot(slot(d - 1));
              const std::uint32_t bSrc = foldSlot(slot(d - 2));
              const std::uint32_t aSrc = foldSlot(slot(d - 3));
              JitInsn &j = emit(JOp::ArrSetOp);
              j.a = aSrc;
              j.b = bSrc;
              j.dst = vSrc;
              noteRead(aSrc);
              noteRead(bSrc);
              noteRead(vSrc);
              break;
          }
          case DexOp::ArrLen: {
              const std::uint32_t aSrc = foldSlot(slot(d - 1));
              JitInsn &j = emit(JOp::ArrLenOp);
              j.dst = slot(d - 1);
              j.a = aSrc;
              noteRead(aSrc);
              noteWrite(j.dst);
              break;
          }
          default:
            // Unknown opcode: counted by the block, no effect.
            break;
        }
        if (endsBlock(insn.op))
            blockAt = SIZE_MAX;
    }
    indexOfPc[n] = static_cast<std::uint32_t>(jm->code.size());
    emit(JOp::End);

    // Compaction: delete the absorbed pushes. Only non-leader
    // instructions die, so remapping the leader table and the patch
    // positions is a prefix-sum walk.
    std::vector<std::uint32_t> remap(jm->code.size() + 1, 0);
    std::uint32_t live = 0;
    for (std::size_t i = 0; i < jm->code.size(); ++i) {
        remap[i] = live;
        if (!dead[i])
            ++live;
    }
    remap[jm->code.size()] = live;
    if (live != jm->code.size()) {
        std::vector<JitInsn> packed;
        packed.reserve(live);
        for (std::size_t i = 0; i < jm->code.size(); ++i)
            if (!dead[i])
                packed.push_back(jm->code[i]);
        jm->code = std::move(packed);
    }
    for (const auto &[at, pc] : patches)
        jm->code[remap[at]].dst = remap[indexOfPc[pc]];
    return jm;
}

DexVal
DexJit::execute(DalvikVm &vm, const DexFile &file, MethodEntry &entry,
                std::vector<DexVal> &args, int depth)
{
    const JitMethod &jm = *entry.code;
    const hw::DeviceProfile &profile = vm.profile_;
    const std::uint64_t dispatchNs = profile.dalvikDispatchNs;
    // Hoist the thread-local clock lookup and the array charge
    // constants: the installed clock cannot change while this frame
    // runs (natives and callees restore any scope they install), and
    // charging it directly is observably identical to free charge().
    CostClock *const clk = CostClock::current();
    const std::uint64_t arrReadNs = 8 * profile.memReadBytePs / 1000;
    const std::uint64_t arrWriteNs = 8 * profile.memWriteBytePs / 1000;
    auto chargeNow = [clk](std::uint64_t ns) {
        if (clk)
            clk->charge(ns);
    };

    std::vector<JitVal> frame(jm.nslots);
    for (std::size_t i = 0; i < args.size() && i < jm.nlocals; ++i)
        frame[i] = fromDex(args[i]);

    // The interpreter's dispatch_ns_acc / ps_acc live in locals and
    // reach the thread clock only at flush points, so accumulating
    // them per basic block here produces bit-identical charges — and
    // identical losses when an exception skips the final flush.
    std::uint64_t executed = 0;
    std::uint64_t flushedAt = 0;
    std::uint64_t ps = 0;
    auto flush = [&]() {
        chargeNow((executed - flushedAt) * dispatchNs + ps / 1000);
        flushedAt = executed;
        ps = 0;
    };

    JitVal result;
    const JitInsn *code = jm.code.data();
    std::size_t ip = 0;

#if defined(__GNUC__) || defined(__clang__)
#define CIDER_JIT_THREADED 1
#endif

#ifdef CIDER_JIT_THREADED
    // Label table indexed by JOp — order must match the enum.
    static const void *kLabels[] = {
        &&L_Block,    &&L_MoveI,    &&L_MoveF,    &&L_Move,
        &&L_SwapSlots, &&L_AddI,    &&L_SubI,     &&L_MulI,
        &&L_DivI,     &&L_ModI,     &&L_AddF,     &&L_SubF,
        &&L_MulF,     &&L_DivF,     &&L_LtI,      &&L_LeI,
        &&L_EqI,      &&L_AddIK,    &&L_SubIK,    &&L_MulIK,
        &&L_DivIK,    &&L_ModIK,    &&L_LtIK,     &&L_LeIK,
        &&L_EqIK,     &&L_AddFK,    &&L_SubFK,    &&L_MulFK,
        &&L_DivFK,    &&L_JNltI,    &&L_JNleI,    &&L_JNeqI,
        &&L_JNltIK,   &&L_JNleIK,   &&L_JNeqIK,
        &&L_Jump,     &&L_JumpZ,    &&L_CallNat,
        &&L_CallMeth, &&L_RetSlot,  &&L_RetZero,  &&L_ArrNewOp,
        &&L_ArrGetOp, &&L_ArrSetOp, &&L_ArrLenOp, &&L_End,
    };
#define CASE(name) L_##name
#define DISPATCH() goto *kLabels[static_cast<int>(code[ip].op)]
    DISPATCH();
#else
#define CASE(name) case JOp::name
#define DISPATCH() break
    for (;;) {
        switch (code[ip].op) {
#endif

    CASE(Block): {
        const JitInsn &I = code[ip];
        executed += I.dst;
        ps += static_cast<std::uint64_t>(I.imm);
        ++ip;
    }
        DISPATCH();

    CASE(MoveI): {
        const JitInsn &I = code[ip];
        setI(frame[I.dst], I.imm);
        ++ip;
    }
        DISPATCH();

    CASE(MoveF): {
        const JitInsn &I = code[ip];
        setF(frame[I.dst], I.fimm);
        ++ip;
    }
        DISPATCH();

    CASE(Move): {
        const JitInsn &I = code[ip];
        frame[I.dst] = frame[I.a];
        ++ip;
    }
        DISPATCH();

    CASE(SwapSlots): {
        const JitInsn &I = code[ip];
        std::swap(frame[I.a], frame[I.b]);
        ++ip;
    }
        DISPATCH();

#define CIDER_JIT_BIN_I(name, expr)                                         \
    CASE(name): {                                                           \
        const JitInsn &I = code[ip];                                        \
        const std::int64_t av = jitI(frame[I.a]);                           \
        const std::int64_t bv = jitI(frame[I.b]);                           \
        setI(frame[I.dst], (expr));                                         \
        ++ip;                                                               \
    }                                                                       \
        DISPATCH()

#define CIDER_JIT_BIN_F(name, expr)                                         \
    CASE(name): {                                                           \
        const JitInsn &I = code[ip];                                        \
        const double av = jitF(frame[I.a]);                                 \
        const double bv = jitF(frame[I.b]);                                 \
        setF(frame[I.dst], (expr));                                         \
        ++ip;                                                               \
    }                                                                       \
        DISPATCH()

#define CIDER_JIT_BIN_IK(name, expr)                                        \
    CASE(name): {                                                           \
        const JitInsn &I = code[ip];                                        \
        const std::int64_t av = jitI(frame[I.a]);                           \
        const std::int64_t bv = I.imm;                                      \
        setI(frame[I.dst], (expr));                                         \
        ++ip;                                                               \
    }                                                                       \
        DISPATCH()

#define CIDER_JIT_BIN_FK(name, expr)                                        \
    CASE(name): {                                                           \
        const JitInsn &I = code[ip];                                        \
        const double av = jitF(frame[I.a]);                                 \
        const double bv = I.fimm;                                           \
        setF(frame[I.dst], (expr));                                         \
        ++ip;                                                               \
    }                                                                       \
        DISPATCH()

    CIDER_JIT_BIN_I(AddI, av + bv);
    CIDER_JIT_BIN_I(SubI, av - bv);
    CIDER_JIT_BIN_I(MulI, av * bv);
    CIDER_JIT_BIN_I(DivI, bv == 0 ? 0 : av / bv);
    CIDER_JIT_BIN_I(ModI, bv == 0 ? 0 : av % bv);
    CIDER_JIT_BIN_F(AddF, av + bv);
    CIDER_JIT_BIN_F(SubF, av - bv);
    CIDER_JIT_BIN_F(MulF, av * bv);
    CIDER_JIT_BIN_F(DivF, bv == 0.0 ? 0.0 : av / bv);
    CIDER_JIT_BIN_I(LtI, static_cast<std::int64_t>(av < bv));
    CIDER_JIT_BIN_I(LeI, static_cast<std::int64_t>(av <= bv));
    CIDER_JIT_BIN_I(EqI, static_cast<std::int64_t>(av == bv));
    CIDER_JIT_BIN_IK(AddIK, av + bv);
    CIDER_JIT_BIN_IK(SubIK, av - bv);
    CIDER_JIT_BIN_IK(MulIK, av * bv);
    CIDER_JIT_BIN_IK(DivIK, bv == 0 ? 0 : av / bv);
    CIDER_JIT_BIN_IK(ModIK, bv == 0 ? 0 : av % bv);
    CIDER_JIT_BIN_IK(LtIK, static_cast<std::int64_t>(av < bv));
    CIDER_JIT_BIN_IK(LeIK, static_cast<std::int64_t>(av <= bv));
    CIDER_JIT_BIN_IK(EqIK, static_cast<std::int64_t>(av == bv));
    CIDER_JIT_BIN_FK(AddFK, av + bv);
    CIDER_JIT_BIN_FK(SubFK, av - bv);
    CIDER_JIT_BIN_FK(MulFK, av * bv);
    CIDER_JIT_BIN_FK(DivFK, bv == 0.0 ? 0.0 : av / bv);

#define CIDER_JIT_CMPJ(name, cond)                                          \
    CASE(name): {                                                           \
        const JitInsn &I = code[ip];                                        \
        const std::int64_t av = jitI(frame[I.a]);                           \
        const std::int64_t bv = jitI(frame[I.b]);                           \
        ip = (cond) ? ip + 1 : I.dst;                                       \
    }                                                                       \
        DISPATCH()

#define CIDER_JIT_CMPJK(name, cond)                                         \
    CASE(name): {                                                           \
        const JitInsn &I = code[ip];                                        \
        const std::int64_t av = jitI(frame[I.a]);                           \
        const std::int64_t bv = I.imm;                                      \
        ip = (cond) ? ip + 1 : I.dst;                                       \
    }                                                                       \
        DISPATCH()

    CIDER_JIT_CMPJ(JNltI, av < bv);
    CIDER_JIT_CMPJ(JNleI, av <= bv);
    CIDER_JIT_CMPJ(JNeqI, av == bv);
    CIDER_JIT_CMPJK(JNltIK, av < bv);
    CIDER_JIT_CMPJK(JNleIK, av <= bv);
    CIDER_JIT_CMPJK(JNeqIK, av == bv);

    CASE(Jump): {
        ip = code[ip].dst;
    }
        DISPATCH();

    CASE(JumpZ): {
        const JitInsn &I = code[ip];
        ip = jitI(frame[I.a]) == 0 ? I.dst : ip + 1;
    }
        DISPATCH();

    CASE(CallNat): {
        const JitInsn &I = code[ip];
        const DalvikVm::NativeFn *fn = entry.decoded.natives[I.b];
        if (!fn)
            // invariant-only: natives are registered by in-tree setup.
            cider_panic("dalvik: unknown native ",
                        entry.snapshot->string(
                            static_cast<std::uint32_t>(I.imm)));
        std::vector<DexVal> nargs;
        nargs.reserve(I.a);
        for (std::uint32_t k = 0; k < I.a; ++k)
            nargs.push_back(toDex(frame[I.dst + k]));
        ++vm.stats_.nativeCalls;
        frame[I.dst] = fromDex((*fn)(nargs));
        ++ip;
    }
        DISPATCH();

    CASE(CallMeth): {
        const JitInsn &I = code[ip];
        const DexMethod *callee = entry.decoded.callees[I.b];
        if (!callee)
            // invariant-only: parseDex validated the callee index.
            cider_panic("dalvik: unknown method ",
                        entry.snapshot->string(
                            static_cast<std::uint32_t>(I.imm)));
        std::vector<DexVal> cargs;
        cargs.reserve(I.a);
        for (std::uint32_t k = 0; k < I.a; ++k)
            cargs.push_back(toDex(frame[I.dst + k]));
        ++vm.stats_.methodCalls;
        // Same flush point as the interpreter: attribution stays
        // ordered across the recursion.
        flush();
        frame[I.dst] = fromDex(vm.invoke(file, *callee, cargs, depth + 1));
        ++ip;
    }
        DISPATCH();

    CASE(RetSlot): {
        result = frame[code[ip].a];
        goto L_done;
    }

    CASE(RetZero): {
        result = JitVal{};
        goto L_done;
    }

    CASE(ArrNewOp): {
        const JitInsn &I = code[ip];
        const std::int64_t nn = jitI(frame[I.dst]);
        chargeNow(static_cast<std::uint64_t>(nn) * 8 *
                  profile.memWriteBytePs / 1000);
        JitVal &s = frame[I.dst];
        s.tag = JitVal::Tag::Arr;
        s.arr = std::make_shared<std::vector<std::int64_t>>(
            static_cast<std::size_t>(nn), 0);
        ++ip;
    }
        DISPATCH();

    CASE(ArrGetOp): {
        const JitInsn &I = code[ip];
        JitVal &av = frame[I.a];
        const std::int64_t idx = jitI(frame[I.b]);
        requireArr(av);
        chargeNow(arrReadNs);
        const std::int64_t v =
            av.arr->at(static_cast<std::size_t>(idx));
        setI(frame[I.dst], v);
        ++ip;
    }
        DISPATCH();

    CASE(ArrSetOp): {
        const JitInsn &I = code[ip];
        JitVal &av = frame[I.a];
        const std::int64_t idx = jitI(frame[I.b]);
        const std::int64_t val = jitI(frame[I.dst]);
        requireArr(av);
        chargeNow(arrWriteNs);
        av.arr->at(static_cast<std::size_t>(idx)) = val;
        ++ip;
    }
        DISPATCH();

    CASE(ArrLenOp): {
        const JitInsn &I = code[ip];
        JitVal &av = frame[I.a];
        requireArr(av);
        const std::int64_t len =
            static_cast<std::int64_t>(av.arr->size());
        setI(frame[I.dst], len);
        ++ip;
    }
        DISPATCH();

    CASE(End):
        goto L_done;

#ifndef CIDER_JIT_THREADED
        }
    }
#endif

L_done:
    flush();
    vm.stats_.instructions += executed;
    return toDex(result);

#undef CIDER_JIT_BIN_I
#undef CIDER_JIT_BIN_F
#undef CIDER_JIT_BIN_IK
#undef CIDER_JIT_BIN_FK
#undef CIDER_JIT_CMPJ
#undef CIDER_JIT_CMPJK
#undef CASE
#undef DISPATCH
}

namespace {

/** Resolve every call instruction of @p e against @p vm's native
 *  table and the snapshot's method table. */
void
decodeInto(DalvikVm &vm, MethodEntry &e)
{
    const std::vector<DexInsn> &code = e.method->code;
    const DexFile &snap = *e.snapshot;
    e.decoded.natives.assign(code.size(), nullptr);
    e.decoded.callees.assign(code.size(), nullptr);
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        const DexInsn &insn = code[pc];
        if (insn.op == DexOp::CallNative)
            e.decoded.natives[pc] =
                vm.findNative(snap.string(insn.sidx));
        else if (insn.op == DexOp::CallMethod)
            e.decoded.callees[pc] = snap.method(snap.string(insn.sidx));
    }
}

} // namespace

std::shared_ptr<MethodEntry>
TranslationCache::acquire(DalvikVm &vm, const DexFile &file,
                          const DexMethod &method,
                          kernel::Persona persona)
{
    std::lock_guard<std::mutex> lock(mu_);
    Key key{file.identity, file.version, &vm,
            static_cast<int>(persona), method.name};
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        MethodEntry &e = *it->second;
        if (e.nativesGen != vm.nativesGeneration()) {
            // registerNative rebinding: resolved pointers may be
            // stale (or newly resolvable); drop the translation and
            // re-decode.
            ++stats_.invalidations;
            lastInvalidation_ = "native-rebind";
            e.code.reset();
            e.translationFailed = false;
            decodeInto(vm, e);
            e.nativesGen = vm.nativesGeneration();
        } else {
            ++stats_.hits;
        }
        return it->second;
    }

    ++stats_.misses;
    auto snapKey = std::make_pair(file.identity, file.version);
    std::shared_ptr<const DexFile> snap;
    auto sit = snapshots_.find(snapKey);
    if (sit != snapshots_.end()) {
        snap = sit->second;
    } else {
        snap = std::make_shared<DexFile>(file);
        snapshots_[snapKey] = snap;
    }
    const DexMethod *m = snap->method(method.name);
    if (!m)
        // The method object is not part of the file it claims to
        // belong to; nothing safe to cache.
        return nullptr;
    auto e = std::make_shared<MethodEntry>();
    e->snapshot = snap;
    e->method = m;
    e->nativesGen = vm.nativesGeneration();
    decodeInto(vm, *e);
    entries_[key] = e;
    return e;
}

void
TranslationCache::invalidateAll(const char *reason)
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.invalidations += entries_.size();
    entries_.clear();
    snapshots_.clear();
    lastInvalidation_ = reason ? reason : "unknown";
}

void
TranslationCache::noteTranslation()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.translations;
}

void
TranslationCache::noteFallback()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.fallbacks;
}

TranslationCache::Stats
TranslationCache::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
TranslationCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::size_t
TranslationCache::translatedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[key, e] : entries_)
        if (e->code)
            ++n;
    return n;
}

std::string
TranslationCache::dump() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "jit: translation cache\n";
    char line[256];
    std::size_t translated = 0;
    for (const auto &[key, e] : entries_)
        if (e->code)
            ++translated;
    std::snprintf(line, sizeof line,
                  "entries %zu translated %zu\n"
                  "hits %llu misses %llu translations %llu "
                  "invalidations %llu fallbacks %llu\n",
                  entries_.size(), translated,
                  static_cast<unsigned long long>(stats_.hits),
                  static_cast<unsigned long long>(stats_.misses),
                  static_cast<unsigned long long>(stats_.translations),
                  static_cast<unsigned long long>(stats_.invalidations),
                  static_cast<unsigned long long>(stats_.fallbacks));
    out += line;
    if (!lastInvalidation_.empty())
        out += "last invalidation: " + lastInvalidation_ + "\n";
    for (const auto &[key, e] : entries_) {
        const auto &[identity, version, vm, persona, name] = key;
        (void)vm;
        const char *state = e->code              ? "translated"
                            : e->translationFailed ? "fallback"
                                                   : "warming";
        std::snprintf(
            line, sizeof line,
            "%s#%llu.%llu %s %s: runs %llu interp %llu jit %llu %s\n",
            e->snapshot ? e->snapshot->name.c_str() : "?",
            static_cast<unsigned long long>(identity),
            static_cast<unsigned long long>(version),
            kernel::personaName(static_cast<kernel::Persona>(persona)),
            name.c_str(),
            static_cast<unsigned long long>(e->runs),
            static_cast<unsigned long long>(e->interpRuns),
            static_cast<unsigned long long>(e->jitRuns), state);
        out += line;
    }
    return out;
}

kernel::SyscallResult
JitStatsDevice::read(kernel::Thread &, Bytes &out, std::size_t n)
{
    std::string text = cache_.dump();
    std::size_t take = std::min(n, text.size());
    out.assign(text.begin(),
               text.begin() + static_cast<std::ptrdiff_t>(take));
    return kernel::SyscallResult::success(
        static_cast<std::int64_t>(take));
}

} // namespace cider::android
