/**
 * @file
 * libgralloc: Android's graphics memory allocation library.
 *
 * Cider's diplomatic IOSurface functions call into exactly this
 * library (paper section 5.3), so its allocations come from the same
 * BufferManager the iOS side sees — making cross-stack buffer
 * hand-offs zero-copy.
 */

#ifndef CIDER_ANDROID_GRALLOC_H
#define CIDER_ANDROID_GRALLOC_H

#include "binfmt/program.h"
#include "gpu/sim_gpu.h"

namespace cider::android {

/** Exported symbol names of libgralloc.so. */
inline constexpr const char *kGrallocAlloc = "gralloc_alloc";
inline constexpr const char *kGrallocFree = "gralloc_free";
inline constexpr const char *kGrallocWidth = "gralloc_width";
inline constexpr const char *kGrallocHeight = "gralloc_height";

/**
 * Build the libgralloc.so library image. Exports:
 *  - gralloc_alloc(width, height) -> buffer id (0 on failure)
 *  - gralloc_free(id) -> 0 / -1
 *  - gralloc_width(id), gralloc_height(id)
 */
binfmt::LibraryImage makeGrallocLibrary(gpu::BufferManager &buffers);

} // namespace cider::android

#endif // CIDER_ANDROID_GRALLOC_H
