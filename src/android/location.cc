#include "android/location.h"

#include "android/bionic.h"
#include "base/cost_clock.h"

namespace cider::android {

GpsDevice::GpsDevice(double latitude, double longitude)
    : Device("gps0", "gps"),
      latE6_(static_cast<std::int32_t>(latitude * 1e6)),
      lonE6_(static_cast<std::int32_t>(longitude * 1e6))
{
    setProperty("vendor", "ublox-m8");
    setProperty("latE6", std::to_string(latE6_));
    setProperty("lonE6", std::to_string(lonE6_));
}

kernel::SyscallResult
GpsDevice::ioctl(kernel::Thread &, std::uint64_t req, void *arg)
{
    if (req != kIoctlGetFix)
        return kernel::SyscallResult::failure(kernel::lnx::INVAL);
    auto *fix = static_cast<GpsFix *>(arg);
    if (!fix)
        return kernel::SyscallResult::failure(kernel::lnx::FAULT);
    charge(40000); // receiver query latency
    fix->latE6 = latE6_;
    fix->lonE6 = lonE6_;
    fix->valid = true;
    ++fixes_;
    return kernel::SyscallResult::success();
}

void
GpsDevice::setFix(double latitude, double longitude)
{
    latE6_ = static_cast<std::int32_t>(latitude * 1e6);
    lonE6_ = static_cast<std::int32_t>(longitude * 1e6);
    setProperty("latE6", std::to_string(latE6_));
    setProperty("lonE6", std::to_string(lonE6_));
}

binfmt::LibraryImage
makeLocationLibrary()
{
    binfmt::LibraryImage lib;
    lib.name = "liblocation.so";
    lib.format = kernel::BinaryFormat::Elf;
    lib.pages = 24;

    lib.exports.add(
        kLocationGetFix,
        [](binfmt::UserEnv &env, std::vector<binfmt::Value> &) {
            Bionic libc(env);
            int fd = libc.open("/dev/gps0", kernel::oflag::RDONLY);
            if (fd < 0)
                return binfmt::Value{std::int64_t{0}};
            GpsFix fix;
            int rc = libc.ioctl(fd, GpsDevice::kIoctlGetFix, &fix);
            libc.close(fd);
            if (rc != 0 || !fix.valid)
                return binfmt::Value{std::int64_t{0}};
            std::int64_t packed =
                (static_cast<std::int64_t>(fix.latE6) << 32) |
                (static_cast<std::uint32_t>(fix.lonE6));
            return binfmt::Value{packed};
        });
    return lib;
}

GpsFix
unpackFix(std::int64_t packed)
{
    GpsFix fix;
    if (packed == 0)
        return fix;
    fix.latE6 = static_cast<std::int32_t>(packed >> 32);
    fix.lonE6 = static_cast<std::int32_t>(packed & 0xffffffff);
    fix.valid = true;
    return fix;
}

} // namespace cider::android
