/**
 * @file
 * Launcher/SystemServer: the Android home screen and app lifecycle.
 *
 * Shortcuts point either at Android apps (dex packages) or — for
 * installed iOS apps — at CiderPress with the .ipa payload path, so
 * "a user [can] click an icon on the Android home screen to start an
 * iOS app" (paper section 3).
 */

#ifndef CIDER_ANDROID_LAUNCHER_H
#define CIDER_ANDROID_LAUNCHER_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/bytes.h"

namespace cider::android {

/** One home-screen icon. */
struct Shortcut
{
    std::string label;
    /** Executable the shortcut starts (CiderPress for iOS apps). */
    std::string target;
    /** iOS app binary path forwarded to CiderPress (empty for
     *  ordinary Android apps). */
    std::string iosBinary;
    /** Icon payload (taken from the .ipa for iOS apps). */
    Bytes icon;
};

class Launcher
{
  public:
    void addShortcut(Shortcut s);
    const Shortcut *find(const std::string &label) const;
    const std::vector<Shortcut> &shortcuts() const { return entries_; }

    /**
     * Launch callback wired by the system layer: receives the
     * shortcut and returns a session/launch id (negative on error).
     */
    using LaunchFn = std::function<int(const Shortcut &)>;
    void setLaunchFn(LaunchFn fn) { launchFn_ = std::move(fn); }

    /** Click an icon. Returns the launch id or -1. */
    int launch(const std::string &label);

  private:
    std::vector<Shortcut> entries_;
    LaunchFn launchFn_;
};

} // namespace cider::android

#endif // CIDER_ANDROID_LAUNCHER_H
