/**
 * @file
 * CiderPress: the Android proxy app that hosts iOS apps.
 *
 * "CiderPress is a standard Android app that integrates launch and
 * execution of an iOS app with Android's Launcher and system
 * services" (paper section 3). It launches the foreign binary,
 * forwards touch input over a UNIX socket to the app's eventpump
 * thread, proxies app state changes (pause/resume/stop), and exposes
 * the app's display layer for recents-list screenshots.
 */

#ifndef CIDER_ANDROID_CIDERPRESS_H
#define CIDER_ANDROID_CIDERPRESS_H

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "android/input.h"
#include "android/surfaceflinger.h"
#include "kernel/kernel.h"

namespace cider::android {

/** Wire protocol over the CiderPress<->eventpump socket. */
namespace cpmsg {

inline constexpr std::uint8_t Motion = 0;
inline constexpr std::uint8_t Pause = 1;
inline constexpr std::uint8_t Resume = 2;
inline constexpr std::uint8_t Stop = 3;

/** Frame a message: [kind u8][len u32][payload]. */
Bytes frame(std::uint8_t kind, const Bytes &payload);

} // namespace cpmsg

class CiderPress
{
  public:
    CiderPress(kernel::Kernel &k, InputSubsystem &input,
               SurfaceFlinger &flinger);
    ~CiderPress();

    /** One hosted iOS app. */
    struct Session
    {
        int id = 0;
        kernel::Process *proc = nullptr;
        std::string socketPath;
        int serverFd = -1; ///< connected fd on the CiderPress side
        std::thread appHost;
        std::atomic<bool> appDone{false};
        int appExitCode = 0;
        int inputSubscription = -1;
    };

    /**
     * Launch the iOS binary at @p macho_path. Blocks until the app's
     * eventpump has connected back. Returns the session id.
     */
    int launchIosApp(const std::string &macho_path,
                     std::vector<std::string> extra_argv = {});

    Session *session(int id);

    /** Forward one touch event to the app. */
    void sendEvent(int id, const MotionEvent &ev);

    /** Proxied lifecycle transitions. */
    void pause(int id);
    void resume(int id);
    void stop(int id);

    /** Wait for the app to exit; returns its exit code. */
    int join(int id);

    /** Screenshot of the app's top layer (recents list). */
    gpu::GraphicsBuffer screenshot(int id);

    kernel::Process &process() { return *self_; }

  private:
    void sendControl(Session &s, std::uint8_t kind,
                     const Bytes &payload = {});

    kernel::Kernel &kernel_;
    InputSubsystem &input_;
    SurfaceFlinger &flinger_;
    kernel::Process *self_;
    std::map<int, std::unique_ptr<Session>> sessions_;
    int nextSession_ = 1;
};

} // namespace cider::android

#endif // CIDER_ANDROID_CIDERPRESS_H
