#include "android/dalvik.h"

#include "android/dexjit.h"
#include "base/cost_clock.h"
#include "base/logging.h"
#include "kernel/sched_rail.h"
#include "kernel/thread.h"

namespace cider::android {

using binfmt::DexFile;
using binfmt::DexInsn;
using binfmt::DexMethod;
using binfmt::DexOp;

std::int64_t
dexI(const DexVal &v)
{
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return *i;
    if (const auto *f = std::get_if<double>(&v))
        return static_cast<std::int64_t>(*f);
    return 0;
}

double
dexF(const DexVal &v)
{
    if (const auto *f = std::get_if<double>(&v))
        return *f;
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return static_cast<double>(*i);
    return 0.0;
}

void
DalvikVm::registerNative(const std::string &name, NativeFn fn)
{
    natives_[name] = std::move(fn);
    // Any cached decode that resolved (or failed to resolve) this
    // name is now stale; the generation bump invalidates lazily at
    // the next acquire.
    ++nativesGen_;
}

const DalvikVm::NativeFn *
DalvikVm::findNative(const std::string &name) const
{
    auto it = natives_.find(name);
    return it == natives_.end() ? nullptr : &it->second;
}

DexVal
DalvikVm::run(const DexFile &file, const std::string &method,
              std::vector<DexVal> args)
{
    const DexMethod *m = file.method(method);
    if (!m)
        // invariant-only: entry methods are in-tree workload names;
        // foreign images are validated by parseDex before they run.
        cider_panic("dalvik: no method ", method, " in ", file.name);
    return invoke(file, *m, args, 0);
}

DexVal
DalvikVm::invoke(const DexFile &file, const DexMethod &method,
                 std::vector<DexVal> &args, int depth)
{
    if (depth > 64)
        // invariant-only: bounds in-tree workload recursion.
        cider_panic("dalvik: call depth exceeded in ", method.name);

    // Method entry is a scheduling decision point for BOTH engines —
    // the one yield point translated code must keep (SchedRail traces
    // are bit-identical with the JIT on or off).
    CIDER_SCHED_POINT("dalvik.method");

    if (cache_) {
        kernel::Thread *t = kernel::Thread::current();
        kernel::Persona persona =
            t ? t->persona() : kernel::Persona::Android;
        std::shared_ptr<MethodEntry> hold =
            cache_->acquire(*this, file, method, persona);
        if (hold) {
            MethodEntry &e = *hold;
            ++e.runs;
            if (jitEnabled_) {
                if (!e.code && !e.translationFailed &&
                    e.runs > jitWarmup_) {
                    auto jm = DexJit::translate(*e.method, profile_);
                    if (jm) {
                        e.code = std::move(jm);
                        cache_->noteTranslation();
                    } else {
                        e.translationFailed = true;
                        cache_->noteFallback();
                    }
                }
                if (e.code) {
                    ++e.jitRuns;
                    return DexJit::execute(*this, file, e, args, depth);
                }
            }
            ++e.interpRuns;
            return execute(file, method, args, depth, &e);
        }
    }
    return execute(file, method, args, depth, nullptr);
}

DexVal
DalvikVm::execute(const DexFile &file, const DexMethod &method,
                  std::vector<DexVal> &args, int depth,
                  const MethodEntry *entry)
{
    if (depth > 64)
        // invariant-only: bounds in-tree workload recursion.
        cider_panic("dalvik: call depth exceeded in ", method.name);

    std::vector<DexVal> locals(method.nlocals,
                               DexVal{std::int64_t{0}});
    for (std::size_t i = 0; i < args.size() && i < locals.size(); ++i)
        locals[i] = args[i];
    std::vector<DexVal> stack;
    stack.reserve(16);

    auto pop = [&stack]() -> DexVal {
        if (stack.empty())
            // invariant-only: bytecode comes from the in-tree assembler.
            cider_panic("dalvik: operand stack underflow");
        DexVal v = std::move(stack.back());
        stack.pop_back();
        return v;
    };

    const hw::Codegen cg = hw::Codegen::LinuxGcc;
    std::uint64_t executed = 0;
    std::uint64_t dispatch_ns_acc = 0;
    std::uint64_t ps_acc = 0;

    std::size_t pc = 0;
    DexVal result{std::int64_t{0}};
    while (pc < method.code.size()) {
        const DexInsn &insn = method.code[pc];
        ++pc;
        ++executed;
        // Interpreter dispatch: fetch, decode, indirect branch.
        dispatch_ns_acc += profile_.dalvikDispatchNs;

        switch (insn.op) {
          case DexOp::Nop:
            break;
          case DexOp::ConstI:
            stack.emplace_back(insn.a);
            break;
          case DexOp::ConstF:
            stack.emplace_back(insn.f);
            break;
          case DexOp::Load:
            stack.push_back(locals.at(static_cast<std::size_t>(insn.a)));
            break;
          case DexOp::Store:
            locals.at(static_cast<std::size_t>(insn.a)) = pop();
            break;
          case DexOp::Add: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntAdd, cg);
              stack.emplace_back(a + b);
              break;
          }
          case DexOp::Sub: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntAdd, cg);
              stack.emplace_back(a - b);
              break;
          }
          case DexOp::Mul: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntMul, cg);
              stack.emplace_back(a * b);
              break;
          }
          case DexOp::Div: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntDiv, cg);
              stack.emplace_back(b == 0 ? 0 : a / b);
              break;
          }
          case DexOp::Mod: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntDiv, cg);
              stack.emplace_back(b == 0 ? 0 : a % b);
              break;
          }
          case DexOp::FAdd: {
              double b = dexF(pop()), a = dexF(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::DoubleAdd, cg);
              stack.emplace_back(a + b);
              break;
          }
          case DexOp::FSub: {
              double b = dexF(pop()), a = dexF(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::DoubleAdd, cg);
              stack.emplace_back(a - b);
              break;
          }
          case DexOp::FMul: {
              double b = dexF(pop()), a = dexF(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::DoubleMul, cg);
              stack.emplace_back(a * b);
              break;
          }
          case DexOp::FDiv: {
              double b = dexF(pop()), a = dexF(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::DoubleMul, cg);
              stack.emplace_back(b == 0.0 ? 0.0 : a / b);
              break;
          }
          case DexOp::CmpLt: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntAdd, cg);
              stack.emplace_back(std::int64_t{a < b});
              break;
          }
          case DexOp::CmpLe: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntAdd, cg);
              stack.emplace_back(std::int64_t{a <= b});
              break;
          }
          case DexOp::CmpEq: {
              std::int64_t b = dexI(pop()), a = dexI(pop());
              ps_acc += profile_.cpuOpPs(hw::CpuOp::IntAdd, cg);
              stack.emplace_back(std::int64_t{a == b});
              break;
          }
          case DexOp::Jmp:
            pc = static_cast<std::size_t>(insn.a);
            break;
          case DexOp::Jz:
            if (dexI(pop()) == 0)
                pc = static_cast<std::size_t>(insn.a);
            break;
          case DexOp::Dup:
            if (stack.empty())
                // invariant-only: see operand stack underflow above.
                cider_panic("dalvik: dup on empty stack");
            stack.push_back(stack.back());
            break;
          case DexOp::Drop:
            pop();
            break;
          case DexOp::Swap: {
              DexVal b = pop(), a = pop();
              stack.push_back(std::move(b));
              stack.push_back(std::move(a));
              break;
          }
          case DexOp::CallNative: {
              // Memoized resolution: a cached entry carries natives
              // resolved once per decode instead of a std::map lookup
              // per call (host-side only; virtual cost is unchanged).
              const NativeFn *fn =
                  entry ? entry->decoded.natives[pc - 1]
                        : findNative(file.string(insn.sidx));
              if (!fn)
                  // invariant-only: natives are registered by in-tree setup.
                  cider_panic("dalvik: unknown native ",
                              file.string(insn.sidx));
              std::vector<DexVal> nargs;
              for (std::int64_t i = 0; i < insn.a; ++i)
                  nargs.insert(nargs.begin(), pop());
              ++stats_.nativeCalls;
              stack.push_back((*fn)(nargs));
              break;
          }
          case DexOp::CallMethod: {
              const DexMethod *callee =
                  entry ? entry->decoded.callees[pc - 1]
                        : file.method(file.string(insn.sidx));
              if (!callee)
                  // invariant-only: parseDex validated the callee string index.
                  cider_panic("dalvik: unknown method ",
                              file.string(insn.sidx));
              std::vector<DexVal> cargs;
              for (std::int64_t i = 0; i < insn.a; ++i)
                  cargs.insert(cargs.begin(), pop());
              ++stats_.methodCalls;
              // Flush accumulated dispatch cost before recursing so
              // attribution stays ordered.
              charge(dispatch_ns_acc + ps_acc / 1000);
              dispatch_ns_acc = 0;
              ps_acc = 0;
              // Recurse through invoke(): the callee gets its own
              // cache entry / yield point whichever engine ran the
              // caller.
              stack.push_back(invoke(file, *callee, cargs, depth + 1));
              break;
          }
          case DexOp::Ret:
            result = stack.empty() ? DexVal{std::int64_t{0}} : pop();
            pc = method.code.size();
            break;
          case DexOp::ArrNew: {
              std::int64_t n = dexI(pop());
              charge(static_cast<std::uint64_t>(n) * 8 *
                     profile_.memWriteBytePs / 1000);
              stack.emplace_back(
                  std::make_shared<std::vector<std::int64_t>>(
                      static_cast<std::size_t>(n), 0));
              break;
          }
          case DexOp::ArrGet: {
              std::int64_t idx = dexI(pop());
              DexVal arrv = pop();
              auto arr = std::get<
                  std::shared_ptr<std::vector<std::int64_t>>>(arrv);
              charge(8 * profile_.memReadBytePs / 1000);
              stack.emplace_back(
                  arr->at(static_cast<std::size_t>(idx)));
              break;
          }
          case DexOp::ArrSet: {
              std::int64_t val = dexI(pop());
              std::int64_t idx = dexI(pop());
              DexVal arrv = pop();
              auto arr = std::get<
                  std::shared_ptr<std::vector<std::int64_t>>>(arrv);
              charge(8 * profile_.memWriteBytePs / 1000);
              arr->at(static_cast<std::size_t>(idx)) = val;
              break;
          }
          case DexOp::ArrLen: {
              DexVal arrv = pop();
              auto arr = std::get<
                  std::shared_ptr<std::vector<std::int64_t>>>(arrv);
              stack.emplace_back(
                  static_cast<std::int64_t>(arr->size()));
              break;
          }
        }
    }
    charge(dispatch_ns_acc + ps_acc / 1000);
    stats_.instructions += executed;
    return result;
}

} // namespace cider::android
