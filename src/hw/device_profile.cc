#include "hw/device_profile.h"

#include "base/cost_clock.h"
#include "base/logging.h"

namespace cider::hw {

std::uint64_t
DeviceProfile::cpuOpPs(CpuOp op, Codegen cg) const
{
    std::uint64_t ps = 0;
    switch (op) {
      case CpuOp::IntAdd:
        ps = intAddPs;
        break;
      case CpuOp::IntMul:
        ps = intMulPs;
        break;
      case CpuOp::IntDiv:
        ps = intDivPs;
        // The Xcode toolchain emits a slower divide sequence than the
        // Linux GCC build; this is the only basic op where the paper's
        // Figure 5 separates the Cider iOS bar from the others.
        if (cg == Codegen::XcodeClang)
            ps += ps * xcodeIntDivPenaltyPct / 100;
        break;
      case CpuOp::DoubleAdd:
        ps = doubleAddPs;
        break;
      case CpuOp::DoubleMul:
        ps = doubleMulPs;
        break;
      case CpuOp::Bogomflop:
        // lmbench's bogomflops step: one add and one multiply.
        ps = doubleAddPs + doubleMulPs;
        break;
    }
    return ps;
}

std::uint64_t
DeviceProfile::cyclesToNs(double cycles) const
{
    if (cpuClockGhz <= 0)
        // invariant-only: profiles are in-tree data tables.
        cider_panic("DeviceProfile ", name, " has no CPU clock");
    return static_cast<std::uint64_t>(cycles / cpuClockGhz);
}

void
DeviceProfile::chargeCpuOps(CpuOp op, Codegen cg, std::uint64_t count) const
{
    charge(count * cpuOpPs(op, cg) / 1000);
}

const DeviceProfile &
DeviceProfile::nexus7()
{
    // 1.3 GHz quad-core Tegra 3; one cycle ~ 769 ps.
    static const DeviceProfile profile = {
        .name = "Nexus 7",
        .cpuClockGhz = 1.3,
        .cpuCores = 4,
        .intAddPs = 769,
        .intMulPs = 3100,
        .intDivPs = 15400,
        .doubleAddPs = 3100,
        .doubleMulPs = 3900,
        .xcodeIntDivPenaltyPct = 45,
        .trapEnterExitNs = 150,
        .nullSyscallWorkNs = 250,
        .signalDeliverNs = 5000,
        .pageCopyEntryNs = 43,
        .memWriteBytePs = 250,
        .memReadBytePs = 200,
        .pageFaultNs = 2500,
        .storageOpenNs = 8000,
        .storageCreateNs = 60000,
        .storageWriteBytePs = 3500,
        .storageReadBytePs = 1200,
        .selectBaseNs = 800,
        .selectPerFdNs = 90,
        .selectMaxFds = 0,
        .pipeTransferNs = 8000,
        .unixSockTransferNs = 10000,
        .netSegmentNs = 3000,
        .nicLinkLatencyNs = 12000,
        .nicPerBytePs = 800,
        .gpuPerCommandNs = 900,
        .gpuPerVertexNs = 18,
        .gpuPerFragmentPs = 650,
        .gpuFenceNs = 4000,
        .dyldSharedCache = false,
        .dalvikDispatchNs = 6,
    };
    return profile;
}

const DeviceProfile &
DeviceProfile::ipadMini()
{
    // 1.0 GHz dual-core A5. CPU-bound work is slower than the Nexus 7
    // (every basic-op bar in Figure 5 is above 1 for the iPad), the
    // flash write path and the GPU are faster (Figure 6 storage-write
    // and 3D groups), and select() degrades badly with fd count.
    static const DeviceProfile profile = {
        .name = "iPad mini",
        .cpuClockGhz = 1.0,
        .cpuCores = 2,
        .intAddPs = 1100,
        .intMulPs = 4500,
        .intDivPs = 21000,
        .doubleAddPs = 4400,
        .doubleMulPs = 5600,
        .xcodeIntDivPenaltyPct = 45,
        .trapEnterExitNs = 190,
        .nullSyscallWorkNs = 330,
        .signalDeliverNs = 17200,
        .pageCopyEntryNs = 50,
        .memWriteBytePs = 400,
        .memReadBytePs = 330,
        .pageFaultNs = 3200,
        .storageOpenNs = 12000,
        .storageCreateNs = 150000,
        .storageWriteBytePs = 1500,
        .storageReadBytePs = 1100,
        .selectBaseNs = 2000,
        .selectPerFdNs = 1000,
        .selectMaxFds = 200,
        .pipeTransferNs = 13000,
        .unixSockTransferNs = 16000,
        .netSegmentNs = 4200,
        .nicLinkLatencyNs = 15000,
        .nicPerBytePs = 1000,
        .gpuPerCommandNs = 700,
        .gpuPerVertexNs = 11,
        .gpuPerFragmentPs = 380,
        .gpuFenceNs = 2500,
        .dyldSharedCache = true,
        .dalvikDispatchNs = 8,
    };
    return profile;
}

} // namespace cider::hw
