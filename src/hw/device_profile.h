/**
 * @file
 * Hardware cost models for the simulated devices.
 *
 * The paper evaluates on two physical devices: a Google Nexus 7
 * (1.3 GHz quad-core Tegra 3, 1 GB RAM, Android 4.2) and an Apple iPad
 * mini (1 GHz dual-core A5, 512 MB RAM, iOS 6.1.2). Neither is
 * available here, so each becomes a DeviceProfile: a table of virtual
 * nanosecond costs for primitive CPU, kernel, storage, and GPU
 * operations. Code paths in the simulator charge these costs on the
 * active CostClock as they execute; benchmark shapes then emerge from
 * which code paths run rather than from precomputed ratios.
 *
 * Values are calibrated so the *relative* results of the paper's
 * Figures 5 and 6 are reproduced (e.g. a null syscall costs ~400 ns on
 * the Nexus 7; Cider's persona check adds ~8.5%); absolute values are
 * virtual time, not a claim about the original hardware.
 */

#ifndef CIDER_HW_DEVICE_PROFILE_H
#define CIDER_HW_DEVICE_PROFILE_H

#include <cstdint>
#include <string>

namespace cider::hw {

/** Which toolchain produced a binary's text (affects per-op cost). */
enum class Codegen
{
    LinuxGcc,   ///< GCC 4.4.1 targeting Android/Linux.
    XcodeClang, ///< Xcode 4.2.1 targeting iOS.
};

/** Primitive ALU/FPU operations measured by lmbench's basic-op tests. */
enum class CpuOp
{
    IntAdd,
    IntMul,
    IntDiv,
    DoubleAdd,
    DoubleMul,
    Bogomflop, ///< lmbench's mixed double add/mul kernel step.
};

/**
 * Per-device table of primitive operation costs in virtual ns.
 * All simulator code charges through one of these.
 */
struct DeviceProfile
{
    std::string name;

    /// @{ CPU core parameters. Per-op costs are picoseconds so that
    /// batched charging (chargeCpuOps) keeps sub-nanosecond precision.
    double cpuClockGhz;
    int cpuCores;
    std::uint64_t intAddPs;
    std::uint64_t intMulPs;
    std::uint64_t intDivPs;
    std::uint64_t doubleAddPs;
    std::uint64_t doubleMulPs;
    /**
     * Extra int-divide cost for Xcode-generated code: the paper's
     * basic-op group shows the Linux compiler emitting a better divide
     * sequence than the iOS compiler (Figure 5, intdiv bar).
     * Expressed in percent added on top of intDivNs.
     */
    std::uint64_t xcodeIntDivPenaltyPct;
    /// @}

    /// @{ Kernel trap / signal path.
    std::uint64_t trapEnterExitNs;   ///< bare hardware trap in+out
    std::uint64_t nullSyscallWorkNs; ///< dispatch bookkeeping either OS does
    std::uint64_t signalDeliverNs;   ///< same-process signal delivery
    /// @}

    /// @{ Memory system.
    std::uint64_t pageCopyEntryNs;  ///< fork: duplicate one PTE
    std::uint64_t memWriteBytePs;   ///< streaming write, picoseconds/byte
    std::uint64_t memReadBytePs;    ///< streaming read, picoseconds/byte
    std::uint64_t pageFaultNs;
    /// @}

    /// @{ Storage (flash) costs.
    std::uint64_t storageOpenNs;     ///< open/close metadata op
    std::uint64_t storageCreateNs;   ///< create+delete a file (0 KB)
    std::uint64_t storageWriteBytePs;
    std::uint64_t storageReadBytePs;
    /// @}

    /// @{ select()/poll scan.
    std::uint64_t selectBaseNs;
    std::uint64_t selectPerFdNs;
    /**
     * Largest fd-set size select() survives. The iPad mini's select
     * failed outright at 250 descriptors in the paper (Figure 5); 0
     * means unlimited.
     */
    int selectMaxFds;
    /// @}

    /// @{ Local IPC.
    std::uint64_t pipeTransferNs;    ///< one pipe hand-off
    std::uint64_t unixSockTransferNs;
    /// @}

    /// @{ Network (simulated NIC + TCP-lite/UDP-lite stack).
    std::uint64_t netSegmentNs;      ///< protocol work per segment
    std::uint64_t nicLinkLatencyNs;  ///< link traversal per frame
    std::uint64_t nicPerBytePs;      ///< serialisation cost per byte
    /// @}

    /// @{ GPU.
    std::uint64_t gpuPerCommandNs;   ///< command fetch/decode
    std::uint64_t gpuPerVertexNs;
    std::uint64_t gpuPerFragmentPs;  ///< picoseconds per shaded fragment
    std::uint64_t gpuFenceNs;        ///< fence signal/wait round trip
    /// @}

    /// @{ Software-ecosystem parameters carried with the device.
    /**
     * Whether dyld uses a prelinked shared library cache. True on real
     * iOS devices; the Cider prototype lacks this optimisation, making
     * fork/exec of iOS binaries slower than on the iPad (Figure 5).
     */
    bool dyldSharedCache;
    std::uint64_t dalvikDispatchNs;  ///< interpreter loop per-bytecode cost
    /// @}

    /** Cost in ps of one primitive op for a given toolchain's codegen. */
    std::uint64_t cpuOpPs(CpuOp op, Codegen cg) const;

    /** Convert a CPU cycle count into virtual nanoseconds. */
    std::uint64_t cyclesToNs(double cycles) const;

    /** Charge @p count primitive ops to the active CostClock. */
    void chargeCpuOps(CpuOp op, Codegen cg, std::uint64_t count) const;

    /** The Google Nexus 7 profile (domestic device under test). */
    static const DeviceProfile &nexus7();

    /** The Apple iPad mini profile (foreign comparison device). */
    static const DeviceProfile &ipadMini();
};

} // namespace cider::hw

#endif // CIDER_HW_DEVICE_PROFILE_H
